// Shared configuration and helpers for the figure/table benches.
//
// Every bench prints an aligned text table with the same rows/series the
// paper reports, and writes a CSV next to the binary (bench_out/) for
// plotting. Epoch counts and the repetition seed can be overridden through
// environment variables so a quick smoke pass is possible:
//   OSP_BENCH_EPOCHS=4 ./build/bench/bench_fig6a_throughput
#pragma once

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/r2sp.hpp"
#include "sync/ssp.hpp"
#include "util/table.hpp"

namespace osp::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// The testbed configuration of §5.1.1: 8 workers + standalone PS behind a
/// 10 Gbit/s ToR, Tesla T4-class compute, mild compute jitter.
inline runtime::EngineConfig paper_config(
    std::size_t workers = 8,
    std::size_t epochs = env_size("OSP_BENCH_EPOCHS", 30)) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 20230807;  // ICPP'23 conference date
  cfg.straggler_jitter = 0.05;
  return cfg;
}

struct NamedSync {
  std::string label;
  std::function<std::unique_ptr<runtime::SyncModel>()> make;
};

/// The paper's comparison set in its presentation order (§5.1.3).
inline std::vector<NamedSync> paper_baselines() {
  return {
      {"ASP", [] { return std::make_unique<sync::AspSync>(); }},
      {"BSP", [] { return std::make_unique<sync::BspSync>(); }},
      {"R2SP", [] { return std::make_unique<sync::R2spSync>(); }},
      {"OSP", [] { return std::make_unique<core::OspSync>(); }},
  };
}

inline runtime::RunResult run_one(const runtime::WorkloadSpec& spec,
                                  runtime::SyncModel& sync,
                                  const runtime::EngineConfig& cfg) {
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

/// Print the table and also drop a CSV under bench_out/.
inline void emit(const util::Table& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    const std::string path = "bench_out/" + name + ".csv";
    if (table.write_csv(path)) {
      std::cout << "(csv: " << path << ")\n";
    }
  }
  std::cout << std::endl;
}

/// The paper reports BERT throughput as QAs per 10 seconds (§5.2).
inline double display_throughput(const runtime::WorkloadSpec& spec,
                                 double samples_per_s) {
  return spec.is_qa ? samples_per_s * 10.0 : samples_per_s;
}

inline std::string throughput_unit(const runtime::WorkloadSpec& spec) {
  return spec.is_qa ? "QAs/10s" : "images/s";
}

}  // namespace osp::bench
