// Shared configuration and helpers for the figure/table benches.
//
// Every bench prints an aligned text table with the same rows/series the
// paper reports, and writes a CSV next to the binary (bench_out/) for
// plotting. Epoch counts and the repetition seed can be overridden through
// environment variables so a quick smoke pass is possible:
//   OSP_BENCH_EPOCHS=4 ./build/bench/bench_fig6a_throughput
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/r2sp.hpp"
#include "sync/ssp.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace osp::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Boolean env toggle: unset, empty, or "0" is off; anything else is on.
inline bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::string_view(value) != "0";
}

/// The testbed configuration of §5.1.1: 8 workers + standalone PS behind a
/// 10 Gbit/s ToR, Tesla T4-class compute, mild compute jitter.
inline runtime::EngineConfig paper_config(
    std::size_t workers = 8,
    std::size_t epochs = env_size("OSP_BENCH_EPOCHS", 30)) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 20230807;  // ICPP'23 conference date
  cfg.straggler_jitter = 0.05;
  // Opt-in observability: OSP_TRACE=1 makes every bench run record spans,
  // flows, counters, and per-round sync telemetry (pure observation — the
  // simulated numerics and timings are unchanged).
  if (env_flag("OSP_TRACE")) {
    cfg.record_trace = true;
    cfg.record_telemetry = true;
  }
  return cfg;
}

struct NamedSync {
  std::string label;
  std::function<std::unique_ptr<runtime::SyncModel>()> make;
};

/// The paper's comparison set in its presentation order (§5.1.3).
inline std::vector<NamedSync> paper_baselines() {
  return {
      {"ASP", [] { return std::make_unique<sync::AspSync>(); }},
      {"BSP", [] { return std::make_unique<sync::BspSync>(); }},
      {"R2SP", [] { return std::make_unique<sync::R2spSync>(); }},
      {"OSP", [] { return std::make_unique<core::OspSync>(); }},
  };
}

inline runtime::RunResult run_one(const runtime::WorkloadSpec& spec,
                                  runtime::SyncModel& sync,
                                  const runtime::EngineConfig& cfg) {
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

/// Like run_one, but when tracing is on also drops the run's observability
/// artifacts under bench_out/: <prefix>_trace.json (Chrome tracing) and
/// <prefix>_telemetry.jsonl (one sync round per line).
inline runtime::RunResult run_one_with_artifacts(
    const runtime::WorkloadSpec& spec, runtime::SyncModel& sync,
    const runtime::EngineConfig& cfg, const std::string& prefix) {
  runtime::Engine engine(spec, cfg, sync);
  runtime::RunResult r = engine.run();
  if (cfg.record_trace && !prefix.empty()) {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (!ec) {
      engine.trace().write_chrome_json("bench_out/" + prefix + "_trace.json");
      runtime::write_telemetry_jsonl(
          "bench_out/" + prefix + "_telemetry.jsonl", r.rounds);
    }
  }
  return r;
}

/// Lower-case the label and replace path-hostile characters so it can name
/// an artifact file ("BSP(x2PS)" -> "bsp_x2ps_").
inline std::string artifact_prefix(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

// ---- parallel multi-run harness -----------------------------------------

/// One simulation job's outcome plus host wall-clock seconds and an
/// optional sync-specific extra value (e.g. OSP's U_max) the job chooses
/// to surface.
struct TimedResult {
  runtime::RunResult result;
  double wall_s = 0.0;
  double aux = 0.0;
};

/// A self-contained simulation job: constructs its own sync model and
/// engine so it can run concurrently with its siblings.
using BenchJob = std::function<TimedResult()>;

/// Build the common job shape: run `spec` under the sync model `make()`
/// produces with `cfg`, timing the host wall clock. `aux_of` (optional)
/// extracts the extra value from the sync model after the run.
template <typename MakeSync,
          typename AuxOf = double (*)(const runtime::SyncModel&)>
BenchJob make_job(
    const runtime::WorkloadSpec& spec, MakeSync make,
    runtime::EngineConfig cfg,
    AuxOf aux_of = [](const runtime::SyncModel&) { return 0.0; }) {
  return [&spec, make = std::move(make), cfg, aux_of]() {
    const auto t0 = std::chrono::steady_clock::now();
    auto sync = make();
    TimedResult out;
    out.result = run_one(spec, *sync, cfg);
    out.aux = aux_of(*sync);
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return out;
  };
}

/// Fan the jobs out across the global thread pool, returning results in
/// job order. Every job owns its Simulator/Engine/sync state, so each
/// result is bit-identical to what a serial run would produce — only the
/// host wall-clock differs.
inline std::vector<TimedResult> run_jobs_parallel(
    const std::vector<BenchJob>& jobs) {
  return util::parallel_map(jobs.size(),
                            [&jobs](std::size_t i) { return jobs[i](); });
}

/// Print the table and also drop a CSV under bench_out/.
inline void emit(const util::Table& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    const std::string path = "bench_out/" + name + ".csv";
    if (table.write_csv(path)) {
      std::cout << "(csv: " << path << ")\n";
    }
  }
  std::cout << std::endl;
}

/// The paper reports BERT throughput as QAs per 10 seconds (§5.2).
inline double display_throughput(const runtime::WorkloadSpec& spec,
                                 double samples_per_s) {
  return spec.is_qa ? samples_per_s * 10.0 : samples_per_s;
}

inline std::string throughput_unit(const runtime::WorkloadSpec& spec) {
  return spec.is_qa ? "QAs/10s" : "images/s";
}

}  // namespace osp::bench
