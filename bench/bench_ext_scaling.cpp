// Extension (§6.1): scaling — more workers, and multiple parameter servers.
//
// Part 1: with a single PS, growing the worker count shrinks Eq. 5's
// U_max = b·T_C/(N·(1+lr)) and saturates the PS links/update loop — the
// effect motivating the paper's multi-PS future work. The sweep now runs
// to 256 workers (the incremental rate solver + O(active) event path keep
// the simulation tractable); the "wall (s)" column is the host wall-clock
// cost of that row's three simulations, run concurrently through the
// multi-run harness.
// Part 2: the implemented multi-PS sharding (BytePS-style): blocks are
// byte-balanced across P servers, every PS aggregates and steps its own
// shard, and OSP's ICS capacity scales with P.
#include "bench_common.hpp"

#include "data/synthetic_image.hpp"
#include "sync/sharded_bsp.hpp"
#include "util/check.hpp"

namespace {

/// Weak scaling: the stock synthetic train set (2048 examples) shards to
/// less than one batch per worker beyond 32 workers. Grow the dataset —
/// same task seed and distribution, more noise samples — so every worker
/// keeps at least one batch per epoch, matching the 32-worker shard shape.
osp::runtime::WorkloadSpec scaled_spec(const osp::runtime::WorkloadSpec& base,
                                       std::size_t workers) {
  const std::size_t need = workers * base.batch_size;
  if (base.train->size() >= need) return base;
  const auto* img =
      dynamic_cast<const osp::data::SyntheticImageDataset*>(base.train.get());
  OSP_CHECK(img != nullptr, "scaling sweep expects a synthetic image set");
  osp::data::ImageDatasetConfig cfg = img->config();
  cfg.num_examples = need;
  osp::runtime::WorkloadSpec out = base;
  out.train = std::make_shared<osp::data::SyntheticImageDataset>(cfg);
  return out;
}

}  // namespace

int main() {
  using namespace osp;
  const auto spec = models::resnet50_cifar10();
  const std::size_t epochs = bench::env_size("OSP_BENCH_EPOCHS", 12);

  const auto osp_umax = +[](const runtime::SyncModel& s) {
    return static_cast<const core::OspSync&>(s).u_max();
  };

  std::cout << "# Ext (§6.1a): worker scaling with a single PS\n";
  const std::vector<std::size_t> worker_counts = {4, 8, 16, 32, 64, 128, 256};
  std::vector<runtime::WorkloadSpec> specs;  // stable refs for the jobs
  specs.reserve(worker_counts.size());
  std::vector<bench::BenchJob> jobs;
  for (const std::size_t workers : worker_counts) {
    const auto cfg = bench::paper_config(workers, epochs);
    specs.push_back(scaled_spec(spec, workers));
    const auto& wspec = specs.back();
    jobs.push_back(bench::make_job(
        wspec, [] { return std::make_unique<sync::BspSync>(); }, cfg));
    jobs.push_back(bench::make_job(
        wspec, [] { return std::make_unique<sync::AspSync>(); }, cfg));
    jobs.push_back(bench::make_job(
        wspec, [] { return std::make_unique<core::OspSync>(); }, cfg,
        osp_umax));
  }
  const auto results = bench::run_jobs_parallel(jobs);

  util::Table workers_table({"workers", "BSP tput", "ASP tput", "OSP tput",
                             "OSP steady BST (s)", "U_max (MB)", "wall (s)"});
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    const auto& rb = results[3 * i + 0];
    const auto& ra = results[3 * i + 1];
    const auto& ro = results[3 * i + 2];
    workers_table.add_row(
        {std::to_string(worker_counts[i]),
         util::Table::fmt(rb.result.throughput, 1),
         util::Table::fmt(ra.result.throughput, 1),
         util::Table::fmt(ro.result.steady_throughput, 1),
         util::Table::fmt(ro.result.steady_bst_s, 3),
         util::Table::fmt(ro.aux / 1e6, 1),
         util::Table::fmt(rb.wall_s + ra.wall_s + ro.wall_s, 2)});
  }
  bench::emit(workers_table, "ext_scaling_workers");

  std::cout << "# Ext (§6.1b): multi-PS sharding, 16 workers\n";
  const std::vector<std::size_t> ps_counts = {1, 2, 4};
  std::vector<bench::BenchJob> ps_jobs;
  for (const std::size_t ps : ps_counts) {
    auto cfg = bench::paper_config(16, epochs);
    cfg.cluster.num_ps = ps;
    ps_jobs.push_back(bench::make_job(
        spec, [] { return std::make_unique<sync::ShardedBspSync>(); }, cfg));
    ps_jobs.push_back(bench::make_job(
        spec, [] { return std::make_unique<core::OspSync>(); }, cfg,
        osp_umax));
  }
  const auto ps_results = bench::run_jobs_parallel(ps_jobs);

  util::Table ps_table({"PSes", "BSP(xP) tput", "BSP(xP) BST",
                        "OSP(xP) tput", "OSP(xP) steady BST",
                        "OSP U_max (MB)", "wall (s)"});
  for (std::size_t i = 0; i < ps_counts.size(); ++i) {
    const auto& rb = ps_results[2 * i + 0];
    const auto& ro = ps_results[2 * i + 1];
    ps_table.add_row({std::to_string(ps_counts[i]),
                      util::Table::fmt(rb.result.throughput, 1),
                      util::Table::fmt(rb.result.mean_bst_s, 3),
                      util::Table::fmt(ro.result.steady_throughput, 1),
                      util::Table::fmt(ro.result.steady_bst_s, 3),
                      util::Table::fmt(ro.aux / 1e6, 1),
                      util::Table::fmt(rb.wall_s + ro.wall_s, 2)});
  }
  bench::emit(ps_table, "ext_scaling_multips");
  return 0;
}
