// Extension (§6.1): scaling — more workers, and multiple parameter servers.
//
// Part 1: with a single PS, growing the worker count shrinks Eq. 5's
// U_max = b·T_C/(N·(1+lr)) and saturates the PS links/update loop — the
// effect motivating the paper's multi-PS future work.
// Part 2: the implemented multi-PS sharding (BytePS-style): blocks are
// byte-balanced across P servers, every PS aggregates and steps its own
// shard, and OSP's ICS capacity scales with P.
#include "bench_common.hpp"

#include "sync/sharded_bsp.hpp"

int main() {
  using namespace osp;
  const auto spec = models::resnet50_cifar10();
  const std::size_t epochs = bench::env_size("OSP_BENCH_EPOCHS", 12);

  std::cout << "# Ext (§6.1a): worker scaling with a single PS\n";
  util::Table workers_table({"workers", "BSP tput", "ASP tput", "OSP tput",
                             "OSP steady BST (s)", "U_max (MB)"});
  for (std::size_t workers : {4, 8, 16, 32}) {
    const auto cfg = bench::paper_config(workers, epochs);
    sync::BspSync bsp;
    sync::AspSync asp;
    core::OspSync osp;
    const auto rb = bench::run_one(spec, bsp, cfg);
    const auto ra = bench::run_one(spec, asp, cfg);
    const auto ro = bench::run_one(spec, osp, cfg);
    workers_table.add_row({std::to_string(workers),
                           util::Table::fmt(rb.throughput, 1),
                           util::Table::fmt(ra.throughput, 1),
                           util::Table::fmt(ro.steady_throughput, 1),
                           util::Table::fmt(ro.steady_bst_s, 3),
                           util::Table::fmt(osp.u_max() / 1e6, 1)});
  }
  bench::emit(workers_table, "ext_scaling_workers");

  std::cout << "# Ext (§6.1b): multi-PS sharding, 16 workers\n";
  util::Table ps_table({"PSes", "BSP(xP) tput", "BSP(xP) BST",
                        "OSP(xP) tput", "OSP(xP) steady BST",
                        "OSP U_max (MB)"});
  for (std::size_t ps : {1, 2, 4}) {
    auto cfg = bench::paper_config(16, epochs);
    cfg.cluster.num_ps = ps;
    sync::ShardedBspSync bsp;
    core::OspSync osp;
    const auto rb = bench::run_one(spec, bsp, cfg);
    const auto ro = bench::run_one(spec, osp, cfg);
    ps_table.add_row({std::to_string(ps),
                      util::Table::fmt(rb.throughput, 1),
                      util::Table::fmt(rb.mean_bst_s, 3),
                      util::Table::fmt(ro.steady_throughput, 1),
                      util::Table::fmt(ro.steady_bst_s, 3),
                      util::Table::fmt(osp.u_max() / 1e6, 1)});
  }
  bench::emit(ps_table, "ext_scaling_multips");
  return 0;
}
