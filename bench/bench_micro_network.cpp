// Micro-benchmarks (google-benchmark): the discrete-event core and the
// max-min fair-share network model — event throughput, rate recomputation
// under churn, and push/pull round-trip traffic at cluster scale.
//
// Besides the console table, the run writes
// bench_out/BENCH_micro_network.json (override with OSP_BENCH_JSON): one
// record per benchmark with ns/op, events/sec, and the rate solver's
// flow-visit counters measured twice — once with the from-scratch
// reference solver ("before") and once with the incremental
// connected-component solver ("after") — so successive PRs can diff
// simulator performance mechanically.
//
// On topology and the visit ratio: a single shared PS couples every
// concurrent flow through the PS ingress/egress link into one connected
// component, so the incremental solver must legitimately re-solve
// everything (that coupling *is* the incast effect) and the ratio stays
// near 1. The reduction appears when traffic has component structure: in
// sharded/multi-PS deployments (racks with their own PS — the
// configuration the paper's §6 multi-PS experiments and our
// bench_ext_scaling §6.1b sweep model) each rack's push set and pull set
// is an independent component, and the incremental solver skips the rest
// of the cluster.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/gib.hpp"
#include "core/pgp.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace osp;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
  state.counters["events_per_s"] = benchmark::Counter(
      10000.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_NetworkFlowChurn(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Network net(sim);
    const sim::LinkId l = net.add_link(1e9);
    for (std::size_t f = 0; f < flows; ++f) {
      net.start_flow({l}, 1e6 * static_cast<double>(f + 1), nullptr);
    }
    events = sim.run();
    benchmark::DoNotOptimize(net.bytes_delivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_NetworkFlowChurn)->Arg(8)->Arg(64)->Arg(256);

// ---- push/pull round-trip churn at cluster scale ------------------------

/// A rack-structured parameter-server workload driven straight against the
/// Network: `racks` independent PSes, `workers_per_rack` workers each doing
/// `rounds` push→pull round trips with deterministic per-worker stagger
/// (modeling compute jitter). Every worker and PS gets its own up/down
/// link, as in sim::Cluster's topology.
class RoundTripHarness {
 public:
  RoundTripHarness(std::size_t racks, std::size_t workers_per_rack,
                   std::size_t rounds, bool reference_solver)
      : net_(sim_) {
    net_.set_use_reference_solver(reference_solver);
    const double bw = sim::gbps_to_bytes_per_sec(10.0);
    constexpr double kLatency = 50e-6;
    constexpr double kAlpha = 0.03;
    std::vector<std::pair<sim::LinkId, sim::LinkId>> ps;  // up, down
    ps.reserve(racks);
    for (std::size_t r = 0; r < racks; ++r) {
      const sim::LinkId up = net_.add_link(bw, kLatency, 0.0, kAlpha);
      const sim::LinkId down = net_.add_link(bw, kLatency, 0.0, kAlpha);
      ps.emplace_back(up, down);
    }
    workers_.reserve(racks * workers_per_rack);
    for (std::size_t r = 0; r < racks; ++r) {
      for (std::size_t w = 0; w < workers_per_rack; ++w) {
        const sim::LinkId up = net_.add_link(bw, kLatency);
        const sim::LinkId down = net_.add_link(bw, kLatency);
        Worker& wk = workers_.emplace_back();
        wk.push_route = {up, ps[r].second};
        wk.pull_route = {ps[r].first, down};
        wk.rounds_left = rounds;
      }
    }
    // Shard the model across the rack's workers: each pushes its slice.
    bytes_per_transfer_ = 80e6 / static_cast<double>(workers_per_rack);
  }

  void run() {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      sim_.schedule(static_cast<double>(w) * 13e-6,
                    [this, w] { start_push(w); });
    }
    sim_.run();
  }

  [[nodiscard]] const sim::Network::SolveStats& stats() const {
    return net_.solve_stats();
  }
  [[nodiscard]] std::uint64_t events() const {
    return sim_.events_processed();
  }
  [[nodiscard]] double makespan() const { return sim_.now(); }

 private:
  struct Worker {
    std::vector<sim::LinkId> push_route;
    std::vector<sim::LinkId> pull_route;
    std::size_t rounds_left = 0;
  };

  void start_push(std::size_t w) {
    net_.start_flow(workers_[w].push_route, bytes_per_transfer_,
                    [this, w] { start_pull(w); });
  }

  void start_pull(std::size_t w) {
    net_.start_flow(workers_[w].pull_route, bytes_per_transfer_,
                    [this, w] { round_done(w); });
  }

  void round_done(std::size_t w) {
    if (--workers_[w].rounds_left == 0) return;
    // Deterministic pseudo-jitter: compute time varies per worker/round.
    const std::uint64_t h =
        w * 2654435761ULL + workers_[w].rounds_left * 40503ULL;
    sim_.schedule(200e-6 + static_cast<double>(h % 97) * 7e-6,
                  [this, w] { start_push(w); });
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::vector<Worker> workers_;
  double bytes_per_transfer_ = 0.0;
};

struct ChurnRun {
  std::uint64_t flow_visits = 0;
  std::uint64_t solves = 0;
  std::uint64_t full_solves = 0;
  std::uint64_t events = 0;
  double makespan = 0.0;
};

ChurnRun run_round_trips(std::size_t racks, std::size_t workers_per_rack,
                         std::size_t rounds, bool reference_solver) {
  // Heap-allocate: the harness self-references through event captures.
  auto h = std::make_unique<RoundTripHarness>(racks, workers_per_rack, rounds,
                                              reference_solver);
  h->run();
  return {h->stats().flow_visits, h->stats().solves, h->stats().full_solves,
          h->events(), h->makespan()};
}

/// Args: {racks, workers_per_rack}. The timed body runs the shipped
/// (incremental) solver; the before/after flow-visit counters come from
/// one untimed run of each solver on the identical workload.
void BM_RoundTripChurn(benchmark::State& state) {
  const auto racks = static_cast<std::size_t>(state.range(0));
  const auto wpr = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kRounds = 4;
  const ChurnRun after = run_round_trips(racks, wpr, kRounds, false);
  const ChurnRun before = run_round_trips(racks, wpr, kRounds, true);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const ChurnRun r = run_round_trips(racks, wpr, kRounds, false);
    events = r.events;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["workers"] = benchmark::Counter(
      static_cast<double>(racks * wpr));
  state.counters["solves"] =
      benchmark::Counter(static_cast<double>(after.solves));
  state.counters["visits_reference"] =
      benchmark::Counter(static_cast<double>(before.flow_visits));
  state.counters["visits_incremental"] =
      benchmark::Counter(static_cast<double>(after.flow_visits));
  state.counters["visit_ratio"] = benchmark::Counter(
      static_cast<double>(before.flow_visits) /
      static_cast<double>(after.flow_visits));
}
BENCHMARK(BM_RoundTripChurn)
    ->Args({1, 8})    // the paper's 8-worker testbed, one PS
    ->Args({1, 32})   // 32 workers on one PS: fully coupled, ratio ~1
    ->Args({4, 8})    // 32 workers sharded across 4 PSes
    ->Args({16, 8})   // 128 workers
    ->Args({32, 8});  // 256 workers

void BM_IncastRound(benchmark::State& state) {
  // One BSP-style round: 8 pushes into the PS + 8 responses.
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::ClusterConfig cfg;
    cfg.num_workers = 8;
    sim::Cluster cluster(sim, cfg);
    int arrived = 0;
    for (std::size_t w = 0; w < 8; ++w) {
      cluster.network().start_flow(cluster.route_to_ps(w), 100e6,
                                   [&arrived] { ++arrived; });
    }
    sim.run();
    for (std::size_t w = 0; w < 8; ++w) {
      cluster.network().start_flow(cluster.route_from_ps(w), 100e6,
                                   [&arrived] { ++arrived; });
    }
    sim.run();
    events = sim.events_processed();
    benchmark::DoNotOptimize(arrived);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IncastRound);

void BM_PgpRanking(benchmark::State& state) {
  // PGP importance + sort over a model-sized flat vector.
  const auto params_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> params(params_count), grads(params_count);
  for (float& v : params) v = static_cast<float>(rng.normal());
  for (float& v : grads) v = static_cast<float>(rng.normal());
  std::vector<nn::LayerBlockInfo> blocks;
  const std::size_t block_size = params_count / 16;
  for (std::size_t b = 0; b < 16; ++b) {
    blocks.push_back({"b" + std::to_string(b), b * block_size, block_size});
  }
  std::vector<double> bytes(16, static_cast<double>(block_size) * 4.0);
  for (auto _ : state) {
    auto imp = core::density_normalize(
        core::pgp_importance(params, grads, blocks), blocks);
    auto gib = core::Gib::from_ranking(core::rank_ascending(imp), bytes,
                                       static_cast<double>(params_count) * 2.0);
    benchmark::DoNotOptimize(gib.count_important());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params_count));
}
BENCHMARK(BM_PgpRanking)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  return osp::bench::run_benchmarks_with_json(
      argc, argv, "bench_out/BENCH_micro_network.json");
}
