// Micro-benchmarks (google-benchmark): the discrete-event core and the
// max-min fair-share network model — event throughput, rate recomputation
// under churn, and an end-to-end incast round.
#include <benchmark/benchmark.h>

#include "core/gib.hpp"
#include "core/pgp.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace osp;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_NetworkFlowChurn(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Network net(sim);
    const sim::LinkId l = net.add_link(1e9);
    for (std::size_t f = 0; f < flows; ++f) {
      net.start_flow({l}, 1e6 * static_cast<double>(f + 1), nullptr);
    }
    sim.run();
    benchmark::DoNotOptimize(net.bytes_delivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_NetworkFlowChurn)->Arg(8)->Arg(64)->Arg(256);

void BM_IncastRound(benchmark::State& state) {
  // One BSP-style round: 8 pushes into the PS + 8 responses.
  for (auto _ : state) {
    sim::Simulator sim;
    sim::ClusterConfig cfg;
    cfg.num_workers = 8;
    sim::Cluster cluster(sim, cfg);
    int arrived = 0;
    for (std::size_t w = 0; w < 8; ++w) {
      cluster.network().start_flow(cluster.route_to_ps(w), 100e6,
                                   [&arrived] { ++arrived; });
    }
    sim.run();
    for (std::size_t w = 0; w < 8; ++w) {
      cluster.network().start_flow(cluster.route_from_ps(w), 100e6,
                                   [&arrived] { ++arrived; });
    }
    sim.run();
    benchmark::DoNotOptimize(arrived);
  }
}
BENCHMARK(BM_IncastRound);

void BM_PgpRanking(benchmark::State& state) {
  // PGP importance + sort over a model-sized flat vector.
  const auto params_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> params(params_count), grads(params_count);
  for (float& v : params) v = static_cast<float>(rng.normal());
  for (float& v : grads) v = static_cast<float>(rng.normal());
  std::vector<nn::LayerBlockInfo> blocks;
  const std::size_t block_size = params_count / 16;
  for (std::size_t b = 0; b < 16; ++b) {
    blocks.push_back({"b" + std::to_string(b), b * block_size, block_size});
  }
  std::vector<double> bytes(16, static_cast<double>(block_size) * 4.0);
  for (auto _ : state) {
    auto imp = core::density_normalize(
        core::pgp_importance(params, grads, blocks), blocks);
    auto gib = core::Gib::from_ranking(core::rank_ascending(imp), bytes,
                                       static_cast<double>(params_count) * 2.0);
    benchmark::DoNotOptimize(gib.count_important());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params_count));
}
BENCHMARK(BM_PgpRanking)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
