// Ablation (§4.1.2): Algorithm 1's loss-driven S(Gᵘ) ramp vs fixed splits.
//
// Fixed 0 % is BSP (§4.3's degradation); fixed 80 % is the cap; the
// schedule should track the best fixed split's throughput while protecting
// early-training accuracy.
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Ablation: S(G^u) tuning — Algorithm 1 vs fixed budgets\n";
  util::Table table({"budget", "best metric", "samples/s", "mean BST (s)",
                     "final ICS budget (MB)"});
  const auto spec = models::resnet50_cifar10();
  const auto cfg = bench::paper_config();

  {
    core::OspSync osp;  // Algorithm 1
    const auto r = bench::run_one(spec, osp, cfg);
    table.add_row({"Algorithm 1",
                   util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                   util::Table::fmt(r.throughput, 1),
                   util::Table::fmt(r.mean_bst_s, 3),
                   util::Table::fmt(osp.current_ics_budget() / 1e6, 1)});
  }
  for (double fixed : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    core::OspOptions opts;
    opts.fixed_budget_fraction = fixed;
    core::OspSync osp(opts);
    const auto r = bench::run_one(spec, osp, cfg);
    table.add_row({"fixed " + util::Table::fmt(100.0 * fixed, 0) + "%",
                   util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                   util::Table::fmt(r.throughput, 1),
                   util::Table::fmt(r.mean_bst_s, 3),
                   util::Table::fmt(osp.current_ics_budget() / 1e6, 1)});
  }
  bench::emit(table, "ablation_tuning");
  return 0;
}
