// Figure 3: the communication share of training grows as DDL scales.
//
// The paper trains ResNet50 with PS-based BSP on 1/2/4/8 machines and shows
// that adding nodes does not shrink training time proportionally because
// the communication fraction expands. We reproduce the series: per-node
// count, iteration time decomposition (compute vs synchronization), the
// communication share, and the speedup over 1 worker vs the ideal.
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Fig. 3: communication share vs cluster size "
               "(ResNet50, BSP)\n";
  util::Table table({"workers", "BCT (s)", "BST (s)", "comm share",
                     "samples/s", "speedup", "ideal"});
  const auto spec = models::resnet50_cifar10();
  double base_throughput = 0.0;
  for (std::size_t workers : {1, 2, 4, 8}) {
    sync::BspSync bsp;
    const auto cfg = bench::paper_config(
        workers, bench::env_size("OSP_BENCH_EPOCHS", 6));
    const auto r = bench::run_one(spec, bsp, cfg);
    if (workers == 1) base_throughput = r.throughput;
    const double share = r.mean_bst_s / (r.mean_bst_s + r.mean_bct_s);
    table.add_row({std::to_string(workers), util::Table::fmt(r.mean_bct_s, 3),
                   util::Table::fmt(r.mean_bst_s, 3),
                   util::Table::fmt(100.0 * share, 1) + "%",
                   util::Table::fmt(r.throughput, 1),
                   util::Table::fmt(r.throughput / base_throughput, 2) + "x",
                   std::to_string(workers) + ".00x"});
  }
  bench::emit(table, "fig3_comm_share");
  return 0;
}
