// KV message-filter compositions: wire bytes per push for each pipeline
// stack, plus what the byte reduction does to accuracy and BST.
//
// Every row is KvBspSync (BSP numerics, barrier semantics) with a
// different filter pipeline, so the *only* difference between rows is
// what the composed filters do to the payload and its accounting. Bytes
// are at KvBspSync's self-consistent proxy scale (4 bytes per proxy
// element; the dense row is the reference), so the interesting column is
// the ratio. The EXPERIMENTS.md wire-bytes table is generated from this
// bench.
#include "bench_common.hpp"

#include "sync/kv_bsp.hpp"

int main() {
  using namespace osp;
  std::cout << "# KV filter compositions: wire bytes vs accuracy "
               "(ResNet50/CIFAR10)\n";
  util::Table table({"pipeline", "push bytes", "vs dense", "best metric",
                     "steady BST (s)"});
  const auto spec = models::resnet50_cifar10();
  auto cfg = bench::paper_config();
  cfg.record_telemetry = true;  // the wire bytes come from round telemetry

  struct Row {
    std::string label;
    sync::KvBspOptions opt;
  };
  std::vector<Row> rows;
  rows.push_back({"dense", {}});
  {
    sync::KvBspOptions o;
    o.gib_keep_fraction = 0.5;
    rows.push_back({"gib 50%", o});
  }
  {
    sync::KvBspOptions o;
    o.topk_keep_fraction = 0.1;
    rows.push_back({"topk 10%", o});
  }
  {
    sync::KvBspOptions o;
    o.quantize_int8 = true;
    rows.push_back({"q8", o});
  }
  {
    sync::KvBspOptions o;
    o.gib_keep_fraction = 0.5;
    o.topk_keep_fraction = 0.1;
    rows.push_back({"gib∘topk", o});
  }
  {
    sync::KvBspOptions o;
    o.gib_keep_fraction = 0.5;
    o.quantize_int8 = true;
    rows.push_back({"gib∘q8", o});
  }
  {
    sync::KvBspOptions o;
    o.topk_keep_fraction = 0.1;
    o.quantize_int8 = true;
    rows.push_back({"topk∘q8", o});
  }
  {
    sync::KvBspOptions o;
    o.gib_keep_fraction = 0.5;
    o.topk_keep_fraction = 0.1;
    o.quantize_int8 = true;
    rows.push_back({"gib∘topk∘q8", o});
  }

  double dense_push = 0.0;
  for (const Row& row : rows) {
    sync::KvBspSync sync(row.opt);
    const auto r = bench::run_one(spec, sync, cfg);
    // Mean encoded push wire bytes per worker per round.
    double total = 0.0;
    for (const auto& rec : r.rounds) total += rec.important_bytes;
    const double push =
        r.rounds.empty()
            ? 0.0
            : total / (static_cast<double>(r.rounds.size()) *
                       static_cast<double>(cfg.num_workers));
    if (dense_push == 0.0) dense_push = push;
    table.add_row({row.label, util::Table::fmt(push, 1),
                   util::Table::fmt(100.0 * push / dense_push, 1) + "%",
                   util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                   util::Table::fmt(r.steady_bst_s, 3)});
  }
  bench::emit(table, "kv_filters");
  return 0;
}
