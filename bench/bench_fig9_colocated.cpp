// Figure 9 / §5.4: batch computation time under co-located PS.
//
// Three scenarios per workload: BSP with a standalone PS, OSP-S (standalone
// PS), and OSP-C (co-located PS, where worker 0 also computes the GIB).
// Expected shape: OSP-S ≈ BSP (no worker-side overhead), OSP-C adds a
// bounded overhead — lowest for InceptionV3 (~3 %), highest for VGG16
// (~8 %).
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Fig. 9: batch computation time (BCT) with co-located PS\n";
  util::Table table({"workload", "BSP (s)", "OSP-S (s)", "OSP-C (s)",
                     "OSP-S vs BSP", "OSP-C vs BSP"});
  const std::size_t epochs = bench::env_size("OSP_BENCH_EPOCHS", 8);
  for (const auto& spec : models::paper_workloads()) {
    const auto standalone = bench::paper_config(8, epochs);
    auto colocated = standalone;
    colocated.cluster.colocated_ps = true;

    sync::BspSync bsp;
    const double bct_bsp = bench::run_one(spec, bsp, standalone).mean_bct_s;

    core::OspSync osp_s;
    const double bct_s = bench::run_one(spec, osp_s, standalone).mean_bct_s;

    core::OspOptions colo_opts;
    colo_opts.colocated_ps = true;
    core::OspSync osp_c(colo_opts);
    const double bct_c = bench::run_one(spec, osp_c, colocated).mean_bct_s;

    table.add_row({spec.name, util::Table::fmt(bct_bsp, 3),
                   util::Table::fmt(bct_s, 3), util::Table::fmt(bct_c, 3),
                   util::Table::fmt(100.0 * (bct_s / bct_bsp - 1.0), 1) + "%",
                   util::Table::fmt(100.0 * (bct_c / bct_bsp - 1.0), 1) + "%"});
  }
  bench::emit(table, "fig9_colocated_bct");
  return 0;
}
