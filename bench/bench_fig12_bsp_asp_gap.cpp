// Figures 1–2 / §2.1.2 motivation: per-iteration time of BSP vs ASP.
//
// The paper reports T_ASP can be up to 6× smaller than T_BSP due to incast
// and stragglers. This bench measures mean iteration time (BCT + BST) for
// both models across worker counts and straggler intensities and prints the
// T_BSP/T_ASP ratio.
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Fig. 1-2 motivation: BSP vs ASP iteration time "
               "(ResNet50/CIFAR10 profile)\n";
  util::Table table({"workers", "jitter", "T_BSP (s)", "T_ASP (s)",
                     "T_BSP / T_ASP"});
  const auto spec = models::resnet50_cifar10();
  for (std::size_t workers : {2, 4, 8}) {
    for (double jitter : {0.02, 0.05, 0.15}) {
      auto cfg = bench::paper_config(workers,
                                     bench::env_size("OSP_BENCH_EPOCHS", 6));
      cfg.straggler_jitter = jitter;
      sync::BspSync bsp;
      sync::AspSync asp;
      const auto rb = bench::run_one(spec, bsp, cfg);
      const auto ra = bench::run_one(spec, asp, cfg);
      const double tb = rb.mean_bct_s + rb.mean_bst_s;
      const double ta = ra.mean_bct_s + ra.mean_bst_s;
      table.add_row({std::to_string(workers), util::Table::fmt(jitter, 2),
                     util::Table::fmt(tb, 3), util::Table::fmt(ta, 3),
                     util::Table::fmt(tb / ta, 2)});
    }
  }
  bench::emit(table, "fig12_bsp_asp_gap");
  return 0;
}
