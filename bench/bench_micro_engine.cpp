// Micro-benchmarks (google-benchmark): the engine's batch-parallel worker
// math pipeline — full proxy-CNN training runs at 32 workers, measured
// with the async pipeline (FP+BP jobs overlapped on the thread pool) and
// against the serial reference path (OSP_ASYNC_MATH semantics).
//
// Besides the console table, the run writes
// bench_out/BENCH_micro_engine.json (override with OSP_BENCH_JSON): one
// record per benchmark with ns/op plus
//   speedup_vs_serial — serial-path wall-clock / async-path wall-clock,
//                       both measured in-process on the same workload
//                       (BM_EngineSpeedup only),
//   threads           — pool threads the async path ran with,
//   hw_cores          — std::thread::hardware_concurrency() of the machine,
// so the bench-smoke CI gate can scale its expectation to the runner: the
// paper-level ≥3x bar at 32 workers / 8 threads only physically exists on
// ≥8-core machines; a 1-core container can only assert no regression.
//
// Virtual-time results are bit-identical between the two paths (enforced
// by test_engine_async); this bench exists purely for the wall-clock axis.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>

#include "bench_json.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace osp;

constexpr std::size_t kWorkers = 32;
constexpr std::size_t kThreads = 8;

runtime::EngineConfig engine_config(bool async) {
  runtime::EngineConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.max_epochs = 1;  // resnet50 proxy @ 32 workers: 1 batch/epoch/worker
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  cfg.eval_max_examples = 64;  // cap the (serial, identical-cost) evals
  cfg.async_worker_math = async;
  return cfg;
}

/// One full training run; returns wall-clock seconds. The pool is created
/// per run so thread count is explicit and independent of OSP_NUM_THREADS.
double run_once(bool async, std::size_t threads) {
  util::ThreadPool pool(threads);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::resnet50_cifar10();
  sync::BspSync sync;
  runtime::Engine engine(spec, engine_config(async), sync);
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(engine.run());
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void BM_EngineTrainSerial(benchmark::State& state) {
  for (auto _ : state) {
    run_once(/*async=*/false, kThreads);
  }
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_EngineTrainSerial);

void BM_EngineTrainAsync(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    run_once(/*async=*/true, threads);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_EngineTrainAsync)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_EngineSpeedup(benchmark::State& state) {
  // Best-of-two serial reference, measured in-process right here so the
  // ratio compares the same binary, same workload, same machine state.
  double serial_s = run_once(/*async=*/false, kThreads);
  serial_s = std::min(serial_s, run_once(/*async=*/false, kThreads));
  double async_s = 1e300;
  for (auto _ : state) {
    async_s = std::min(async_s, run_once(/*async=*/true, kThreads));
  }
  state.counters["speedup_vs_serial"] = serial_s / async_s;
  state.counters["threads"] = static_cast<double>(kThreads);
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_EngineSpeedup);

}  // namespace

int main(int argc, char** argv) {
  return osp::bench::run_benchmarks_with_json(
      argc, argv, "bench_out/BENCH_micro_engine.json");
}
