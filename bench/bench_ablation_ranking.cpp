// Ablation (§4.1.1): gradient-importance ranking schemes under an equal
// ICS budget — density-normalized PGP (default), the paper's literal Eq. 4
// sum, gradient magnitude, and random. The sum variant shows why density
// normalization matters: large layers monopolize the "important" set and
// the ICS budget goes unused (higher BST at the same budget).
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Ablation: importance ranking (fixed 60% ICS budget)\n";
  util::Table table({"ranking", "best metric", "samples/s", "mean BST (s)"});
  const auto spec = models::resnet50_cifar10();
  const auto cfg = bench::paper_config();

  struct Variant {
    std::string label;
    core::OspOptions::Ranking ranking;
  };
  const std::vector<Variant> variants = {
      {"PGP density (default)", core::OspOptions::Ranking::kPgp},
      {"PGP sum (Eq. 4 literal)", core::OspOptions::Ranking::kPgpSum},
      {"gradient magnitude", core::OspOptions::Ranking::kMagnitude},
      {"random", core::OspOptions::Ranking::kRandom},
  };
  for (const auto& variant : variants) {
    core::OspOptions opts;
    opts.ranking = variant.ranking;
    opts.fixed_budget_fraction = 0.6;
    core::OspSync osp(opts);
    const auto r = bench::run_one(spec, osp, cfg);
    table.add_row({variant.label,
                   util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                   util::Table::fmt(r.throughput, 1),
                   util::Table::fmt(r.mean_bst_s, 3)});
  }
  bench::emit(table, "ablation_ranking");
  return 0;
}
