// Figure 6 (a–d): the paper's headline comparison — ASP / BSP / R²SP / OSP
// across the five workloads on four metrics. One training run per
// (workload, sync model) pair feeds all four tables:
//   6(a) throughput (images/s; QAs per 10 s for BERTbase)
//   6(b) best top-1 accuracy / F1
//   6(c) iterations to the target metric (BERT: 67-batch iterations, §5.2)
//   6(d) batch synchronization time
// Throughput/BST report steady-state values (final quarter — the
// to-convergence regime the paper measures) with overall means in
// parentheses; Algorithm 1's deliberate BSP-like warm-up dominates short
// runs otherwise.
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace osp;
  // One run per (workload, sync).
  std::map<std::string, std::map<std::string, runtime::RunResult>> results;
  std::vector<runtime::WorkloadSpec> workloads = models::paper_workloads();
  for (const auto& spec : workloads) {
    for (const auto& named : bench::paper_baselines()) {
      auto sync = named.make();
      // With OSP_TRACE=1 each run also leaves bench_out/<workload>_<sync>_
      // {trace.json, telemetry.jsonl} for osp_inspect / chrome://tracing.
      results[spec.name][named.label] = bench::run_one_with_artifacts(
          spec, *sync, bench::paper_config(),
          bench::artifact_prefix(spec.name + "_" + named.label));
    }
  }
  const std::vector<std::string> order = {"ASP", "BSP", "R2SP", "OSP"};

  {
    std::cout << "# Fig. 6(a): throughput — steady-state (overall mean)\n";
    util::Table t({"workload", "unit", "ASP", "BSP", "R2SP", "OSP",
                   "OSP vs best baseline"});
    for (const auto& spec : workloads) {
      std::vector<std::string> row = {spec.name,
                                      bench::throughput_unit(spec)};
      double best_baseline = 0.0, osp = 0.0;
      for (const auto& label : order) {
        const auto& r = results[spec.name][label];
        const double steady =
            bench::display_throughput(spec, r.steady_throughput);
        row.push_back(util::Table::fmt(steady, 1) + " (" +
                      util::Table::fmt(
                          bench::display_throughput(spec, r.throughput), 1) +
                      ")");
        if (label == "OSP") {
          osp = steady;
        } else {
          best_baseline = std::max(best_baseline, steady);
        }
      }
      row.push_back(util::Table::fmt(100.0 * (osp / best_baseline - 1.0), 1) +
                    "%");
      t.add_row(std::move(row));
    }
    bench::emit(t, "fig6a_throughput");
  }

  {
    std::cout << "# Fig. 6(b): top-1 accuracy / F1\n";
    util::Table t({"workload", "metric", "ASP", "BSP", "R2SP", "OSP",
                   "OSP - BSP"});
    for (const auto& spec : workloads) {
      std::vector<std::string> row = {spec.name,
                                      spec.is_qa ? "F1" : "top-1"};
      double bsp = 0.0, osp = 0.0;
      for (const auto& label : order) {
        const auto& r = results[spec.name][label];
        row.push_back(util::Table::fmt(100.0 * r.best_metric, 2) + "%");
        if (label == "BSP") bsp = r.best_metric;
        if (label == "OSP") osp = r.best_metric;
      }
      row.push_back(util::Table::fmt(100.0 * (osp - bsp), 2) + "pp");
      t.add_row(std::move(row));
    }
    bench::emit(t, "fig6b_accuracy");
  }

  {
    std::cout << "# Fig. 6(c): iterations to target metric "
                 "('-' = not reached)\n";
    util::Table t({"workload", "target", "ASP", "BSP", "R2SP", "OSP"});
    for (const auto& spec : workloads) {
      std::vector<std::string> row = {
          spec.name, util::Table::fmt(100.0 * spec.target_metric, 0) + "%"};
      for (const auto& label : order) {
        const auto& r = results[spec.name][label];
        if (r.iters_to_target.has_value()) {
          double iters = *r.iters_to_target;
          if (spec.is_qa) iters /= 67.0;  // §5.2 presentation grouping
          row.push_back(util::Table::fmt(iters, 1));
        } else {
          row.push_back("-");
        }
      }
      t.add_row(std::move(row));
    }
    bench::emit(t, "fig6c_iterations");
  }

  {
    std::cout << "# Fig. 6(d): batch synchronization time, seconds — "
                 "steady-state (overall mean)\n";
    util::Table t({"workload", "ASP", "BSP", "R2SP", "OSP", "OSP / BSP"});
    for (const auto& spec : workloads) {
      std::vector<std::string> row = {spec.name};
      double bsp = 0.0, osp = 0.0;
      for (const auto& label : order) {
        const auto& r = results[spec.name][label];
        row.push_back(util::Table::fmt(r.steady_bst_s, 3) + " (" +
                      util::Table::fmt(r.mean_bst_s, 3) + ")");
        if (label == "BSP") bsp = r.steady_bst_s;
        if (label == "OSP") osp = r.steady_bst_s;
      }
      row.push_back(util::Table::fmt(100.0 * osp / bsp, 1) + "%");
      t.add_row(std::move(row));
    }
    bench::emit(t, "fig6d_bst");
  }
  return 0;
}
