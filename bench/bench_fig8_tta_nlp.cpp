// Figure 8: time-to-F1 curve on the NLP fine-tuning task (BERTbase proxy
// on synthetic SQuAD). The paper: OSP holds a (smaller) advantage on NLP.
#include <algorithm>

#include "bench_common.hpp"

namespace {
double metric_at(const std::vector<osp::runtime::EvalPoint>& curve,
                 double t) {
  double value = 0.0;
  for (const auto& p : curve) {
    if (p.time_s <= t) value = p.metric;
  }
  return value;
}
}  // namespace

int main() {
  using namespace osp;
  const auto spec = models::bertbase_squad();
  std::cout << "# Fig. 8: time-to-F1, " << spec.name << "\n";
  auto cfg = bench::paper_config();
  cfg.eval_every_samples = spec.train->size() / 2;

  std::vector<runtime::RunResult> results;
  double horizon = 0.0;
  for (const auto& named : bench::paper_baselines()) {
    auto sync = named.make();
    results.push_back(bench::run_one(spec, *sync, cfg));
    horizon = std::max(horizon, results.back().total_time_s);
  }

  util::Table table({"time (s)", "ASP F1", "BSP F1", "R2SP F1", "OSP F1"});
  constexpr int kPoints = 12;
  for (int i = 1; i <= kPoints; ++i) {
    const double t = horizon * i / kPoints;
    std::vector<std::string> row = {util::Table::fmt(t, 1)};
    for (const auto& r : results) {
      row.push_back(util::Table::fmt(100.0 * metric_at(r.curve, t), 1) + "%");
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "fig8_tta_bert");
  return 0;
}
