// Ablation (§4.2): what does LGP buy?
//
// Compares OSP with plain LGP, without any correction (stale unimportant
// parameters until the ICS lands), and with the EMA-LGP variant the paper
// evaluated and rejected (extra state, no accuracy gain).
#include "bench_common.hpp"

int main() {
  using namespace osp;
  std::cout << "# Ablation: LGP variants (accuracy / throughput)\n";
  util::Table table({"workload", "variant", "best metric", "samples/s",
                     "mean BST (s)"});
  const std::vector<runtime::WorkloadSpec> workloads = {
      models::resnet50_cifar10(), models::inceptionv3_cifar100()};
  for (const auto& spec : workloads) {
    struct Variant {
      std::string label;
      core::OspOptions opts;
    };
    std::vector<Variant> variants(3);
    variants[0].label = "LGP (paper default)";
    variants[1].label = "no correction";
    variants[1].opts.enable_lgp = false;
    variants[2].label = "EMA-LGP";
    variants[2].opts.use_ema_lgp = true;
    for (const auto& variant : variants) {
      core::OspSync osp(variant.opts);
      const auto r = bench::run_one(spec, osp, bench::paper_config());
      table.add_row({spec.name, variant.label,
                     util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                     util::Table::fmt(r.throughput, 1),
                     util::Table::fmt(r.mean_bst_s, 3)});
    }
  }
  bench::emit(table, "ablation_lgp");
  return 0;
}
