// Extension (§6.2): heterogeneous environments.
//
// Computation-capability heterogeneity: a fraction of workers run at
// reduced speed. Barrier schemes (BSP, OSP's RS) throttle to the slowest
// worker; ASP/SSP decouple but pay staleness; R²SP's fixed token order
// stalls behind the straggler. SSP's staleness bound and R²SP's serial
// variant are included for completeness.
#include "bench_common.hpp"

#include "sync/casp.hpp"
#include "sync/dssp.hpp"

int main() {
  using namespace osp;
  std::cout << "# Ext (§6.2): heterogeneity — one slow worker of 8\n";
  util::Table table({"slow factor", "sync", "best metric", "samples/s",
                     "mean BST (s)"});
  const auto spec = models::resnet50_cifar10();
  const std::size_t epochs = bench::env_size("OSP_BENCH_EPOCHS", 12);
  for (double slow : {1.0, 0.7, 0.4}) {
    auto cfg = bench::paper_config(8, epochs);
    cfg.cluster.speed_factors.assign(8, 1.0);
    cfg.cluster.speed_factors[7] = slow;

    std::vector<std::pair<std::string,
                          std::unique_ptr<runtime::SyncModel>>> syncs;
    syncs.emplace_back("BSP", std::make_unique<sync::BspSync>());
    syncs.emplace_back("ASP", std::make_unique<sync::AspSync>());
    syncs.emplace_back("SSP(s=3)", std::make_unique<sync::SspSync>(3));
    syncs.emplace_back("DSSP(1..5)", std::make_unique<sync::DsspSync>(1, 5));
    syncs.emplace_back("CASP", std::make_unique<sync::CaspSync>());
    syncs.emplace_back("R2SP", std::make_unique<sync::R2spSync>());
    syncs.emplace_back("OSP", std::make_unique<core::OspSync>());
    for (auto& [label, sync] : syncs) {
      const auto r = bench::run_one(spec, *sync, cfg);
      table.add_row({util::Table::fmt(slow, 1), label,
                     util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                     util::Table::fmt(r.throughput, 1),
                     util::Table::fmt(r.mean_bst_s, 3)});
    }
  }
  bench::emit(table, "ext_hetero");
  return 0;
}
