// Figure 7: time-to-accuracy curves on the image classification tasks.
//
// For each image workload the bench prints the accuracy reached by fixed
// virtual-time checkpoints for all four sync models (the figure's series),
// plus the full curves as CSV. The paper's shape: OSP's curve dominates —
// its throughput advantage translates into faster convergence with no
// accuracy loss (§5.3).
#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "bench_common.hpp"
#include "util/json.hpp"

namespace {

/// Accuracy of the latest eval at or before `t` (0 before the first).
double metric_at(const std::vector<osp::runtime::EvalPoint>& curve,
                 double t) {
  double value = 0.0;
  for (const auto& p : curve) {
    if (p.time_s <= t) value = p.metric;
  }
  return value;
}

}  // namespace

int main() {
  using namespace osp;
  const std::vector<runtime::WorkloadSpec> workloads = {
      models::resnet50_cifar10(), models::vgg16_cifar10(),
      models::inceptionv3_cifar100(), models::resnet101_imagenet()};
  std::vector<util::JsonObject> records;
  for (const auto& spec : workloads) {
    std::cout << "# Fig. 7: time-to-accuracy, " << spec.name << "\n";
    auto cfg = bench::paper_config();
    cfg.eval_every_samples = spec.train->size() / 2;  // 2 points per epoch

    std::vector<runtime::RunResult> results;
    double horizon = 0.0;
    for (const auto& named : bench::paper_baselines()) {
      auto sync = named.make();
      results.push_back(bench::run_one(spec, *sync, cfg));
      const auto& r = results.back();
      horizon = std::max(horizon, r.total_time_s);
      util::JsonObject rec;
      rec.set("workload", spec.name)
          .set("sync", named.label)
          .set("total_time_s", r.total_time_s)
          .set("best_metric", r.best_metric)
          .set("final_loss", r.final_loss)
          .set("throughput", r.throughput)
          .set("mean_bst_s", r.mean_bst_s)
          .set("p99_bst_s", r.p99_bst_s);
      if (r.time_to_target_s) {
        rec.set("time_to_target_s", *r.time_to_target_s);
      }
      records.push_back(std::move(rec));
    }

    util::Table table({"time (s)", "ASP", "BSP", "R2SP", "OSP"});
    constexpr int kPoints = 12;
    for (int i = 1; i <= kPoints; ++i) {
      const double t = horizon * i / kPoints;
      std::vector<std::string> row = {util::Table::fmt(t, 1)};
      for (const auto& r : results) {
        row.push_back(util::Table::fmt(100.0 * metric_at(r.curve, t), 1) +
                      "%");
      }
      table.add_row(std::move(row));
    }
    std::string slug = spec.model_name;
    std::transform(slug.begin(), slug.end(), slug.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    bench::emit(table, "fig7_tta_" + slug);
  }
  const char* json_path = std::getenv("OSP_BENCH_JSON");
  // Default into bench_out/ with the other emitters; the curated top-level
  // BENCH_fig7_tta.json is refreshed deliberately from a blessed run.
  const std::string path =
      json_path ? json_path : "bench_out/BENCH_fig7_tta.json";
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (osp::util::write_json_array(path, records)) {
    std::cout << "(json: " << path << ")\n";
  }
  return 0;
}
