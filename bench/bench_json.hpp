// Shared machine-readable emitter for the google-benchmark micros.
//
// Wraps the console reporter and collects every finished run into a flat
// JSON array (BENCH_*.json) that the perf-trajectory tooling diffs across
// PRs: one record per benchmark with op, shape, ns/op, plus every custom
// counter the benchmark attached (events_per_s, rate-solve visit counts,
// …). Tensor benches keep their historical "gflops" field derived from the
// "flops" rate counter.
//
// Artifact policy: emitters default to bench_out/ (ignored scratch, like
// the figure CSVs); the curated top-level BENCH_*.json trajectory files
// are updated deliberately by copying a blessed run's output. Override the
// destination with OSP_BENCH_JSON.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace osp::bench {

class JsonBenchReporter : public benchmark::ConsoleReporter {
 public:
  /// `default_path` is used when OSP_BENCH_JSON is unset. When
  /// `always_emit_gflops` is set every record carries a gflops field
  /// (0.0 without a "flops" counter) — the tensor trajectory's shape.
  explicit JsonBenchReporter(std::string default_path,
                             bool always_emit_gflops = false)
      : default_path_(std::move(default_path)),
        always_emit_gflops_(always_emit_gflops) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      util::JsonObject rec;
      // "BM_Matmul/256" -> op "Matmul", shape "256".
      std::string op = run.benchmark_name();
      std::string shape;
      if (op.rfind("BM_", 0) == 0) op = op.substr(3);
      if (const auto slash = op.find('/'); slash != std::string::npos) {
        shape = op.substr(slash + 1);
        op = op.substr(0, slash);
      }
      rec.set("op", op).set("shape", shape).set("ns_op",
                                                run.GetAdjustedRealTime());
      // "flops" is a rate counter: already flops/second after adjustment.
      const auto flops = run.counters.find("flops");
      if (flops != run.counters.end() || always_emit_gflops_) {
        rec.set("gflops",
                flops != run.counters.end() ? flops->second.value / 1e9 : 0.0);
      }
      for (const auto& [name, counter] : run.counters) {
        if (name == "flops") continue;
        rec.set(name, counter.value);
      }
      records_.push_back(std::move(rec));
    }
  }

  /// Write the collected records; returns false on I/O failure (after
  /// printing a diagnostic).
  bool WriteJson() {
    const char* env = std::getenv("OSP_BENCH_JSON");
    const std::string path = env != nullptr ? env : default_path_;
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    if (!util::write_json_array(path, records_)) {
      std::cerr << "bench: failed to write " << path << "\n";
      return false;
    }
    std::cout << "(json: " << path << ")\n";
    return true;
  }

 private:
  std::string default_path_;
  bool always_emit_gflops_;
  std::vector<util::JsonObject> records_;
};

/// Shared main body for the JSON-emitting micro benches.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& default_path,
                                    bool always_emit_gflops = false) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonBenchReporter reporter(default_path, always_emit_gflops);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool ok = reporter.WriteJson();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}

}  // namespace osp::bench
