// Micro-benchmarks (google-benchmark): tensor kernels on the hot path of
// the proxy-model training — matmul orientations (square, skewed, and
// tile-boundary shapes), conv via im2col, softmax, and the rank-2 helpers.
//
// Besides the console table, the run writes bench_out/BENCH_micro_tensor.json
// (override the path with OSP_BENCH_JSON): one record per benchmark with
// op, shape, ns/op and GFLOP/s, so successive PRs can diff kernel
// performance mechanically. The curated copy lives at the repo top level.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.hpp"
#include "nn/conv2d.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using osp::tensor::Conv2dGeom;
using osp::tensor::Tensor;

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  osp::util::Rng rng(seed);
  Tensor t({r, c});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

Tensor random_nchw(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
                   std::uint64_t seed) {
  osp::util::Rng rng(seed);
  Tensor t({n, c, h, w});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

/// Attach the per-iteration FLOP count; reported as flops/s and picked up
/// by the JSON reporter as GFLOP/s.
void set_flops(benchmark::State& state, double flops_per_iter) {
  state.counters["flops"] = benchmark::Counter(
      flops_per_iter, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 1);
  const Tensor b = random_matrix(n, n, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 3);
  const Tensor b = random_matrix(n, n, 4);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_tn(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 5);
  const Tensor b = random_matrix(n, n, 6);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

// Skewed shapes: the training hot path is full of these (batch×features by
// features×classes, attention scores, conv im2col panels). Args are m, k, n.
void BM_MatmulSkewed(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const Tensor a = random_matrix(m, k, 11);
  const Tensor b = random_matrix(k, n, 12);
  Tensor c({m, n});
  for (auto _ : state) {
    osp::tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(m) * k * n);
}
BENCHMARK(BM_MatmulSkewed)
    ->Args({1024, 64, 64})    // tall-skinny: big batch, small layer
    ->Args({64, 1024, 64})    // deep reduction
    ->Args({64, 64, 1024})    // wide output
    ->Args({1, 512, 512})     // single row (vector-matrix)
    ->Args({512, 512, 1})     // single column (matrix-vector)
    ->Args({127, 129, 65});   // tile-boundary ±1 tails

// Conv-shape cases: one batched Conv2d forward/backward on the proxy-CNN
// geometries (3x3, pad 1, CIFAR-scale feature maps).
// Args: batch, in_c, out_c, side.
double conv_flops(std::size_t batch, const Conv2dGeom& g, std::size_t out_c) {
  return 2.0 * static_cast<double>(batch) * g.patches() * g.patch_len() *
         out_c;
}

void BM_ConvForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in_c = static_cast<std::size_t>(state.range(1));
  const auto out_c = static_cast<std::size_t>(state.range(2));
  const auto side = static_cast<std::size_t>(state.range(3));
  osp::util::Rng rng(21);
  osp::nn::Conv2d conv("bench", in_c, out_c, side, side, 3, 1, 1, rng);
  const Tensor input = random_nchw(batch, in_c, side, side, 22);
  for (auto _ : state) {
    Tensor out = conv.forward(input, /*train=*/true);
    benchmark::DoNotOptimize(out.raw());
  }
  set_flops(state, conv_flops(batch, conv.geometry(), out_c));
}
BENCHMARK(BM_ConvForward)
    ->Args({16, 3, 16, 32})
    ->Args({16, 16, 32, 32})
    ->Args({16, 32, 32, 16});

void BM_ConvBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in_c = static_cast<std::size_t>(state.range(1));
  const auto out_c = static_cast<std::size_t>(state.range(2));
  const auto side = static_cast<std::size_t>(state.range(3));
  osp::util::Rng rng(31);
  osp::nn::Conv2d conv("bench", in_c, out_c, side, side, 3, 1, 1, rng);
  const Tensor input = random_nchw(batch, in_c, side, side, 32);
  const Tensor grad = random_nchw(batch, out_c, side, side, 33);
  (void)conv.forward(input, /*train=*/true);
  for (auto _ : state) {
    Tensor dx = conv.backward(grad);
    benchmark::DoNotOptimize(dx.raw());
  }
  // backward ~= 2x forward GEMM work (dW and dx) plus col2im.
  set_flops(state, 2.0 * conv_flops(batch, conv.geometry(), out_c));
}
BENCHMARK(BM_ConvBackward)
    ->Args({16, 16, 32, 32})
    ->Args({16, 32, 32, 16});

void BM_Im2col(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  Conv2dGeom g{16, side, side, 3, 1, 1};
  osp::util::Rng rng(7);
  std::vector<float> image(16 * side * side);
  for (float& v : image) v = static_cast<float>(rng.normal());
  Tensor cols({g.patches(), g.patch_len()});
  for (auto _ : state) {
    osp::tensor::im2col(image, g, cols);
    benchmark::DoNotOptimize(cols.raw());
  }
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_matrix(64, cols, 8);
  Tensor out({64, cols});
  for (auto _ : state) {
    osp::tensor::softmax_rows(x, out);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(10)->Arg(100)->Arg(1000);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 9);
  Tensor b({n, n});
  for (auto _ : state) {
    osp::tensor::transpose(a, b);
    benchmark::DoNotOptimize(b.raw());
  }
}
BENCHMARK(BM_Transpose)->Arg(128)->Arg(512);

void BM_SumRows(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_matrix(64, cols, 10);
  std::vector<float> out(cols, 0.0f);
  for (auto _ : state) {
    osp::tensor::sum_rows(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SumRows)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  // always_emit_gflops keeps the historical record shape: every tensor
  // record carries a gflops field even when the op reports no FLOPs.
  return osp::bench::run_benchmarks_with_json(
      argc, argv, "bench_out/BENCH_micro_tensor.json",
      /*always_emit_gflops=*/true);
}
