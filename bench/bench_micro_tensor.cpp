// Micro-benchmarks (google-benchmark): tensor kernels on the hot path of
// the proxy-model training — matmul orientations (square, skewed, and
// tile-boundary shapes), conv via im2col, softmax, and the rank-2 helpers.
//
// Besides the console table, the run writes bench_out/BENCH_micro_tensor.json
// (override the path with OSP_BENCH_JSON): one record per benchmark with
// op, shape, ns/op and GFLOP/s, so successive PRs can diff kernel
// performance mechanically. The curated copy lives at the repo top level.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/gib.hpp"
#include "nn/conv2d.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using osp::tensor::Conv2dGeom;
using osp::tensor::Tensor;

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  osp::util::Rng rng(seed);
  Tensor t({r, c});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

Tensor random_nchw(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
                   std::uint64_t seed) {
  osp::util::Rng rng(seed);
  Tensor t({n, c, h, w});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

/// Attach the per-iteration FLOP count; reported as flops/s and picked up
/// by the JSON reporter as GFLOP/s.
void set_flops(benchmark::State& state, double flops_per_iter) {
  state.counters["flops"] = benchmark::Counter(
      flops_per_iter, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 1);
  const Tensor b = random_matrix(n, n, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 3);
  const Tensor b = random_matrix(n, n, 4);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_tn(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 5);
  const Tensor b = random_matrix(n, n, 6);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

// Skewed shapes: the training hot path is full of these (batch×features by
// features×classes, attention scores, conv im2col panels). Args are m, k, n.
void BM_MatmulSkewed(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const Tensor a = random_matrix(m, k, 11);
  const Tensor b = random_matrix(k, n, 12);
  Tensor c({m, n});
  for (auto _ : state) {
    osp::tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  set_flops(state, 2.0 * static_cast<double>(m) * k * n);
}
BENCHMARK(BM_MatmulSkewed)
    ->Args({1024, 64, 64})    // tall-skinny: big batch, small layer
    ->Args({64, 1024, 64})    // deep reduction
    ->Args({64, 64, 1024})    // wide output
    ->Args({1, 512, 512})     // single row (vector-matrix)
    ->Args({512, 512, 1})     // single column (matrix-vector)
    ->Args({127, 129, 65});   // tile-boundary ±1 tails

// Conv-shape cases: one batched Conv2d forward/backward on the proxy-CNN
// geometries (3x3, pad 1, CIFAR-scale feature maps).
// Args: batch, in_c, out_c, side.
double conv_flops(std::size_t batch, const Conv2dGeom& g, std::size_t out_c) {
  return 2.0 * static_cast<double>(batch) * g.patches() * g.patch_len() *
         out_c;
}

void BM_ConvForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in_c = static_cast<std::size_t>(state.range(1));
  const auto out_c = static_cast<std::size_t>(state.range(2));
  const auto side = static_cast<std::size_t>(state.range(3));
  osp::util::Rng rng(21);
  osp::nn::Conv2d conv("bench", in_c, out_c, side, side, 3, 1, 1, rng);
  const Tensor input = random_nchw(batch, in_c, side, side, 22);
  for (auto _ : state) {
    Tensor out = conv.forward(input, /*train=*/true);
    benchmark::DoNotOptimize(out.raw());
  }
  set_flops(state, conv_flops(batch, conv.geometry(), out_c));
}
BENCHMARK(BM_ConvForward)
    ->Args({16, 3, 16, 32})
    ->Args({16, 16, 32, 32})
    ->Args({16, 32, 32, 16});

void BM_ConvBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in_c = static_cast<std::size_t>(state.range(1));
  const auto out_c = static_cast<std::size_t>(state.range(2));
  const auto side = static_cast<std::size_t>(state.range(3));
  osp::util::Rng rng(31);
  osp::nn::Conv2d conv("bench", in_c, out_c, side, side, 3, 1, 1, rng);
  const Tensor input = random_nchw(batch, in_c, side, side, 32);
  const Tensor grad = random_nchw(batch, out_c, side, side, 33);
  (void)conv.forward(input, /*train=*/true);
  for (auto _ : state) {
    Tensor dx = conv.backward(grad);
    benchmark::DoNotOptimize(dx.raw());
  }
  // backward ~= 2x forward GEMM work (dW and dx) plus col2im.
  set_flops(state, 2.0 * conv_flops(batch, conv.geometry(), out_c));
}
BENCHMARK(BM_ConvBackward)
    ->Args({16, 16, 32, 32})
    ->Args({16, 32, 32, 16});

void BM_Im2col(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  Conv2dGeom g{16, side, side, 3, 1, 1};
  osp::util::Rng rng(7);
  std::vector<float> image(16 * side * side);
  for (float& v : image) v = static_cast<float>(rng.normal());
  Tensor cols({g.patches(), g.patch_len()});
  for (auto _ : state) {
    osp::tensor::im2col(image, g, cols);
    benchmark::DoNotOptimize(cols.raw());
  }
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_matrix(64, cols, 8);
  Tensor out({64, cols});
  for (auto _ : state) {
    osp::tensor::softmax_rows(x, out);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(10)->Arg(100)->Arg(1000);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 9);
  Tensor b({n, n});
  for (auto _ : state) {
    osp::tensor::transpose(a, b);
    benchmark::DoNotOptimize(b.raw());
  }
}
BENCHMARK(BM_Transpose)->Arg(128)->Arg(512);

void BM_SumRows(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_matrix(64, cols, 10);
  std::vector<float> out(cols, 0.0f);
  for (auto _ : state) {
    osp::tensor::sum_rows(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SumRows)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------------
// Gradient wire-path kernels (PR 7). Each benchmark times the dispatched
// SIMD kernel in the usual google-benchmark loop AND attaches a
// `speedup_vs_seed` counter: min-of-reps timing of the seed scalar
// implementation (reproduced locally, compiled at the same baseline -O3)
// against the dispatched kernel, measured back-to-back in this process.
// The ratio compares two measurements taken under identical noise, so CI
// can gate on it deterministically the way the rate-solver visit ratio is
// gated. A `simd_tier` counter records which tier ran (0=scalar .. 3=avx512).
// ---------------------------------------------------------------------------

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  osp::util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Best-of-reps wall time of a 16-call batch of fn() — the min over reps
/// filters scheduler noise, the batch amortizes timer overhead.
template <typename F>
double best_seconds(const F& fn, int reps = 9) {
  constexpr int kBatch = 16;
  fn();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void set_wire_counters(benchmark::State& state, double seed_s, double simd_s) {
  state.counters["speedup_vs_seed"] = benchmark::Counter(seed_s / simd_s);
  state.counters["simd_tier"] = benchmark::Counter(
      static_cast<double>(osp::util::simd::active_tier()));
}

void BM_WireQuantizeInt8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<float> src = random_grad(n, 41);
  std::vector<float> buf(n);
  const auto& k = osp::util::simd::kernels();

  // Seed implementation: scalar max-abs scan + round/clamp loop.
  const auto seed_pass = [&] {
    std::copy(src.begin(), src.end(), buf.begin());
    float max_abs = 0.0f;
    for (float v : buf) max_abs = std::max(max_abs, std::fabs(v));
    const float scale = max_abs / 127.0f;
    const float inv = 1.0f / scale;
    for (float& v : buf) {
      const float q = std::round(std::clamp(v * inv, -127.0f, 127.0f));
      v = q * scale;
    }
    benchmark::DoNotOptimize(buf.data());
  };
  const auto simd_pass = [&] {
    std::copy(src.begin(), src.end(), buf.begin());
    const float max_abs = k.max_abs(buf.data(), n);
    const float scale = max_abs / 127.0f;
    k.quantize_dequantize(buf.data(), scale, 1.0f / scale, n);
    benchmark::DoNotOptimize(buf.data());
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireQuantizeInt8)->Arg(16384)->Arg(262144);

void BM_WireTopKThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<float> src = random_grad(n, 42);
  std::vector<float> buf(n);
  std::vector<float> mags(n);
  const float threshold = 1.0f;  // ~keep 32% of a standard normal
  const std::size_t tie_slots = 16;
  const auto& k = osp::util::simd::kernels();

  // Seed implementation: the Top-K scan passes from sparsify() — count
  // strictly-above, then the branchy zeroing pass with tie handling
  // (data-dependent branches at a ~32% keep rate mispredict heavily).
  std::size_t sink = 0;
  const auto seed_pass = [&] {
    std::copy(src.begin(), src.end(), buf.begin());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::fabs(buf[i]) > threshold) ++kept;
    }
    std::size_t slots = tie_slots;
    for (std::size_t i = 0; i < n; ++i) {
      const float m = std::fabs(buf[i]);
      if (m > threshold) {
        ++kept;
      } else if (m == threshold && slots > 0) {
        --slots;
        ++kept;
      } else {
        buf[i] = 0.0f;
      }
    }
    sink += kept;
    benchmark::DoNotOptimize(buf.data());
    benchmark::DoNotOptimize(sink);
  };
  const auto simd_pass = [&] {
    std::copy(src.begin(), src.end(), buf.begin());
    k.abs_into(buf.data(), mags.data(), n);
    sink += k.count_gt(mags.data(), threshold, n);
    sink += k.threshold_zero(buf.data(), mags.data(), threshold, tie_slots, n);
    benchmark::DoNotOptimize(buf.data());
    benchmark::DoNotOptimize(sink);
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireTopKThreshold)->Arg(65536);

void BM_WireGibPack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  osp::util::Rng rng(43);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = rng.bernoulli(0.5) ? 1 : 0;
  std::vector<std::uint8_t> bits((n + 7) / 8, 0);
  const auto& k = osp::util::simd::kernels();

  // Seed implementation: per-bit OR loop from Gib::serialize.
  const auto seed_pass = [&] {
    std::fill(bits.begin(), bits.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != 0) {
        bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
    }
    benchmark::DoNotOptimize(bits.data());
  };
  const auto simd_pass = [&] {
    k.pack_bits(bytes.data(), bits.data(), n);
    benchmark::DoNotOptimize(bits.data());
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireGibPack)->Arg(65536);

void BM_WireGibUnpack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  osp::util::Rng rng(44);
  std::vector<std::uint8_t> bits((n + 7) / 8);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> bytes(n, 0);
  const auto& k = osp::util::simd::kernels();

  // Seed implementation: per-bit shift/test loop from Gib::deserialize.
  const auto seed_pass = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      bytes[i] = static_cast<std::uint8_t>((bits[i / 8] >> (i % 8)) & 1u);
    }
    benchmark::DoNotOptimize(bytes.data());
  };
  const auto simd_pass = [&] {
    k.unpack_bits(bits.data(), bytes.data(), n);
    benchmark::DoNotOptimize(bytes.data());
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireGibUnpack)->Arg(65536);

void BM_WireAbsProdSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<float> a = random_grad(n, 45);
  const std::vector<float> b = random_grad(n, 46);
  const auto& k = osp::util::simd::kernels();

  // Seed implementation: the serial double accumulation chain (PGP Eq. 4).
  double sink = 0.0;
  const auto seed_pass = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i]));
    }
    sink += s;
    benchmark::DoNotOptimize(sink);
  };
  const auto simd_pass = [&] {
    sink += k.abs_prod_sum(a.data(), b.data(), n);
    benchmark::DoNotOptimize(sink);
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_flops(state, 2.0 * static_cast<double>(n));
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireAbsProdSum)->Arg(262144);

void BM_WireAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<float> x = random_grad(n, 47);
  std::vector<float> y = random_grad(n, 48);
  const auto& k = osp::util::simd::kernels();

  const auto seed_pass = [&] {
    for (std::size_t i = 0; i < n; ++i) y[i] += 0.25f * x[i];
    benchmark::DoNotOptimize(y.data());
  };
  const auto simd_pass = [&] {
    k.axpy(0.25f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  };
  const double seed_s = best_seconds(seed_pass);
  const double simd_s = best_seconds(simd_pass);
  for (auto _ : state) simd_pass();
  set_flops(state, 2.0 * static_cast<double>(n));
  set_wire_counters(state, seed_s, simd_s);
}
BENCHMARK(BM_WireAxpy)->Arg(262144);

}  // namespace

int main(int argc, char** argv) {
  // always_emit_gflops keeps the historical record shape: every tensor
  // record carries a gflops field even when the op reports no FLOPs.
  return osp::bench::run_benchmarks_with_json(
      argc, argv, "bench_out/BENCH_micro_tensor.json",
      /*always_emit_gflops=*/true);
}
