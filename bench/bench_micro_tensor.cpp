// Micro-benchmarks (google-benchmark): tensor kernels on the hot path of
// the proxy-model training — matmul orientations, conv via im2col, softmax.
#include <benchmark/benchmark.h>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using osp::tensor::Conv2dGeom;
using osp::tensor::Tensor;

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  osp::util::Rng rng(seed);
  Tensor t({r, c});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 1);
  const Tensor b = random_matrix(n, n, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 3);
  const Tensor b = random_matrix(n, n, 4);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_tn(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128);

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_matrix(n, n, 5);
  const Tensor b = random_matrix(n, n, 6);
  Tensor c({n, n});
  for (auto _ : state) {
    osp::tensor::matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  Conv2dGeom g{16, side, side, 3, 1, 1};
  osp::util::Rng rng(7);
  std::vector<float> image(16 * side * side);
  for (float& v : image) v = static_cast<float>(rng.normal());
  Tensor cols({g.patches(), g.patch_len()});
  for (auto _ : state) {
    osp::tensor::im2col(image, g, cols);
    benchmark::DoNotOptimize(cols.raw());
  }
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_matrix(64, cols, 8);
  Tensor out({64, cols});
  for (auto _ : state) {
    osp::tensor::softmax_rows(x, out);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
