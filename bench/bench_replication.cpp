// Failover cost of PS-shard replication (kv/replication.hpp): for each
// replication-aware sync model, a healthy run vs an identical run with
// the primary PS shard crashed mid-training and restarted later — so the
// schedule exercises both the promotion (crash) and the failback
// (restart), each with its version-predicate catch-up.
//
// The interesting columns are the *overhead* of surviving the crash
// (virtual-time slowdown vs healthy) and the replication accounting
// (promotions, catch-up bytes, mean replica lag). The healthy rows also
// double as a liveness check for the determinism contract: replication
// bookkeeping must cost zero promotions and zero catch-up bytes when no
// fault fires. The EXPERIMENTS.md failover-cost table is generated from
// this bench.
#include "bench_common.hpp"

#include "sync/kv_bsp.hpp"
#include "sync/sharded_bsp.hpp"

int main() {
  using namespace osp;
  std::cout << "# PS failover cost: crash + restart of shard 0 "
               "(ResNet50/CIFAR10, 8 workers, 2 PS)\n";
  util::Table table({"model", "healthy (s)", "failover (s)", "overhead",
                     "promotions", "catch-up MB", "mean lag"});
  const auto spec = models::resnet50_cifar10();

  struct Row {
    std::string label;
    std::function<std::unique_ptr<runtime::SyncModel>()> make;
  };
  std::vector<Row> rows;
  rows.push_back({"ShardedBSP",
                  [] { return std::make_unique<sync::ShardedBspSync>(); }});
  rows.push_back({"KvBSP", [] {
                    return std::make_unique<sync::KvBspSync>(
                        sync::KvBspOptions{});
                  }});
  rows.push_back({"OSP", [] { return std::make_unique<core::OspSync>(); }});

  for (const Row& row : rows) {
    auto cfg = bench::paper_config();
    cfg.cluster.num_ps = 2;
    cfg.record_telemetry = true;

    auto healthy_sync = row.make();
    const auto healthy = bench::run_one(spec, *healthy_sync, cfg);

    // Crash the primary of shard 0 a third of the way through the healthy
    // run, bring it back after another fifth: the run crosses promotion,
    // degraded operation, and failback.
    auto crashed_cfg = cfg;
    crashed_cfg.faults.crash_ps(0.3 * healthy.total_time_s, /*ps=*/0,
                                /*restart_after=*/0.2 * healthy.total_time_s);
    auto crashed_sync = row.make();
    const auto crashed = bench::run_one(spec, *crashed_sync, crashed_cfg);

    double lag_sum = 0.0;
    for (const auto& rec : crashed.rounds) {
      lag_sum += static_cast<double>(rec.replica_lag);
    }
    const double mean_lag =
        crashed.rounds.empty()
            ? 0.0
            : lag_sum / static_cast<double>(crashed.rounds.size());
    const double overhead =
        100.0 * (crashed.total_time_s / healthy.total_time_s - 1.0);
    table.add_row(
        {row.label, util::Table::fmt(healthy.total_time_s, 2),
         util::Table::fmt(crashed.total_time_s, 2),
         util::Table::fmt(overhead, 1) + "%",
         std::to_string(crashed.faults.ps_promotions),
         util::Table::fmt(crashed.faults.replica_catchup_bytes / 1.0e6, 2),
         util::Table::fmt(mean_lag, 1)});
  }
  bench::emit(table, "replication");
  return 0;
}
