// Extension (§2.2.2 / §7 contrast): OSP vs the communication-reduction
// alternatives it is positioned against.
//
// Top-K / Random-K sparsified BSP shrink the wire bytes but *discard*
// gradients — the accuracy-for-throughput trade the paper criticizes;
// error-feedback (DGC-style residual memory) repairs the accuracy at the
// cost of extra state; int8 quantization bounds the reduction at 4×;
// Sync-Switch trades phases instead of bytes. OSP delays gradients instead
// of dropping them, so its accuracy tracks BSP at compression-class BST.
#include "bench_common.hpp"

#include "sync/compression.hpp"
#include "sync/sync_switch.hpp"

int main() {
  using namespace osp;
  std::cout << "# Ext: OSP vs compression & hybrid schemes "
               "(ResNet50/CIFAR10)\n";
  util::Table table({"scheme", "best metric", "samples/s", "steady BST (s)"});
  const auto spec = models::resnet50_cifar10();
  const auto cfg = bench::paper_config();

  std::vector<std::pair<std::string,
                        std::unique_ptr<runtime::SyncModel>>> schemes;
  schemes.emplace_back("BSP", std::make_unique<sync::BspSync>());
  schemes.emplace_back("TopK 10%", std::make_unique<sync::CompressedBspSync>(
                                       sync::CompressionMode::TopK, 0.10));
  schemes.emplace_back("TopK 5%", std::make_unique<sync::CompressedBspSync>(
                                      sync::CompressionMode::TopK, 0.05));
  schemes.emplace_back("TopK 5% +EF",
                       std::make_unique<sync::CompressedBspSync>(
                           sync::CompressionMode::TopK, 0.05, 99, true));
  schemes.emplace_back("RandomK 10%",
                       std::make_unique<sync::CompressedBspSync>(
                           sync::CompressionMode::RandomK, 0.10));
  schemes.emplace_back("Q8-BSP", std::make_unique<sync::QuantizedBspSync>());
  schemes.emplace_back("SyncSwitch 30%",
                       std::make_unique<sync::SyncSwitchSync>(0.3));
  schemes.emplace_back("OSP", std::make_unique<core::OspSync>());
  for (auto& [label, sync] : schemes) {
    const auto r = bench::run_one(spec, *sync, cfg);
    table.add_row({label, util::Table::fmt(100.0 * r.best_metric, 2) + "%",
                   util::Table::fmt(r.throughput, 1),
                   util::Table::fmt(r.steady_bst_s, 3)});
  }
  bench::emit(table, "ext_compression");
  return 0;
}
