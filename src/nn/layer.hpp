// Layer interface for the proxy-model stack.
//
// Layers own their parameters and gradient accumulators. backward() both
// returns the input gradient and accumulates parameter gradients, mirroring
// the classic define-by-layer design. The synchronization code never touches
// layers directly: it sees flat per-layer parameter/gradient blocks exposed
// through ParamRef (see registry.hpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace osp::nn {

/// Non-owning reference to one parameter tensor and its gradient.
struct ParamRef {
  std::string name;          ///< e.g. "fc1.weight"
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;

  [[nodiscard]] std::size_t numel() const { return value->numel(); }
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Forward pass. `train` toggles train-time behaviour (dropout).
  /// Layers may cache activations needed by backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool train) = 0;

  /// Backward pass: takes dL/d(output), returns dL/d(input), and
  /// accumulates (+=) parameter gradients. Must follow a forward() call.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Trainable parameters; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Reset accumulated parameter gradients to zero.
  void zero_grad();

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace osp::nn
