#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

namespace {
/// Cross-entropy of softmax(rows of `logits`) against labels, writing
/// gradient into grad (same shape) scaled by `grad_scale`.
double ce_block(const Tensor& logits, std::size_t col0, std::size_t cols,
                std::span<const std::int32_t> labels, Tensor& grad,
                double grad_scale) {
  const std::size_t batch = logits.dim(0);
  OSP_CHECK(labels.size() == batch, "label count mismatch");
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const float* in = logits.raw() + r * logits.dim(1) + col0;
    float* g = grad.raw() + r * grad.dim(1) + col0;
    const auto label = static_cast<std::size_t>(labels[r]);
    OSP_CHECK(labels[r] >= 0 && label < cols, "label out of range");
    float mx = in[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      denom += std::exp(static_cast<double>(in[c] - mx));
    }
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(in[label] - mx) - log_denom);
    for (std::size_t c = 0; c < cols; ++c) {
      const double p = std::exp(static_cast<double>(in[c] - mx)) / denom;
      g[c] = static_cast<float>(
          grad_scale * (p - (c == label ? 1.0 : 0.0)));
    }
  }
  return total / static_cast<double>(batch);
}
}  // namespace

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  OSP_CHECK(logits.rank() == 2, "logits must be [batch, classes]");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  OSP_CHECK(classes > 0, "no classes");
  LossResult out;
  out.grad_logits = Tensor({batch, classes});
  out.loss = ce_block(logits, 0, classes, labels, out.grad_logits,
                      1.0 / static_cast<double>(batch));
  return out;
}

LossResult span_cross_entropy(const Tensor& logits,
                              std::span<const std::int32_t> starts,
                              std::span<const std::int32_t> ends) {
  OSP_CHECK(logits.rank() == 2, "logits must be [batch, 2*seq]");
  OSP_CHECK(logits.dim(1) % 2 == 0, "span logits must have even width");
  const std::size_t batch = logits.dim(0);
  const std::size_t seq = logits.dim(1) / 2;
  LossResult out;
  out.grad_logits = Tensor({batch, 2 * seq});
  // Each head contributes half the loss; gradient scaled accordingly.
  const double scale = 0.5 / static_cast<double>(batch);
  const double l_start = ce_block(logits, 0, seq, starts, out.grad_logits, scale);
  const double l_end = ce_block(logits, seq, seq, ends, out.grad_logits, scale);
  out.loss = 0.5 * (l_start + l_end);
  return out;
}

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  OSP_CHECK(pred.shape() == target.shape(), "MSE shape mismatch");
  OSP_CHECK(pred.numel() > 0, "MSE of empty tensor");
  LossResult out;
  out.grad_logits = Tensor(pred.shape());
  const auto n = static_cast<double>(pred.numel());
  double total = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    total += d * d;
    out.grad_logits[i] = static_cast<float>(2.0 * d / n);
  }
  out.loss = total / n;
  return out;
}

}  // namespace osp::nn
