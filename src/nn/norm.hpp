// LayerNorm over the last dimension of a rank-2 tensor, with learned
// gain/bias. Used by the MLP and attention proxy models (BatchNorm is
// deliberately avoided: its cross-sample statistics interact with
// data-parallel sharding in ways orthogonal to the paper).
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, std::size_t features, float eps = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

 private:
  std::size_t features_;
  float eps_;
  tensor::Tensor gamma_, beta_;
  tensor::Tensor ggrad_, bgrad_;
  tensor::Tensor normed_;    // cached normalized activations
  std::vector<float> inv_std_;  // per-row 1/sqrt(var+eps)
};

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability; scaling uses inverted dropout.
  Dropout(std::string name, float rate, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  float rate_;
  util::Rng rng_;
  std::vector<float> mask_;
  bool train_mode_ = false;
};

}  // namespace osp::nn
