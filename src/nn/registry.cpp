#include "nn/registry.hpp"

#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::nn {

FlatModel::FlatModel(Sequential& model) : model_(&model) {
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    Layer& layer = model.layer(i);
    std::vector<ParamRef> ps = layer.params();
    if (ps.empty()) continue;
    std::size_t numel = 0;
    for (const ParamRef& p : ps) numel += p.numel();
    blocks_.push_back({layer.name(), total_, numel});
    slots_.push_back({std::move(ps)});
    total_ += numel;
  }
  OSP_CHECK(total_ > 0, "model has no trainable parameters");
}

void FlatModel::gather_params(std::span<float> out) const {
  OSP_CHECK(out.size() == total_, "gather_params size mismatch");
  std::size_t pos = 0;
  for (const LayerSlot& slot : slots_) {
    for (const ParamRef& p : slot.tensors) {
      util::copy(p.value->data(), out.subspan(pos, p.numel()));
      pos += p.numel();
    }
  }
}

void FlatModel::scatter_params(std::span<const float> in) {
  OSP_CHECK(in.size() == total_, "scatter_params size mismatch");
  std::size_t pos = 0;
  for (LayerSlot& slot : slots_) {
    for (ParamRef& p : slot.tensors) {
      util::copy(in.subspan(pos, p.numel()), p.value->data());
      pos += p.numel();
    }
  }
}

void FlatModel::gather_grads(std::span<float> out) const {
  OSP_CHECK(out.size() == total_, "gather_grads size mismatch");
  std::size_t pos = 0;
  for (const LayerSlot& slot : slots_) {
    for (const ParamRef& p : slot.tensors) {
      util::copy(p.grad->data(), out.subspan(pos, p.numel()));
      pos += p.numel();
    }
  }
}

std::span<float> FlatModel::block_span(std::span<float> flat,
                                       std::size_t i) const {
  OSP_CHECK(flat.size() == total_, "block_span buffer size mismatch");
  const LayerBlockInfo& b = blocks_.at(i);
  return flat.subspan(b.offset, b.numel);
}

std::span<const float> FlatModel::block_span(std::span<const float> flat,
                                             std::size_t i) const {
  OSP_CHECK(flat.size() == total_, "block_span buffer size mismatch");
  const LayerBlockInfo& b = blocks_.at(i);
  return flat.subspan(b.offset, b.numel);
}

}  // namespace osp::nn
