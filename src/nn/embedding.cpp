#include "nn/embedding.hpp"

#include <cmath>

#include "tensor/init.hpp"
#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     util::Rng& rng)
    : Layer(std::move(name)),
      vocab_(vocab),
      dim_(dim),
      table_({vocab, dim}),
      tgrad_({vocab, dim}) {
  OSP_CHECK(vocab > 0 && dim > 0, "Embedding needs positive sizes");
  tensor::normal_init(table_, 0.0f, 0.02f, rng);
}

Tensor Embedding::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 2, "Embedding expects [batch, seq] ids");
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  in_shape_ = input.shape();
  last_ids_.assign(batch * seq, 0);
  Tensor out({batch, seq, dim_});
  float* po = out.raw();
  const float* pi = input.raw();
  const float* pt = table_.raw();
  for (std::size_t i = 0; i < batch * seq; ++i) {
    const auto id = static_cast<std::size_t>(std::lround(pi[i]));
    OSP_CHECK(id < vocab_, "token id out of vocabulary");
    last_ids_[i] = id;
    const float* row = pt + id * dim_;
    float* dst = po + i * dim_;
    for (std::size_t d = 0; d < dim_; ++d) dst[d] = row[d];
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.rank() == 3 && grad_out.dim(2) == dim_,
            "Embedding grad mismatch");
  OSP_CHECK(grad_out.dim(0) * grad_out.dim(1) == last_ids_.size(),
            "Embedding grad count mismatch");
  const float* pg = grad_out.raw();
  float* pt = tgrad_.raw();
  for (std::size_t i = 0; i < last_ids_.size(); ++i) {
    float* dst = pt + last_ids_[i] * dim_;
    const float* src = pg + i * dim_;
    for (std::size_t d = 0; d < dim_; ++d) dst[d] += src[d];
  }
  return Tensor(in_shape_);
}

std::vector<ParamRef> Embedding::params() {
  return {{name() + ".table", &table_, &tgrad_}};
}

}  // namespace osp::nn
