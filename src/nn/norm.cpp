#include "nn/norm.hpp"

#include <cmath>

#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

LayerNorm::LayerNorm(std::string name, std::size_t features, float eps)
    : Layer(std::move(name)),
      features_(features),
      eps_(eps),
      gamma_({features}, 1.0f),
      beta_({features}),
      ggrad_({features}),
      bgrad_({features}) {
  OSP_CHECK(features > 0, "LayerNorm needs positive feature count");
}

Tensor LayerNorm::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 2 && input.dim(1) == features_,
            "LayerNorm input mismatch");
  const std::size_t rows = input.dim(0);
  Tensor out({rows, features_});
  normed_ = Tensor({rows, features_});
  inv_std_.assign(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    auto in = input.row(r);
    double mean = 0.0;
    for (float v : in) mean += v;
    mean /= static_cast<double>(features_);
    double var = 0.0;
    for (float v : in) var += (v - mean) * (v - mean);
    var /= static_cast<double>(features_);
    const float istd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_[r] = istd;
    auto nr = normed_.row(r);
    auto orow = out.row(r);
    for (std::size_t c = 0; c < features_; ++c) {
      nr[c] = (in[c] - static_cast<float>(mean)) * istd;
      orow[c] = nr[c] * gamma_[c] + beta_[c];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t rows = normed_.dim(0);
  OSP_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == rows &&
                grad_out.dim(1) == features_,
            "LayerNorm grad mismatch");
  Tensor dx({rows, features_});
  const auto n = static_cast<float>(features_);
  for (std::size_t r = 0; r < rows; ++r) {
    auto g = grad_out.row(r);
    auto xn = normed_.row(r);
    auto d = dx.row(r);
    // Accumulate parameter gradients.
    float sum_gn = 0.0f;   // Σ g_c*gamma_c*xn_c
    float sum_g = 0.0f;    // Σ g_c*gamma_c
    for (std::size_t c = 0; c < features_; ++c) {
      ggrad_[c] += g[c] * xn[c];
      bgrad_[c] += g[c];
      const float gg = g[c] * gamma_[c];
      sum_gn += gg * xn[c];
      sum_g += gg;
    }
    const float istd = inv_std_[r];
    for (std::size_t c = 0; c < features_; ++c) {
      const float gg = g[c] * gamma_[c];
      d[c] = istd * (gg - sum_g / n - xn[c] * sum_gn / n);
    }
  }
  return dx;
}

std::vector<ParamRef> LayerNorm::params() {
  return {{name() + ".gamma", &gamma_, &ggrad_},
          {name() + ".beta", &beta_, &bgrad_}};
}

Dropout::Dropout(std::string name, float rate, util::Rng rng)
    : Layer(std::move(name)), rate_(rate), rng_(rng) {
  OSP_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  train_mode_ = train;
  if (!train || rate_ == 0.0f) return input;
  Tensor out = input;
  mask_.assign(input.numel(), 0.0f);
  const float keep_scale = 1.0f / (1.0f - rate_);
  auto data = out.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (rng_.bernoulli(rate_)) {
      data[i] = 0.0f;
    } else {
      mask_[i] = keep_scale;
      data[i] *= keep_scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!train_mode_ || rate_ == 0.0f) return grad_out;
  OSP_CHECK(grad_out.numel() == mask_.size(), "Dropout grad mismatch");
  Tensor dx = grad_out;
  auto d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= mask_[i];
  return dx;
}

}  // namespace osp::nn
