#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/check.hpp"

namespace osp::nn {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'P', 'C', 'K', 'P', 'T', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  OSP_CHECK(static_cast<bool>(in), "checkpoint truncated");
  return value;
}

}  // namespace

void save_checkpoint(const FlatModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  OSP_CHECK(static_cast<bool>(out), "cannot open checkpoint for writing");
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, model.num_blocks());
  for (const LayerBlockInfo& block : model.blocks()) {
    write_pod<std::uint32_t>(out,
                             static_cast<std::uint32_t>(block.name.size()));
    out.write(block.name.data(),
              static_cast<std::streamsize>(block.name.size()));
    write_pod<std::uint64_t>(out, block.offset);
    write_pod<std::uint64_t>(out, block.numel);
  }
  write_pod<std::uint64_t>(out, model.total_params());
  std::vector<float> params(model.total_params());
  model.gather_params(params);
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  OSP_CHECK(static_cast<bool>(out), "checkpoint write failed");
}

void load_checkpoint(FlatModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OSP_CHECK(static_cast<bool>(in), "cannot open checkpoint for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  OSP_CHECK(static_cast<bool>(in) &&
                std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "not an OSP checkpoint");
  const auto block_count = read_pod<std::uint64_t>(in);
  OSP_CHECK(block_count == model.num_blocks(),
            "checkpoint block count mismatch");
  for (std::size_t b = 0; b < block_count; ++b) {
    const auto name_len = read_pod<std::uint32_t>(in);
    OSP_CHECK(name_len < 4096, "implausible block name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    OSP_CHECK(static_cast<bool>(in), "checkpoint truncated");
    const auto offset = read_pod<std::uint64_t>(in);
    const auto numel = read_pod<std::uint64_t>(in);
    const LayerBlockInfo& expected = model.block(b);
    OSP_CHECK(name == expected.name, "checkpoint block name mismatch");
    OSP_CHECK(offset == expected.offset && numel == expected.numel,
              "checkpoint block geometry mismatch");
  }
  const auto total = read_pod<std::uint64_t>(in);
  OSP_CHECK(total == model.total_params(),
            "checkpoint parameter count mismatch");
  std::vector<float> params(total);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  OSP_CHECK(static_cast<bool>(in), "checkpoint truncated");
  model.scatter_params(params);
}

}  // namespace osp::nn
