#include "nn/serialize.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp::nn {

namespace {

// Version 2 moved to the shared serde envelope (util/serde.hpp), which
// adds a payload CRC and exact-length validation: truncated, corrupted,
// and trailing-garbage files are all rejected before any field is used.
constexpr char kMagic[] = "OSPCKPT2";
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_checkpoint(const FlatModel& model, const std::string& path) {
  util::serde::Writer w;
  w.u64(model.num_blocks());
  for (const LayerBlockInfo& block : model.blocks()) {
    w.str(block.name);
    w.u64(block.offset);
    w.u64(block.numel);
  }
  std::vector<float> params(model.total_params());
  model.gather_params(params);
  w.f32_vec(params);
  util::serde::write_file(path, kMagic, kVersion, w.data());
}

void load_checkpoint(FlatModel& model, const std::string& path) {
  const auto file = util::serde::read_file(path, kMagic, kVersion);
  util::serde::Reader r(file.payload);
  const auto block_count = r.u64();
  OSP_CHECK(block_count == model.num_blocks(),
            "checkpoint block count mismatch");
  for (std::size_t b = 0; b < block_count; ++b) {
    const std::string name = r.str();
    const auto offset = r.u64();
    const auto numel = r.u64();
    const LayerBlockInfo& expected = model.block(b);
    OSP_CHECK(name == expected.name, "checkpoint block name mismatch");
    OSP_CHECK(offset == expected.offset && numel == expected.numel,
              "checkpoint block geometry mismatch");
  }
  std::vector<float> params(model.total_params());
  r.f32_into(params);
  r.expect_done();
  model.scatter_params(params);
}

}  // namespace osp::nn
