// FlatModel: the bridge between the layer stack and the synchronization
// code.
//
// Sync models (BSP/ASP/R²SP/OSP) exchange parameters and gradients as flat
// float vectors partitioned into per-layer blocks. FlatModel binds a
// Sequential, enumerates its trainable layers, assigns each a contiguous
// [offset, offset+numel) block in a flat vector, and provides gather/scatter
// between the two representations. OSP's GIB operates at exactly this block
// granularity (paper §4.1.1: importance is computed per layer).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace osp::nn {

/// One trainable layer's slot in the flat parameter vector.
struct LayerBlockInfo {
  std::string name;       ///< layer name (e.g. "fc1")
  std::size_t offset = 0; ///< start index in the flat vector
  std::size_t numel = 0;  ///< number of float elements
};

class FlatModel {
 public:
  /// Binds (does not own) the model. The model's layer structure must not
  /// change while the FlatModel is alive.
  explicit FlatModel(Sequential& model);

  [[nodiscard]] std::size_t total_params() const { return total_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] const LayerBlockInfo& block(std::size_t i) const {
    return blocks_.at(i);
  }
  [[nodiscard]] const std::vector<LayerBlockInfo>& blocks() const {
    return blocks_;
  }

  /// Copy model parameters into `out` (size must equal total_params()).
  void gather_params(std::span<float> out) const;

  /// Copy `in` into the model parameters.
  void scatter_params(std::span<const float> in);

  /// Copy accumulated gradients into `out`.
  void gather_grads(std::span<float> out) const;

  /// Slice a flat buffer to block `i`'s range.
  [[nodiscard]] std::span<float> block_span(std::span<float> flat,
                                            std::size_t i) const;
  [[nodiscard]] std::span<const float> block_span(std::span<const float> flat,
                                                  std::size_t i) const;

  [[nodiscard]] Sequential& model() { return *model_; }

 private:
  Sequential* model_;
  // One entry per trainable layer; a layer's tensors (weight+bias) share a
  // block, concatenated in params() order.
  struct LayerSlot {
    std::vector<ParamRef> tensors;
  };
  std::vector<LayerSlot> slots_;
  std::vector<LayerBlockInfo> blocks_;
  std::size_t total_ = 0;
};

}  // namespace osp::nn
