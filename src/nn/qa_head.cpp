#include "nn/qa_head.hpp"

#include "tensor/init.hpp"
#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

SpanHead::SpanHead(std::string name, std::size_t dim, util::Rng& rng)
    : Layer(std::move(name)),
      dim_(dim),
      weight_({2, dim}),
      bias_({2}),
      wgrad_({2, dim}),
      bgrad_({2}) {
  OSP_CHECK(dim > 0, "SpanHead needs positive dim");
  tensor::xavier_uniform(weight_, dim, 2, rng);
}

Tensor SpanHead::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 3 && input.dim(2) == dim_,
            "SpanHead expects [B, L, D]");
  input_ = input;
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  Tensor out({batch, 2 * seq});
  const float* pi = input.raw();
  float* po = out.raw();
  const float* ws = weight_.raw();            // start row
  const float* we = weight_.raw() + dim_;     // end row
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const float* x = pi + (b * seq + t) * dim_;
      float s = bias_[0], ev = bias_[1];
      for (std::size_t d = 0; d < dim_; ++d) {
        s += ws[d] * x[d];
        ev += we[d] * x[d];
      }
      po[b * 2 * seq + t] = s;
      po[b * 2 * seq + seq + t] = ev;
    }
  }
  return out;
}

Tensor SpanHead::backward(const Tensor& grad_out) {
  const std::size_t batch = input_.dim(0), seq = input_.dim(1);
  OSP_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == batch &&
                grad_out.dim(1) == 2 * seq,
            "SpanHead grad mismatch");
  Tensor dx({batch, seq, dim_});
  const float* pi = input_.raw();
  const float* pg = grad_out.raw();
  float* pdx = dx.raw();
  const float* ws = weight_.raw();
  const float* we = weight_.raw() + dim_;
  float* gws = wgrad_.raw();
  float* gwe = wgrad_.raw() + dim_;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const float gs = pg[b * 2 * seq + t];
      const float ge = pg[b * 2 * seq + seq + t];
      const float* x = pi + (b * seq + t) * dim_;
      float* d = pdx + (b * seq + t) * dim_;
      bgrad_[0] += gs;
      bgrad_[1] += ge;
      for (std::size_t j = 0; j < dim_; ++j) {
        gws[j] += gs * x[j];
        gwe[j] += ge * x[j];
        d[j] = gs * ws[j] + ge * we[j];
      }
    }
  }
  return dx;
}

std::vector<ParamRef> SpanHead::params() {
  return {{name() + ".weight", &weight_, &wgrad_},
          {name() + ".bias", &bias_, &bgrad_}};
}

}  // namespace osp::nn
