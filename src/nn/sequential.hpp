// Sequential model container: an ordered list of layers with forward /
// backward chaining and parameter enumeration.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace osp::nn {

class Sequential {
 public:
  Sequential() = default;

  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Append a layer; returns a reference for chaining.
  Sequential& add(LayerPtr layer);

  /// Construct and append.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Forward through all layers.
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       bool train);

  /// Backward through all layers in reverse; accumulates parameter grads.
  tensor::Tensor backward(const tensor::Tensor& grad_out);

  /// All trainable parameters in layer order.
  [[nodiscard]] std::vector<ParamRef> params();

  /// Total trainable element count.
  [[nodiscard]] std::size_t num_params();

  void zero_grad();

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace osp::nn
