// Loss functions.
//
// SoftmaxCrossEntropy fuses softmax with negative log-likelihood (the
// numerically stable composite) for classification. SpanCrossEntropy handles
// the QA proxy task: the model emits [batch, 2*seq_len] logits — the first
// seq_len are start-position logits, the rest end-position logits — and the
// loss is the mean of the two cross-entropies, matching extractive-QA heads.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace osp::nn {

struct LossResult {
  double loss = 0.0;           ///< mean loss over the batch
  tensor::Tensor grad_logits;  ///< dL/dlogits, same shape as logits
};

/// Mean softmax cross-entropy over a batch of [batch, classes] logits.
[[nodiscard]] LossResult softmax_cross_entropy(
    const tensor::Tensor& logits, std::span<const std::int32_t> labels);

/// Extractive-QA span loss over [batch, 2*seq_len] logits.
/// starts/ends hold the gold positions in [0, seq_len).
[[nodiscard]] LossResult span_cross_entropy(
    const tensor::Tensor& logits, std::span<const std::int32_t> starts,
    std::span<const std::int32_t> ends);

/// Mean squared error against a target tensor of identical shape.
[[nodiscard]] LossResult mse_loss(const tensor::Tensor& pred,
                                  const tensor::Tensor& target);

}  // namespace osp::nn
