// Single-head self-attention block with residual connection — the
// transformer-encoder core of the BERTbase proxy model.
//
// Input/output: rank-3 [batch, seq_len, dim]. The block computes
//   Y = (softmax(QKᵀ/√d)·V)·Woᵀ + X
// with Q = X·Wqᵀ, K = X·Wkᵀ, V = X·Wvᵀ (all weights [dim, dim]).
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class SelfAttention : public Layer {
 public:
  SelfAttention(std::string name, std::size_t dim, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

 private:
  std::size_t dim_;
  tensor::Tensor wq_, wk_, wv_, wo_;          // [dim, dim]
  tensor::Tensor wq_g_, wk_g_, wv_g_, wo_g_;
  // Forward caches.
  tensor::Tensor xf_;                   // [B*L, D]
  tensor::Tensor q_, k_, v_, h_;        // [B*L, D]
  std::vector<tensor::Tensor> attn_;    // per-batch [L, L]
  std::size_t batch_ = 0, seq_ = 0;
};

}  // namespace osp::nn
