// Token embedding lookup for the NLP proxy model.
//
// Input: rank-2 [batch, seq_len] of token ids stored as floats (the tensor
// library is float-only); output: rank-3 [batch, seq_len, dim]. backward()
// scatter-adds into the embedding gradient and returns a zero tensor, since
// token ids carry no gradient.
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class Embedding : public Layer {
 public:
  Embedding(std::string name, std::size_t vocab, std::size_t dim,
            util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

  [[nodiscard]] std::size_t vocab() const { return vocab_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  tensor::Tensor table_;  // [vocab, dim]
  tensor::Tensor tgrad_;
  std::vector<std::size_t> last_ids_;
  tensor::Shape in_shape_;
};

}  // namespace osp::nn
