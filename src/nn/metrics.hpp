// Evaluation metrics: top-1 accuracy for classification, token-overlap F1
// for extractive-QA spans (the paper's BERTbase metric, §5.1.4).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace osp::nn {

/// Fraction of rows whose argmax matches the label.
[[nodiscard]] double top1_accuracy(const tensor::Tensor& logits,
                                   std::span<const std::int32_t> labels);

/// Index of the maximum element of a span (first on ties).
[[nodiscard]] std::size_t argmax(std::span<const float> xs);

/// Token-overlap F1 of a predicted [start, end] span vs the gold span
/// (SQuAD-style; both ends inclusive). Returns 0 when there is no overlap.
[[nodiscard]] double span_f1(std::int32_t pred_start, std::int32_t pred_end,
                             std::int32_t gold_start, std::int32_t gold_end);

/// Mean span F1 over a batch of [batch, 2*seq_len] logits.
[[nodiscard]] double batch_span_f1(const tensor::Tensor& logits,
                                   std::span<const std::int32_t> gold_starts,
                                   std::span<const std::int32_t> gold_ends);

}  // namespace osp::nn
