// SGD (with optional momentum) operating on flat float blocks, plus the
// paper's learning-rate schedule (initial 0.1, halved every 10 epochs,
// §5.1.3).
//
// The optimizer works on spans rather than layers because in PS training the
// *server* owns the optimizer state and applies aggregated gradients to the
// flat global parameter vector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osp::nn {

/// Step-decay schedule: lr(epoch) = initial * factor^(epoch / step).
class StepLrSchedule {
 public:
  StepLrSchedule(double initial, std::size_t step_epochs, double factor);

  [[nodiscard]] double lr(std::size_t epoch) const;

  /// The paper's configuration: 0.1 halved every 10 epochs.
  [[nodiscard]] static StepLrSchedule paper_default() {
    return {0.1, 10, 0.5};
  }

 private:
  double initial_;
  std::size_t step_epochs_;
  double factor_;
};

/// SGD with optional momentum over a fixed-size flat parameter vector.
class SgdOptimizer {
 public:
  /// `num_params` fixes the parameter-vector length; momentum 0 disables
  /// the velocity buffer entirely.
  SgdOptimizer(std::size_t num_params, double momentum = 0.0,
               double weight_decay = 0.0);

  /// params -= lr * (grad + wd*params), with momentum folding if enabled.
  void step(std::span<float> params, std::span<const float> grad, double lr);

  /// Apply to a sub-range [offset, offset+len) of the parameter vector —
  /// used when a sync stage updates only some layers.
  void step_range(std::span<float> params, std::span<const float> grad,
                  double lr, std::size_t offset);

  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] double momentum() const { return momentum_; }

  /// Momentum velocity buffer; empty when momentum is disabled.
  [[nodiscard]] std::span<const float> velocity() const { return velocity_; }

  /// Restore the velocity buffer from a checkpoint. Must be empty when
  /// momentum is disabled and exactly num_params long otherwise.
  void set_velocity(std::span<const float> v);

  void reset_state();

 private:
  std::size_t num_params_;
  double momentum_;
  double weight_decay_;
  std::vector<float> velocity_;
};

}  // namespace osp::nn
