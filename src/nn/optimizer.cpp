#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace osp::nn {

StepLrSchedule::StepLrSchedule(double initial, std::size_t step_epochs,
                               double factor)
    : initial_(initial), step_epochs_(step_epochs), factor_(factor) {
  OSP_CHECK(initial > 0.0, "lr must be positive");
  OSP_CHECK(step_epochs > 0, "step_epochs must be positive");
  OSP_CHECK(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
}

double StepLrSchedule::lr(std::size_t epoch) const {
  const auto steps = static_cast<double>(epoch / step_epochs_);
  return initial_ * std::pow(factor_, steps);
}

SgdOptimizer::SgdOptimizer(std::size_t num_params, double momentum,
                           double weight_decay)
    : num_params_(num_params),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  OSP_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0, 1)");
  OSP_CHECK(weight_decay >= 0.0, "weight decay must be non-negative");
  if (momentum_ > 0.0) velocity_.assign(num_params_, 0.0f);
}

void SgdOptimizer::step(std::span<float> params, std::span<const float> grad,
                        double lr) {
  OSP_CHECK(params.size() == num_params_ && grad.size() == num_params_,
            "optimizer size mismatch");
  step_range(params, grad, lr, 0);
}

void SgdOptimizer::step_range(std::span<float> params,
                              std::span<const float> grad, double lr,
                              std::size_t offset) {
  OSP_CHECK(params.size() == grad.size(), "params/grad size mismatch");
  OSP_CHECK(offset + params.size() <= num_params_, "range out of bounds");
  const auto flr = static_cast<float>(lr);
  const auto wd = static_cast<float>(weight_decay_);
  const auto mu = static_cast<float>(momentum_);
  const std::size_t n = params.size();
  if (momentum_ > 0.0) {
    float* vel = velocity_.data() + offset;
    for (std::size_t i = 0; i < n; ++i) {
      const float g = grad[i] + wd * params[i];
      vel[i] = mu * vel[i] + g;
      params[i] -= flr * vel[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      params[i] -= flr * (grad[i] + wd * params[i]);
    }
  }
}

void SgdOptimizer::set_velocity(std::span<const float> v) {
  if (momentum_ > 0.0) {
    OSP_CHECK(v.size() == num_params_,
              "checkpoint velocity length does not match optimizer");
    std::copy(v.begin(), v.end(), velocity_.begin());
  } else {
    OSP_CHECK(v.empty(),
              "checkpoint carries momentum state but optimizer has none");
  }
}

void SgdOptimizer::reset_state() {
  std::fill(velocity_.begin(), velocity_.end(), 0.0f);
}

}  // namespace osp::nn
