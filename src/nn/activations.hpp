// Stateless nonlinearities: ReLU, Tanh, GELU (tanh approximation).
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor input_;
};

class Tanh : public Layer {
 public:
  explicit Tanh(std::string name) : Layer(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor output_;
};

class Gelu : public Layer {
 public:
  explicit Gelu(std::string name) : Layer(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor input_;
};

}  // namespace osp::nn
