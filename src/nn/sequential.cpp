#include "nn/sequential.hpp"

#include "util/check.hpp"

namespace osp::nn {

Sequential& Sequential::add(LayerPtr layer) {
  OSP_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input, bool train) {
  OSP_CHECK(!layers_.empty(), "empty model");
  tensor::Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_out) {
  OSP_CHECK(!layers_.empty(), "empty model");
  tensor::Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    for (ParamRef& p : layer->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::num_params() {
  std::size_t n = 0;
  for (const ParamRef& p : params()) n += p.numel();
  return n;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

}  // namespace osp::nn
