#include "nn/conv2d.hpp"

#include <algorithm>
#include <limits>

#include "tensor/init.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace osp::nn {

using tensor::Conv2dGeom;
using tensor::Tensor;

Conv2d::Conv2d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t in_h, std::size_t in_w,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng)
    : Layer(std::move(name)),
      geom_{in_channels, in_h, in_w, kernel, stride, pad},
      out_channels_(out_channels),
      weight_({out_channels, geom_.patch_len()}),
      bias_({out_channels}),
      wgrad_({out_channels, geom_.patch_len()}),
      bgrad_({out_channels}) {
  OSP_CHECK(out_channels > 0, "Conv2d needs positive out_channels");
  tensor::he_normal(weight_, geom_.patch_len(), rng);
}

void Conv2d::ensure_scratch(std::size_t batch) {
  const std::size_t rows = batch * geom_.patches();
  if (cols_all_.rank() == 2 && cols_all_.dim(0) == rows) return;
  cols_all_ = Tensor({rows, geom_.patch_len()});
  g_all_ = Tensor({rows, out_channels_});
  dcols_all_ = Tensor({rows, geom_.patch_len()});
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 4, "Conv2d expects NCHW input");
  OSP_CHECK(input.dim(1) == geom_.in_channels && input.dim(2) == geom_.in_h &&
                input.dim(3) == geom_.in_w,
            "Conv2d input geometry mismatch");
  const std::size_t batch = input.dim(0);
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::size_t patches = geom_.patches();
  const std::size_t plen = geom_.patch_len();
  const std::size_t img = geom_.in_channels * geom_.in_h * geom_.in_w;

  batch_ = batch;
  ensure_scratch(batch);
  Tensor out({batch, out_channels_, oh, ow});

  // Expand the whole batch (samples in parallel, disjoint row blocks)…
  const auto in_data = input.data();
  float* cols = cols_all_.raw();
  util::ThreadPool::global().parallel_for(
      batch,
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          tensor::im2col_rows(in_data.subspan(b * img, img), geom_,
                              cols + b * patches * plen);
        }
      },
      1);
  // …then one batched GEMM; the NCHW transpose + bias live in its store
  // epilogue, so there is no separate pass over the output.
  tensor::conv_forward_gemm(cols_all_, weight_, bias_.data(), batch, patches,
                            out);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t batch = batch_;
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  OSP_CHECK(batch > 0, "Conv2d backward before forward");
  OSP_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                grad_out.dim(1) == out_channels_ && grad_out.dim(2) == oh &&
                grad_out.dim(3) == ow,
            "Conv2d grad shape mismatch");
  const std::size_t patches = geom_.patches();
  const std::size_t plen = geom_.patch_len();
  const std::size_t img = geom_.in_channels * geom_.in_h * geom_.in_w;
  Tensor dx({batch, geom_.in_channels, geom_.in_h, geom_.in_w});

  // grad_out is NCHW ([out_c, patches] per sample); flip each sample into
  // its [patches, out_c] row block of the batched gradient matrix.
  const float* pg_all = grad_out.raw();
  float* pgm_all = g_all_.raw();
  util::ThreadPool::global().parallel_for(
      batch,
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          const float* pg = pg_all + b * out_channels_ * patches;
          float* pgm = pgm_all + b * patches * out_channels_;
          for (std::size_t oc = 0; oc < out_channels_; ++oc) {
            for (std::size_t p = 0; p < patches; ++p) {
              pgm[p * out_channels_ + oc] = pg[oc * patches + p];
            }
          }
        }
      },
      1);
  // dW += Σ_b g_bᵀ · cols_b, one fresh product per sample added in batch
  // order — the same float grouping as the per-sample implementation, so
  // training trajectories are bit-identical to it.
  tensor::matmul_tn_blocked_acc(g_all_, cols_all_, batch, wgrad_);
  // db += per-channel sums over every (sample, patch) row.
  tensor::sum_rows(g_all_, bgrad_.data());
  // dcols = g_all · W : [batch*patches, out_c]·[out_c, plen]
  tensor::matmul(g_all_, weight_, dcols_all_);
  const float* dcols = dcols_all_.raw();
  auto dx_data = dx.data();
  util::ThreadPool::global().parallel_for(
      batch,
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          tensor::col2im_rows(dcols + b * patches * plen, geom_,
                              dx_data.subspan(b * img, img));
        }
      },
      1);
  return dx;
}

std::vector<ParamRef> Conv2d::params() {
  return {{name() + ".weight", &weight_, &wgrad_},
          {name() + ".bias", &bias_, &bgrad_}};
}

MaxPool2d::MaxPool2d(std::string name, std::size_t channels, std::size_t in_h,
                     std::size_t in_w, std::size_t kernel, std::size_t stride)
    : Layer(std::move(name)),
      channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      kernel_(kernel),
      stride_(stride),
      out_h_((in_h - kernel) / stride + 1),
      out_w_((in_w - kernel) / stride + 1) {
  OSP_CHECK(kernel > 0 && stride > 0, "MaxPool2d invalid geometry");
  OSP_CHECK(in_h >= kernel && in_w >= kernel, "pool kernel larger than input");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 4 && input.dim(1) == channels_ &&
                input.dim(2) == in_h_ && input.dim(3) == in_w_,
            "MaxPool2d input mismatch");
  const std::size_t batch = input.dim(0);
  in_shape_ = input.shape();
  Tensor out({batch, channels_, out_h_, out_w_});
  argmax_.assign(out.numel(), 0);
  const float* pi = input.raw();
  float* po = out.raw();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* chan = pi + (b * channels_ + c) * in_h_ * in_w_;
      const std::size_t chan_base = (b * channels_ + c) * in_h_ * in_w_;
      for (std::size_t oy = 0; oy < out_h_; ++oy) {
        for (std::size_t ox = 0; ox < out_w_; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = chan[iy * in_w_ + ix];
              if (v > best) {
                best = v;
                best_idx = chan_base + iy * in_w_ + ix;
              }
            }
          }
          po[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.numel() == argmax_.size(), "MaxPool2d grad mismatch");
  Tensor dx(in_shape_);
  float* pdx = dx.raw();
  const float* pg = grad_out.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    pdx[argmax_[i]] += pg[i];
  }
  return dx;
}

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() >= 2, "Flatten expects batched input");
  in_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace osp::nn
