#include "nn/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  Tensor out = input;
  for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.numel() == input_.numel(), "ReLU grad size mismatch");
  Tensor dx = grad_out;
  auto in = input_.data();
  auto d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (in[i] <= 0.0f) d[i] = 0.0f;
  }
  return dx;
}

Tensor Tanh::forward(const Tensor& input, bool /*train*/) {
  Tensor out = input;
  for (float& v : out.data()) v = std::tanh(v);
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.numel() == output_.numel(), "Tanh grad size mismatch");
  Tensor dx = grad_out;
  auto y = output_.data();
  auto d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= 1.0f - y[i] * y[i];
  return dx;
}

namespace {
// tanh-approximation GELU and its derivative.
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCoef = 0.044715f;

float gelu_scalar(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad_scalar(float x) {
  const float x3 = x * x * x;
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float dinner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCoef * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}
}  // namespace

Tensor Gelu::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  Tensor out = input;
  for (float& v : out.data()) v = gelu_scalar(v);
  return out;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.numel() == input_.numel(), "GELU grad size mismatch");
  Tensor dx = grad_out;
  auto in = input_.data();
  auto d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= gelu_grad_scalar(in[i]);
  return dx;
}

}  // namespace osp::nn
