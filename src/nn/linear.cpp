#include "nn/linear.hpp"

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, util::Rng& rng, bool bias)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_({out_features, in_features}),
      bias_({out_features}),
      wgrad_({out_features, in_features}),
      bgrad_({out_features}) {
  OSP_CHECK(in_ > 0 && out_ > 0, "Linear needs positive dimensions");
  tensor::xavier_uniform(weight_, in_, out_, rng);
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 2 && input.dim(1) == in_,
            "Linear input shape mismatch");
  input_ = input;
  Tensor out({input.dim(0), out_});
  tensor::matmul_nt(input, weight_, out);  // [B,in]·[out,in]ᵀ = [B,out]
  if (has_bias_) tensor::add_bias_rows(out, bias_.data());
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
            "Linear grad shape mismatch");
  OSP_CHECK(grad_out.dim(0) == input_.dim(0), "batch mismatch in backward");
  // dW += gᵀ·x : [out,B]·[B,in] = [out,in]
  Tensor wg({out_, in_});
  tensor::matmul_tn(grad_out, input_, wg);
  for (std::size_t i = 0; i < wg.numel(); ++i) wgrad_[i] += wg[i];
  if (has_bias_) tensor::sum_rows(grad_out, bgrad_.data());
  // dx = g·W : [B,out]·[out,in] = [B,in]
  Tensor dx({grad_out.dim(0), in_});
  tensor::matmul(grad_out, weight_, dx);
  return dx;
}

std::vector<ParamRef> Linear::params() {
  std::vector<ParamRef> out;
  out.push_back({name() + ".weight", &weight_, &wgrad_});
  if (has_bias_) out.push_back({name() + ".bias", &bias_, &bgrad_});
  return out;
}

}  // namespace osp::nn
