#include "nn/layer.hpp"

namespace osp::nn {

void Layer::zero_grad() {
  for (ParamRef& p : params()) {
    if (p.grad != nullptr) p.grad->zero();
  }
}

}  // namespace osp::nn
