// Fully-connected layer: y = x·Wᵀ + b with W stored [out, in].
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class Linear : public Layer {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         util::Rng& rng, bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  bool has_bias_;
  tensor::Tensor weight_;   // [out, in]
  tensor::Tensor bias_;     // [out]
  tensor::Tensor wgrad_;
  tensor::Tensor bgrad_;
  tensor::Tensor input_;    // cached for backward
};

}  // namespace osp::nn
