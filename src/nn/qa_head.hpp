// Extractive-QA span head: the BERT-style per-position projection.
//
// Input [batch, seq, dim] → output [batch, 2·seq]: position t's start logit
// is w_s·x_t + b_s and its end logit w_e·x_t + b_e, with the output laid out
// as [all start logits | all end logits] to match span_cross_entropy.
#pragma once

#include "nn/layer.hpp"

namespace osp::nn {

class SpanHead : public Layer {
 public:
  SpanHead(std::string name, std::size_t dim, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

 private:
  std::size_t dim_;
  tensor::Tensor weight_;  // [2, dim]: row 0 = start, row 1 = end
  tensor::Tensor bias_;    // [2]
  tensor::Tensor wgrad_;
  tensor::Tensor bgrad_;
  tensor::Tensor input_;   // cached [B, L, D]
};

}  // namespace osp::nn
