#include "nn/attention.hpp"

#include <cmath>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace osp::nn {

using tensor::Tensor;

SelfAttention::SelfAttention(std::string name, std::size_t dim,
                             util::Rng& rng)
    : Layer(std::move(name)),
      dim_(dim),
      wq_({dim, dim}),
      wk_({dim, dim}),
      wv_({dim, dim}),
      wo_({dim, dim}),
      wq_g_({dim, dim}),
      wk_g_({dim, dim}),
      wv_g_({dim, dim}),
      wo_g_({dim, dim}) {
  OSP_CHECK(dim > 0, "attention dim must be positive");
  tensor::xavier_uniform(wq_, dim, dim, rng);
  tensor::xavier_uniform(wk_, dim, dim, rng);
  tensor::xavier_uniform(wv_, dim, dim, rng);
  tensor::xavier_uniform(wo_, dim, dim, rng);
}

namespace {
/// Copy rows [b*L, (b+1)*L) of a [B*L, D] matrix into out [L, D].
void slice_rows(const Tensor& m, std::size_t row0, std::size_t rows,
                Tensor& out) {
  const std::size_t cols = m.dim(1);
  const float* src = m.raw() + row0 * cols;
  float* dst = out.raw();
  for (std::size_t i = 0; i < rows * cols; ++i) dst[i] = src[i];
}

void add_rows(Tensor& m, std::size_t row0, const Tensor& delta) {
  const std::size_t cols = m.dim(1);
  float* dst = m.raw() + row0 * cols;
  const float* src = delta.raw();
  for (std::size_t i = 0; i < delta.numel(); ++i) dst[i] += src[i];
}
}  // namespace

Tensor SelfAttention::forward(const Tensor& input, bool /*train*/) {
  OSP_CHECK(input.rank() == 3 && input.dim(2) == dim_,
            "SelfAttention expects [B, L, D]");
  batch_ = input.dim(0);
  seq_ = input.dim(1);
  const std::size_t n = batch_ * seq_;

  xf_ = input.reshaped({n, dim_});
  q_ = Tensor({n, dim_});
  k_ = Tensor({n, dim_});
  v_ = Tensor({n, dim_});
  tensor::matmul_nt(xf_, wq_, q_);
  tensor::matmul_nt(xf_, wk_, k_);
  tensor::matmul_nt(xf_, wv_, v_);

  h_ = Tensor({n, dim_});
  attn_.assign(batch_, Tensor({seq_, seq_}));
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(dim_));

  Tensor qb({seq_, dim_}), kb({seq_, dim_}), vb({seq_, dim_});
  Tensor scores({seq_, seq_}), hb({seq_, dim_});
  for (std::size_t b = 0; b < batch_; ++b) {
    const std::size_t r0 = b * seq_;
    slice_rows(q_, r0, seq_, qb);
    slice_rows(k_, r0, seq_, kb);
    slice_rows(v_, r0, seq_, vb);
    tensor::matmul_nt(qb, kb, scores);  // [L, L]
    for (float& s : scores.data()) s *= inv_sqrt_d;
    tensor::softmax_rows(scores, attn_[b]);
    tensor::matmul(attn_[b], vb, hb);   // [L, D]
    float* dst = h_.raw() + r0 * dim_;
    const float* src = hb.raw();
    for (std::size_t i = 0; i < seq_ * dim_; ++i) dst[i] = src[i];
  }

  Tensor y({n, dim_});
  tensor::matmul_nt(h_, wo_, y);  // output projection
  // Residual connection.
  const float* px = xf_.raw();
  float* py = y.raw();
  for (std::size_t i = 0; i < y.numel(); ++i) py[i] += px[i];
  return y.reshaped({batch_, seq_, dim_});
}

Tensor SelfAttention::backward(const Tensor& grad_out) {
  OSP_CHECK(grad_out.rank() == 3 && grad_out.dim(0) == batch_ &&
                grad_out.dim(1) == seq_ && grad_out.dim(2) == dim_,
            "SelfAttention grad mismatch");
  const std::size_t n = batch_ * seq_;
  const Tensor gy = grad_out.reshaped({n, dim_});

  // Y = H·Woᵀ + X  →  dH = gy·Wo ; dWo += gyᵀ·H ; dX += gy (residual).
  Tensor dh({n, dim_});
  tensor::matmul(gy, wo_, dh);
  Tensor wo_delta({dim_, dim_});
  tensor::matmul_tn(gy, h_, wo_delta);
  for (std::size_t i = 0; i < wo_delta.numel(); ++i) wo_g_[i] += wo_delta[i];

  Tensor dq({n, dim_}), dk({n, dim_}), dv({n, dim_});
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(dim_));

  Tensor dhb({seq_, dim_}), vb({seq_, dim_}), qb({seq_, dim_}),
      kb({seq_, dim_});
  Tensor da({seq_, seq_}), ds({seq_, seq_});
  Tensor dqb({seq_, dim_}), dkb({seq_, dim_}), dvb({seq_, dim_});
  for (std::size_t b = 0; b < batch_; ++b) {
    const std::size_t r0 = b * seq_;
    slice_rows(dh, r0, seq_, dhb);
    slice_rows(v_, r0, seq_, vb);
    slice_rows(q_, r0, seq_, qb);
    slice_rows(k_, r0, seq_, kb);
    const Tensor& a = attn_[b];
    // H_b = A·V_b → dA = dH_b·V_bᵀ ; dV_b = Aᵀ·dH_b.
    tensor::matmul_nt(dhb, vb, da);
    tensor::matmul_tn(a, dhb, dvb);
    // Softmax backward per row: ds_ij = a_ij (da_ij − Σ_k da_ik a_ik).
    for (std::size_t i = 0; i < seq_; ++i) {
      const float* arow = a.raw() + i * seq_;
      const float* darow = da.raw() + i * seq_;
      float dot = 0.0f;
      for (std::size_t j = 0; j < seq_; ++j) dot += darow[j] * arow[j];
      float* dsrow = ds.raw() + i * seq_;
      for (std::size_t j = 0; j < seq_; ++j) {
        dsrow[j] = arow[j] * (darow[j] - dot) * inv_sqrt_d;
      }
    }
    // S = Q·Kᵀ (scaled) → dQ_b = dS·K_b ; dK_b = dSᵀ·Q_b.
    tensor::matmul(ds, kb, dqb);
    tensor::matmul_tn(ds, qb, dkb);
    add_rows(dq, r0, dqb);
    add_rows(dk, r0, dkb);
    add_rows(dv, r0, dvb);
  }

  // Projections: Q = X·Wqᵀ → dX += dQ·Wq ; dWq += dQᵀ·X (same for K, V).
  Tensor dx = gy;  // residual path
  Tensor tmp({n, dim_});
  Tensor wdelta({dim_, dim_});

  tensor::matmul(dq, wq_, tmp);
  for (std::size_t i = 0; i < tmp.numel(); ++i) dx[i] += tmp[i];
  tensor::matmul_tn(dq, xf_, wdelta);
  for (std::size_t i = 0; i < wdelta.numel(); ++i) wq_g_[i] += wdelta[i];

  tensor::matmul(dk, wk_, tmp);
  for (std::size_t i = 0; i < tmp.numel(); ++i) dx[i] += tmp[i];
  tensor::matmul_tn(dk, xf_, wdelta);
  for (std::size_t i = 0; i < wdelta.numel(); ++i) wk_g_[i] += wdelta[i];

  tensor::matmul(dv, wv_, tmp);
  for (std::size_t i = 0; i < tmp.numel(); ++i) dx[i] += tmp[i];
  tensor::matmul_tn(dv, xf_, wdelta);
  for (std::size_t i = 0; i < wdelta.numel(); ++i) wv_g_[i] += wdelta[i];

  return dx.reshaped({batch_, seq_, dim_});
}

std::vector<ParamRef> SelfAttention::params() {
  return {{name() + ".wq", &wq_, &wq_g_},
          {name() + ".wk", &wk_, &wk_g_},
          {name() + ".wv", &wv_, &wv_g_},
          {name() + ".wo", &wo_, &wo_g_}};
}

}  // namespace osp::nn
