#include "nn/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace osp::nn {

double top1_accuracy(const tensor::Tensor& logits,
                     std::span<const std::int32_t> labels) {
  OSP_CHECK(logits.rank() == 2, "logits must be rank-2");
  const std::size_t batch = logits.dim(0);
  OSP_CHECK(labels.size() == batch, "label count mismatch");
  OSP_CHECK(batch > 0, "empty batch");
  std::size_t correct = 0;
  for (std::size_t r = 0; r < batch; ++r) {
    if (argmax(logits.row(r)) == static_cast<std::size_t>(labels[r])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

std::size_t argmax(std::span<const float> xs) {
  OSP_CHECK(!xs.empty(), "argmax of empty span");
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double span_f1(std::int32_t pred_start, std::int32_t pred_end,
               std::int32_t gold_start, std::int32_t gold_end) {
  if (pred_end < pred_start || gold_end < gold_start) return 0.0;
  const std::int32_t lo = std::max(pred_start, gold_start);
  const std::int32_t hi = std::min(pred_end, gold_end);
  const std::int32_t overlap = hi - lo + 1;
  if (overlap <= 0) return 0.0;
  const double pred_len = pred_end - pred_start + 1;
  const double gold_len = gold_end - gold_start + 1;
  const double precision = overlap / pred_len;
  const double recall = overlap / gold_len;
  return 2.0 * precision * recall / (precision + recall);
}

double batch_span_f1(const tensor::Tensor& logits,
                     std::span<const std::int32_t> gold_starts,
                     std::span<const std::int32_t> gold_ends) {
  OSP_CHECK(logits.rank() == 2 && logits.dim(1) % 2 == 0,
            "span logits must be [batch, 2*seq]");
  const std::size_t batch = logits.dim(0);
  const std::size_t seq = logits.dim(1) / 2;
  OSP_CHECK(gold_starts.size() == batch && gold_ends.size() == batch,
            "gold span count mismatch");
  OSP_CHECK(batch > 0, "empty batch");
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = logits.row(r);
    const auto ps = static_cast<std::int32_t>(argmax(row.subspan(0, seq)));
    const auto pe = static_cast<std::int32_t>(argmax(row.subspan(seq, seq)));
    total += span_f1(ps, std::max(ps, pe), gold_starts[r], gold_ends[r]);
  }
  return total / static_cast<double>(batch);
}

}  // namespace osp::nn
