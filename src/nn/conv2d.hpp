// 2-D convolution over NCHW tensors via im2col + matmul.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace osp::nn {

class Conv2d : public Layer {
 public:
  /// Square kernel; weight stored [out_channels, in_channels*k*k].
  Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t in_h, std::size_t in_w, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<ParamRef> params() override;

  [[nodiscard]] const tensor::Conv2dGeom& geometry() const { return geom_; }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }

 private:
  /// (Re)sizes the batched scratch matrices when the batch size changes;
  /// steady-state iterations reuse them without allocating.
  void ensure_scratch(std::size_t batch);

  tensor::Conv2dGeom geom_;
  std::size_t out_channels_;
  tensor::Tensor weight_;  // [out_c, C*k*k]
  tensor::Tensor bias_;    // [out_c]
  tensor::Tensor wgrad_;
  tensor::Tensor bgrad_;
  std::size_t batch_ = 0;  // batch of the last forward (for backward checks)
  // Persistent batched scratch: every sample's rows back-to-back, so the
  // whole batch runs through ONE GEMM per pass instead of `batch` small
  // ones, and no per-sample Tensors are allocated on the hot path.
  tensor::Tensor cols_all_;   // im2col rows        [batch*patches, C*k*k]
  tensor::Tensor g_all_;      // grad as matrix     [batch*patches, out_c]
  tensor::Tensor dcols_all_;  // col gradient       [batch*patches, C*k*k]
};

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, std::size_t channels, std::size_t in_h,
            std::size_t in_w, std::size_t kernel, std::size_t stride);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  std::size_t channels_, in_h_, in_w_, kernel_, stride_;
  std::size_t out_h_, out_w_;
  tensor::Shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Reshapes NCHW activations to [batch, C*H*W] (and back in backward).
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Shape in_shape_;
};

}  // namespace osp::nn
