// Model checkpointing: save/load a FlatModel's parameters to a small
// self-describing binary format.
//
// The file is a standard serde envelope (util/serde.hpp, magic
// "OSPCKPT2"): little-endian, length-prefixed, CRC-checked — truncated or
// bit-corrupted files and files with trailing garbage are rejected with
// util::CheckError before any field is interpreted. Payload:
//   u64 block_count
//   per block: str name, u64 offset, u64 numel
//   f32 array: the flat parameter vector
// Loading validates the structural header against the live model, so a
// checkpoint cannot be scattered into a mismatched architecture.
#pragma once

#include <string>

#include "nn/registry.hpp"

namespace osp::nn {

/// Write the model's current parameters; throws util::CheckError on I/O
/// failure.
void save_checkpoint(const FlatModel& model, const std::string& path);

/// Read a checkpoint into the model; throws util::CheckError if the file
/// is malformed or its block structure does not match.
void load_checkpoint(FlatModel& model, const std::string& path);

}  // namespace osp::nn
