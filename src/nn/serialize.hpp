// Model checkpointing: save/load a FlatModel's parameters to a small
// self-describing binary format.
//
// Layout (little-endian):
//   magic "OSPCKPT1" (8 bytes)
//   u64 block_count
//   per block: u32 name_len, name bytes, u64 offset, u64 numel
//   u64 total_params
//   total_params × f32 parameter data
// Loading validates the structural header against the live model, so a
// checkpoint cannot be scattered into a mismatched architecture.
#pragma once

#include <string>

#include "nn/registry.hpp"

namespace osp::nn {

/// Write the model's current parameters; throws util::CheckError on I/O
/// failure.
void save_checkpoint(const FlatModel& model, const std::string& path);

/// Read a checkpoint into the model; throws util::CheckError if the file
/// is malformed or its block structure does not match.
void load_checkpoint(FlatModel& model, const std::string& path);

}  // namespace osp::nn
