// The synchronization-model strategy interface.
//
// The Engine owns the per-worker compute loop; a SyncModel owns everything
// between "worker w's gradient is ready" and "worker w may start its next
// iteration". Implementations schedule virtual-time network transfers
// through the engine's cluster and apply parameter updates through the
// engine's PS accessors, then call eng().finish_sync(w).
#pragma once

#include <cstddef>
#include <string>

namespace osp::runtime {

class Engine;

class SyncModel {
 public:
  virtual ~SyncModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the run starts. The default stores the engine.
  virtual void attach(Engine& eng) { eng_ = &eng; }

  /// Worker `worker` finished FP+BP; its gradient is available via
  /// eng().worker_gradient(worker). The implementation must eventually call
  /// eng().finish_sync(worker).
  virtual void on_gradient_ready(std::size_t worker) = 0;

  /// All workers completed (1-based) epoch `epoch`; `mean_loss` is the mean
  /// training loss across workers for that epoch. Drives Algorithm 1.
  virtual void on_epoch_complete(std::size_t epoch, double mean_loss) {
    (void)epoch;
    (void)mean_loss;
  }

 protected:
  [[nodiscard]] Engine& eng() { return *eng_; }
  [[nodiscard]] const Engine& eng() const { return *eng_; }

 private:
  Engine* eng_ = nullptr;
};

}  // namespace osp::runtime
