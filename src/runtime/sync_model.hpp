// The synchronization-model strategy interface.
//
// The Engine owns the per-worker compute loop; a SyncModel owns everything
// between "worker w's gradient is ready" and "worker w may start its next
// iteration". Implementations schedule virtual-time network transfers
// through the engine's cluster and apply parameter updates through the
// engine's PS accessors, then call eng().finish_sync(w).
//
// Survival contract (fault injection, see sim/faults.hpp): barrier-style
// models must not hang when a worker crashes or its messages stall. The
// engine notifies models through on_worker_crashed / on_worker_restarted,
// and SyncTimeouts lets a round proceed with N−k arrivals once the
// deadline passes (BSP's barrier, OSP's RS and ICS stages). A timeout of 0
// preserves the classic wait-forever semantics — the healthy path is
// untouched unless a deadline is configured.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "runtime/trace.hpp"

namespace osp::util::serde {
class Writer;
class Reader;
}  // namespace osp::util::serde

namespace osp::runtime {

class Engine;
struct SyncTelemetry;

/// Round deadlines for fault-tolerant synchronization. `rs_timeout_s`
/// bounds how long a gradient-collection round (BSP's barrier, OSP's RS
/// stage) waits after the first push of the round is sent; on expiry the
/// PS aggregates the arrivals it has and resyncs stragglers with a full
/// parameter pull. `ics_timeout_s` bounds OSP's in-computation stage; an
/// expired ICS round is abandoned (workers keep their LGP predictions —
/// §4.3's degradation path). 0 disables the respective deadline.
struct SyncTimeouts {
  double rs_timeout_s = 0.0;
  double ics_timeout_s = 0.0;
};

class SyncModel {
 public:
  virtual ~SyncModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the run starts. The default stores the engine.
  virtual void attach(Engine& eng) { eng_ = &eng; }

  /// Worker `worker` finished FP+BP; its gradient is available via
  /// eng().worker_gradient(worker). The implementation must eventually call
  /// eng().finish_sync(worker).
  virtual void on_gradient_ready(std::size_t worker) = 0;

  /// All workers completed (1-based) epoch `epoch`; `mean_loss` is the mean
  /// training loss across workers for that epoch. Drives Algorithm 1.
  virtual void on_epoch_complete(std::size_t epoch, double mean_loss) {
    (void)epoch;
    (void)mean_loss;
  }

  /// Fault notifications from the engine. A crashed worker's in-flight
  /// flows are already cancelled when this fires; implementations should
  /// stop waiting for it (e.g. re-check a barrier). Restart fires after
  /// the worker re-pulled the global model and is about to compute again.
  virtual void on_worker_crashed(std::size_t worker) { (void)worker; }
  virtual void on_worker_restarted(std::size_t worker) { (void)worker; }

  /// PS-shard fault notifications. When a PS crashes its serial queue is
  /// dropped (queued ps_submit callbacks never fire); models replicating
  /// key segments (kv/replication.hpp) repoint the crashed host's shards
  /// at their backups here and re-drive any exchange the dead host owed.
  /// Models without PS state may ignore both (the engine-level timeout /
  /// catch-up contract still applies). Restart fires when the host's
  /// queue is accepting work again.
  virtual void on_ps_crashed(std::size_t ps) { (void)ps; }
  virtual void on_ps_restarted(std::size_t ps) { (void)ps; }

  void set_timeouts(const SyncTimeouts& timeouts) { timeouts_ = timeouts; }
  [[nodiscard]] const SyncTimeouts& timeouts() const { return timeouts_; }

  // ---- checkpointing ----
  //
  // The engine only snapshots at a drain barrier: every worker parked at
  // an iteration boundary, no flows in flight, and drained() true. A model
  // therefore only serializes state that survives across rounds (round
  // counters, error-feedback residuals, tuner state, RNG streams) — never
  // in-flight round bookkeeping, which is empty by construction at the
  // barrier. The default implementations suit stateless models.

  /// Serialize persistent model state. Called only when drained().
  virtual void save_state(util::serde::Writer& w) const { (void)w; }

  /// Restore state written by save_state. Called after attach(), before
  /// any worker resumes.
  virtual void load_state(util::serde::Reader& r) { (void)r; }

  /// True when no synchronization round is in progress and no model-owned
  /// timer or transfer is pending — i.e. state is snapshot-safe.
  [[nodiscard]] virtual bool drained() const { return true; }

  // ---- observability ----

  /// Trace phase the engine records for the blocking gradient-ready →
  /// finish_sync span. OSP overrides this to kRs so its blocking stage is
  /// distinguishable from a generic barrier in the trace.
  [[nodiscard]] virtual TracePhase blocking_phase() const {
    return TracePhase::kSync;
  }

 protected:
  /// Telemetry helper for full-model exchanges: fetches (or creates) the
  /// record for `round` via Engine::telemetry_round and fills the common
  /// shape — close time now, `contributors`, every block "important",
  /// important_bytes = the full model. Models with a finer split (OSP,
  /// compressed) fill the record themselves instead. Safe to call when
  /// telemetry is disabled (writes go to a discarded scratch record).
  SyncTelemetry& record_full_round(std::uint64_t round,
                                   std::size_t contributors);

  [[nodiscard]] Engine& eng() { return *eng_; }
  [[nodiscard]] const Engine& eng() const { return *eng_; }

 private:
  Engine* eng_ = nullptr;
  SyncTimeouts timeouts_;
};

}  // namespace osp::runtime
