// Run-level checkpoints with deterministic resume.
//
// A RunCheckpoint is a full snapshot of a training run at a drain barrier:
// every worker parked at an iteration boundary, no network flow or PS job
// in flight, and the sync model drained (no open RS/ICS round, no armed
// timer). Because the snapshot point is quiescent, no in-flight event has
// to be serialized — the entire simulator queue is reconstructible from
// (a) the parked workers (released at the snapshot time on resume) and
// (b) the not-yet-executed entries of the fault schedule. Resuming from a
// checkpoint therefore replays the remainder of the run *bit-identically*:
// same parameters, same metrics, same event order.
//
// The fingerprint block (workload/sync names, worker count, seeds, model
// shape) is checked on restore so a checkpoint can never be loaded into a
// mismatched experiment; the serde envelope (see util/serde.hpp) rejects
// truncated, corrupted, or foreign files before any field is read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "util/stats.hpp"

namespace osp::runtime {

/// Periodic checkpoint policy for the engine (EngineConfig::checkpoint).
struct CheckpointPolicy {
  /// Take a checkpoint every time all workers reach this many further
  /// iterations (0 disables checkpointing entirely).
  std::size_t every_iters = 0;
  /// File the latest checkpoint is written to (empty = keep in memory
  /// only; the in-memory copy still serves crashed-worker restores).
  std::string path;
  /// Stop the run right after the first checkpoint is written — models a
  /// preempted/killed job whose continuation is a resumed run.
  bool halt_after_checkpoint = false;
  /// Resume a previous run from this checkpoint file (empty = fresh run).
  std::string resume_from;
  /// Restore a crashed worker's state from the latest checkpoint (a local
  /// disk read) instead of re-pulling the full model from the PS over the
  /// network. Falls back to the network pull before the first checkpoint.
  bool restore_crashed_from_checkpoint = false;
  /// Local-disk read bandwidth used by checkpoint restores.
  double restore_read_bytes_per_s = 2e9;
};

/// Per-worker slice of a run checkpoint.
struct WorkerCheckpoint {
  std::vector<float> params;      ///< flat local replica
  util::RngState rng;             ///< straggler-jitter stream
  std::uint64_t iteration = 0;
  std::uint64_t epoch = 0;
  double epoch_loss_sum = 0.0;
  std::uint64_t epoch_loss_count = 0;
  bool done = false;
  bool parked = false;            ///< waiting at the drain barrier
  bool crashed = false;
  double crashed_at = 0.0;
  double pause_until = 0.0;
  /// Absolute sim time of the pending restart event; < 0 when none.
  double restart_at = -1.0;
};

struct RunCheckpoint {
  // ---- fingerprint (validated on restore) ----
  std::string workload_name;
  std::string sync_name;
  std::uint64_t num_workers = 0;
  std::uint64_t max_epochs = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_ps = 0;
  std::uint64_t total_params = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t batches_per_epoch = 0;
  double momentum = 0.0;

  // ---- run position ----
  double sim_time = 0.0;              ///< virtual time of the snapshot
  std::uint64_t checkpoint_iter = 0;  ///< iteration boundary snapped at
  std::uint64_t checkpoints_taken = 0;

  // ---- engine state ----
  std::vector<float> global_params;
  std::vector<float> optimizer_velocity;  ///< empty when momentum == 0
  double samples_processed = 0.0;
  double next_eval_at_samples = 0.0;
  std::vector<std::size_t> epoch_done_counts;
  std::vector<double> epoch_loss_sums;
  std::vector<double> ps_busy_until;
  std::vector<bool> ps_crashed;           ///< per-PS crashed flag
  std::vector<double> ps_crashed_at;
  std::vector<double> ps_restart_at;      ///< pending restart (< 0: none)
  sim::FaultStats fault_stats;

  // ---- metrics recorder ----
  util::OnlineStats bct;
  util::OnlineStats bst;
  std::vector<double> bst_samples;
  std::vector<EvalPoint> curve;
  std::vector<double> epoch_losses;

  // ---- opaque sub-states ----
  std::vector<std::uint8_t> network_state;  ///< sim::Network::save_state
  std::vector<WorkerCheckpoint> workers;
  std::vector<std::uint8_t> sync_state;     ///< SyncModel::save_state

  void serialize(util::serde::Writer& w) const;
  [[nodiscard]] static RunCheckpoint deserialize(util::serde::Reader& r);

  /// Write/read the standard serde envelope (magic "OSPRUN01").
  void save(const std::string& path) const;
  [[nodiscard]] static RunCheckpoint load(const std::string& path);
};

}  // namespace osp::runtime
