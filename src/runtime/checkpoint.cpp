#include "runtime/checkpoint.hpp"

#include "util/check.hpp"

namespace osp::runtime {
namespace {

constexpr char kMagic[] = "OSPRUN01";
// v2: PS-shard fault state (crashed flags, crash/restart times) and the
// PS fields appended to FaultStats.
constexpr std::uint32_t kVersion = 2;

void write_rng(util::serde::Writer& w, const util::RngState& st) {
  for (std::uint64_t word : st.s) w.u64(word);
  w.boolean(st.have_spare_normal);
  w.f64(st.spare_normal);
}

util::RngState read_rng(util::serde::Reader& r) {
  util::RngState st;
  for (auto& word : st.s) word = r.u64();
  st.have_spare_normal = r.boolean();
  st.spare_normal = r.f64();
  return st;
}

void write_stats(util::serde::Writer& w, const util::OnlineStats& st) {
  w.u64(st.count());
  w.f64(st.mean());
  w.f64(st.m2());
  w.f64(st.min());
  w.f64(st.max());
  w.f64(st.sum());
}

util::OnlineStats read_stats(util::serde::Reader& r) {
  const auto count = static_cast<std::size_t>(r.u64());
  const double mean = r.f64();
  const double m2 = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  const double sum = r.f64();
  return util::OnlineStats::from_state(count, mean, m2, min, max, sum);
}

void write_fault_stats(util::serde::Writer& w, const sim::FaultStats& fs) {
  w.u64(fs.worker_crashes);
  w.u64(fs.worker_restarts);
  w.u64(fs.worker_pauses);
  w.u64(fs.link_down_events);
  w.u64(fs.link_degrade_events);
  w.u64(fs.flows_cancelled);
  w.u64(fs.messages_dropped);
  w.u64(fs.messages_delayed);
  w.u64(fs.timed_out_rounds);
  w.u64(fs.ics_rounds_abandoned);
  w.u64(fs.catch_up_pulls);
  w.u64(fs.checkpoint_restores);
  w.u64(fs.ps_crashes);
  w.u64(fs.ps_restarts);
  w.u64(fs.ps_promotions);
  w.f64(fs.replica_catchup_bytes);
  w.f64(fs.worker_downtime_s);
}

sim::FaultStats read_fault_stats(util::serde::Reader& r) {
  sim::FaultStats fs;
  fs.worker_crashes = static_cast<std::size_t>(r.u64());
  fs.worker_restarts = static_cast<std::size_t>(r.u64());
  fs.worker_pauses = static_cast<std::size_t>(r.u64());
  fs.link_down_events = static_cast<std::size_t>(r.u64());
  fs.link_degrade_events = static_cast<std::size_t>(r.u64());
  fs.flows_cancelled = static_cast<std::size_t>(r.u64());
  fs.messages_dropped = static_cast<std::size_t>(r.u64());
  fs.messages_delayed = static_cast<std::size_t>(r.u64());
  fs.timed_out_rounds = static_cast<std::size_t>(r.u64());
  fs.ics_rounds_abandoned = static_cast<std::size_t>(r.u64());
  fs.catch_up_pulls = static_cast<std::size_t>(r.u64());
  fs.checkpoint_restores = static_cast<std::size_t>(r.u64());
  fs.ps_crashes = static_cast<std::size_t>(r.u64());
  fs.ps_restarts = static_cast<std::size_t>(r.u64());
  fs.ps_promotions = static_cast<std::size_t>(r.u64());
  fs.replica_catchup_bytes = r.f64();
  fs.worker_downtime_s = r.f64();
  return fs;
}

void write_worker(util::serde::Writer& w, const WorkerCheckpoint& wc) {
  w.f32_vec(wc.params);
  write_rng(w, wc.rng);
  w.u64(wc.iteration);
  w.u64(wc.epoch);
  w.f64(wc.epoch_loss_sum);
  w.u64(wc.epoch_loss_count);
  w.boolean(wc.done);
  w.boolean(wc.parked);
  w.boolean(wc.crashed);
  w.f64(wc.crashed_at);
  w.f64(wc.pause_until);
  w.f64(wc.restart_at);
}

WorkerCheckpoint read_worker(util::serde::Reader& r) {
  WorkerCheckpoint wc;
  wc.params = r.f32_vec();
  wc.rng = read_rng(r);
  wc.iteration = r.u64();
  wc.epoch = r.u64();
  wc.epoch_loss_sum = r.f64();
  wc.epoch_loss_count = r.u64();
  wc.done = r.boolean();
  wc.parked = r.boolean();
  wc.crashed = r.boolean();
  wc.crashed_at = r.f64();
  wc.pause_until = r.f64();
  wc.restart_at = r.f64();
  return wc;
}

}  // namespace

void RunCheckpoint::serialize(util::serde::Writer& w) const {
  w.str(workload_name);
  w.str(sync_name);
  w.u64(num_workers);
  w.u64(max_epochs);
  w.u64(seed);
  w.u64(num_ps);
  w.u64(total_params);
  w.u64(num_blocks);
  w.u64(batches_per_epoch);
  w.f64(momentum);

  w.f64(sim_time);
  w.u64(checkpoint_iter);
  w.u64(checkpoints_taken);

  w.f32_vec(global_params);
  w.f32_vec(optimizer_velocity);
  w.f64(samples_processed);
  w.f64(next_eval_at_samples);
  w.size_vec(epoch_done_counts);
  w.f64_vec(epoch_loss_sums);
  w.f64_vec(ps_busy_until);
  w.bool_vec(ps_crashed);
  w.f64_vec(ps_crashed_at);
  w.f64_vec(ps_restart_at);
  write_fault_stats(w, fault_stats);

  write_stats(w, bct);
  write_stats(w, bst);
  w.f64_vec(bst_samples);
  w.u64(curve.size());
  for (const EvalPoint& p : curve) {
    w.f64(p.time_s);
    w.f64(p.samples);
    w.f64(p.metric);
    w.f64(p.loss);
  }
  w.f64_vec(epoch_losses);

  w.bytes(network_state);
  w.u64(workers.size());
  for (const WorkerCheckpoint& wc : workers) write_worker(w, wc);
  w.bytes(sync_state);
}

RunCheckpoint RunCheckpoint::deserialize(util::serde::Reader& r) {
  RunCheckpoint c;
  c.workload_name = r.str();
  c.sync_name = r.str();
  c.num_workers = r.u64();
  c.max_epochs = r.u64();
  c.seed = r.u64();
  c.num_ps = r.u64();
  c.total_params = r.u64();
  c.num_blocks = r.u64();
  c.batches_per_epoch = r.u64();
  c.momentum = r.f64();

  c.sim_time = r.f64();
  c.checkpoint_iter = r.u64();
  c.checkpoints_taken = r.u64();

  c.global_params = r.f32_vec();
  c.optimizer_velocity = r.f32_vec();
  c.samples_processed = r.f64();
  c.next_eval_at_samples = r.f64();
  c.epoch_done_counts = r.size_vec();
  c.epoch_loss_sums = r.f64_vec();
  c.ps_busy_until = r.f64_vec();
  c.ps_crashed = r.bool_vec();
  c.ps_crashed_at = r.f64_vec();
  c.ps_restart_at = r.f64_vec();
  c.fault_stats = read_fault_stats(r);

  c.bct = read_stats(r);
  c.bst = read_stats(r);
  c.bst_samples = r.f64_vec();
  const auto curve_len = static_cast<std::size_t>(r.u64());
  c.curve.reserve(curve_len);
  for (std::size_t i = 0; i < curve_len; ++i) {
    EvalPoint p;
    p.time_s = r.f64();
    p.samples = r.f64();
    p.metric = r.f64();
    p.loss = r.f64();
    c.curve.push_back(p);
  }
  c.epoch_losses = r.f64_vec();

  c.network_state = r.bytes();
  const auto num = static_cast<std::size_t>(r.u64());
  OSP_CHECK(num == c.num_workers,
            "checkpoint worker array does not match its header");
  c.workers.reserve(num);
  for (std::size_t i = 0; i < num; ++i) c.workers.push_back(read_worker(r));
  c.sync_state = r.bytes();
  return c;
}

void RunCheckpoint::save(const std::string& path) const {
  util::serde::Writer w;
  serialize(w);
  util::serde::write_file(path, kMagic, kVersion, w.data());
}

RunCheckpoint RunCheckpoint::load(const std::string& path) {
  auto file = util::serde::read_file(path, kMagic, kVersion);
  util::serde::Reader r(file.payload);
  RunCheckpoint c = deserialize(r);
  r.expect_done();
  return c;
}

}  // namespace osp::runtime
