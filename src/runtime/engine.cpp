#include "runtime/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "nn/metrics.hpp"
#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::runtime {

Engine::Engine(const WorkloadSpec& spec, const EngineConfig& config,
               SyncModel& sync)
    : spec_(&spec), config_(config), sync_(&sync) {
  OSP_CHECK(config.num_workers > 0, "need at least one worker");
  OSP_CHECK(config.max_epochs > 0, "need at least one epoch");
  OSP_CHECK(spec.build_model != nullptr, "workload has no model builder");
  OSP_CHECK(spec.train != nullptr && spec.eval != nullptr,
            "workload has no datasets");
  OSP_CHECK(spec.real_param_bytes > 0.0 && spec.flops_per_sample > 0.0,
            "workload timing metadata missing");

  // Cluster: the engine forces worker count consistency.
  sim::ClusterConfig cluster_cfg = config.cluster;
  cluster_cfg.num_workers = config.num_workers;
  cluster_ = std::make_unique<sim::Cluster>(sim_, cluster_cfg);

  compute_model_.flops_per_sample = spec.flops_per_sample;
  compute_model_.node = cluster_cfg.node;
  compute_model_.straggler_jitter = config.straggler_jitter;

  // Proxy model + flat view. scratch_model_ is the dedicated *evaluation*
  // replica (and block-layout authority); worker math runs on replicas_,
  // a pool of identically-built models, so in-flight FP+BP jobs can
  // overlap each other and any concurrent evaluation.
  scratch_model_ = spec.build_model(config.seed);
  flat_ = std::make_unique<nn::FlatModel>(scratch_model_);
  replicas_ = std::make_unique<ReplicaPool>(spec.build_model, config.seed);
  pool_ = &util::ThreadPool::global();
  async_math_ = config.async_worker_math;
  if (const char* env = std::getenv("OSP_ASYNC_MATH")) {
    async_math_ = !(env[0] == '0' && env[1] == '\0');
  }
  // A single-thread pool cannot overlap anything: submitting jobs would
  // only add handoff latency between the event loop and the one worker.
  // Results are identical either way, so quietly take the serial path.
  if (pool_->size() <= 1) async_math_ = false;
  const double total = static_cast<double>(flat_->total_params());
  block_bytes_.reserve(flat_->num_blocks());
  for (const nn::LayerBlockInfo& b : flat_->blocks()) {
    block_bytes_.push_back(spec.real_param_bytes *
                           static_cast<double>(b.numel) / total);
  }

  global_params_.resize(flat_->total_params());
  flat_->gather_params(global_params_);
  optimizer_ = std::make_unique<nn::SgdOptimizer>(flat_->total_params(),
                                                  config.momentum);

  util::Rng master(config.seed);
  workers_.resize(config.num_workers);
  for (std::size_t w = 0; w < config.num_workers; ++w) {
    WorkerState& ws = workers_[w];
    ws.params = global_params_;
    ws.grad.assign(flat_->total_params(), 0.0f);
    ws.batch_size = spec.batch_size;
    if (config.balance_batch_to_speed) {
      // §6.2: batch ∝ speed equalizes compute time across workers.
      const double scaled = static_cast<double>(spec.batch_size) *
                            cluster_->speed_factor(w);
      ws.batch_size = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(scaled)));
    }
    ws.loader = std::make_unique<data::ShardLoader>(
        *spec.train, w, config.num_workers, ws.batch_size,
        config.seed ^ 0xabcdef12345ULL);
    ws.rng = master.fork(1000 + w);
  }

  ps_busy_until_.assign(cluster_cfg.num_ps, 0.0);
  ps_crashed_.assign(cluster_cfg.num_ps, 0);
  ps_crashed_at_.assign(cluster_cfg.num_ps, 0.0);
  ps_restart_at_.assign(cluster_cfg.num_ps, -1.0);
  ps_epoch_.assign(cluster_cfg.num_ps, 0);
  alive_count_ = config.num_workers;
  eval_stride_ = config.eval_every_samples > 0 ? config.eval_every_samples
                                               : spec.train->size();
  next_eval_at_samples_ = static_cast<double>(eval_stride_);
}

Engine::~Engine() {
  // Join every math job the run left in flight (crash-abandoned jobs, and
  // pending compute cut short by a virtual-time cap or a checkpoint halt)
  // before the replicas and loaders they reference are destroyed. Joining
  // steals still-queued jobs, and cancelled ones no-op, so this is cheap.
  for (WorkerState& ws : workers_) {
    if (ws.job == nullptr) continue;
    ws.job->cancelled.store(true, std::memory_order_relaxed);
    ws.job->handle.join();
  }
  for (const std::shared_ptr<MathJob>& job : abandoned_jobs_) {
    job->handle.join();
  }
}

const std::vector<nn::LayerBlockInfo>& Engine::blocks() const {
  return flat_->blocks();
}

double Engine::block_bytes(std::size_t i) const {
  OSP_CHECK(i < block_bytes_.size(), "block index out of range");
  return block_bytes_[i];
}

double Engine::base_compute_time() const {
  return compute_model_.base_batch_time(spec_->batch_size);
}

double Engine::ps_apply_delay(double bytes, double passes) const {
  const double rate = config_.cluster.ps_apply_bytes_per_s;
  if (rate <= 0.0) return 0.0;
  return passes * bytes / rate;
}

void Engine::ps_submit(double seconds, std::function<void()> done,
                       std::size_t ps) {
  OSP_CHECK(seconds >= 0.0, "negative PS work");
  OSP_CHECK(done != nullptr, "null completion");
  OSP_CHECK(ps < ps_busy_until_.size(), "ps id out of range");
  // A dead host's queue is refusing connections; the submission is lost
  // (sync models route around crashed hosts via their replica chains).
  if (ps_crashed_[ps] != 0) return;
  const double start = std::max(sim_.now(), ps_busy_until_[ps]);
  ps_busy_until_[ps] = start + seconds;
  // The completion is invalidated if the host crashes before it fires:
  // the queue dies with the host and does not come back at restart.
  const std::uint64_t epoch = ps_epoch_[ps];
  sim_.schedule_at(ps_busy_until_[ps],
                   [this, ps, epoch, done = std::move(done)] {
                     if (ps_epoch_[ps] != epoch) return;
                     done();
                   });
}

std::span<const float> Engine::worker_gradient(std::size_t w) const {
  return workers_.at(w).grad;
}

std::span<float> Engine::worker_params(std::size_t w) {
  return workers_.at(w).params;
}

std::size_t Engine::worker_iteration(std::size_t w) const {
  return workers_.at(w).iteration;
}

std::size_t Engine::worker_epoch(std::size_t w) const {
  return workers_.at(w).epoch;
}

std::size_t Engine::min_worker_iteration() const {
  std::size_t m = workers_[0].iteration;
  for (const WorkerState& ws : workers_) m = std::min(m, ws.iteration);
  return m;
}

std::size_t Engine::batches_per_epoch() const {
  return workers_[0].loader->batches_per_epoch();
}

std::size_t Engine::worker_batch(std::size_t w) const {
  return workers_.at(w).batch_size;
}

double Engine::worker_weight(std::size_t w) const {
  double total = 0.0;
  for (const WorkerState& ws : workers_) {
    total += static_cast<double>(ws.batch_size);
  }
  return static_cast<double>(workers_.at(w).batch_size) / total;
}

void Engine::set_worker_compute_overhead(std::size_t w, double fraction) {
  OSP_CHECK(fraction >= 0.0, "overhead fraction must be non-negative");
  workers_.at(w).compute_overhead = fraction;
}

void Engine::apply_global_step(std::span<const float> grad, double scale) {
  if (scale == 1.0) {
    optimizer_->step(global_params_, grad, current_lr());
    return;
  }
  scaled_grad_.assign(grad.begin(), grad.end());
  util::scale(scaled_grad_, static_cast<float>(scale));
  optimizer_->step(global_params_, scaled_grad_, current_lr());
}

void Engine::apply_global_step_blocks(std::span<const float> grad,
                                      const std::vector<bool>& block_mask) {
  OSP_CHECK(block_mask.size() == flat_->num_blocks(),
            "block mask arity mismatch");
  OSP_CHECK(grad.size() == global_params_.size(), "gradient size mismatch");
  const double lr = current_lr();
  for (std::size_t i = 0; i < block_mask.size(); ++i) {
    if (!block_mask[i]) continue;
    const nn::LayerBlockInfo& b = flat_->blocks()[i];
    optimizer_->step_range(
        std::span<float>{global_params_}.subspan(b.offset, b.numel),
        grad.subspan(b.offset, b.numel), lr, b.offset);
  }
}

double Engine::current_lr() const {
  std::size_t min_epoch = workers_[0].epoch;
  for (const WorkerState& ws : workers_) {
    min_epoch = std::min(min_epoch, ws.epoch);
  }
  return config_.lr_schedule.lr(min_epoch);
}

RunResult Engine::run() {
  OSP_CHECK(!ran_, "Engine::run is single-use");
  ran_ = true;
  sync_->attach(*this);

  next_checkpoint_iter_ = config_.checkpoint.every_iters;
  if (!config_.checkpoint.resume_from.empty()) {
    const RunCheckpoint ckpt =
        RunCheckpoint::load(config_.checkpoint.resume_from);
    restore_checkpoint(ckpt);
    // Rebuild the event queue the snapshot made empty. Setup order mirrors
    // the original run's same-time sequence order: the barrier release
    // first (in the original run the parked workers resumed the instant
    // the snapshot was taken), the static fault schedule next, pending
    // crash restarts (dynamically scheduled there, so always last among
    // equal-time events) at the end.
    sim_.schedule_at(ckpt.sim_time, [this] { release_parked(); });
    install_faults(ckpt.sim_time);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].crashed || workers_[w].restart_at < 0.0) continue;
      sim_.schedule_at(workers_[w].restart_at, [this, w] {
        maybe_checkpoint_now();
        if (halted_) return;
        restart_worker(w);
      });
    }
    for (std::size_t p = 0; p < ps_crashed_.size(); ++p) {
      if (ps_crashed_[p] == 0 || ps_restart_at_[p] < 0.0) continue;
      sim_.schedule_at(ps_restart_at_[p], [this, p] {
        maybe_checkpoint_now();
        if (halted_) return;
        restart_ps(p);
      });
    }
  } else {
    install_faults();
    for (std::size_t w = 0; w < config_.num_workers; ++w) begin_compute(w);
  }

  if (config_.record_trace) {
    // Observe every network flow for the trace: `started` stashes the
    // endpoints (resolved to node names while the route is at hand),
    // `ended` emits the FlowSpan. Both sample the in-flight-bytes counter.
    sim::Network::FlowTraceHooks hooks;
    hooks.started = [this](sim::FlowId id,
                           const std::vector<sim::LinkId>& route,
                           double begin_s, double bytes) {
      PendingFlow pf;
      pf.begin_s = begin_s;
      pf.bytes = bytes;
      pf.src = cluster_->link_node_name(route.front());
      pf.dst = cluster_->link_node_name(route.back());
      pending_flows_[id] = std::move(pf);
      trace_.add_counter(begin_s, "in_flight_bytes",
                         cluster_->network().bytes_in_flight());
    };
    hooks.ended = [this](sim::FlowId id, double end_s, bool cancelled) {
      const auto it = pending_flows_.find(id);
      if (it == pending_flows_.end()) return;
      trace_.add_flow({it->second.begin_s, end_s, std::move(it->second.src),
                       std::move(it->second.dst), it->second.bytes,
                       cancelled});
      pending_flows_.erase(it);
      trace_.add_counter(sim_.now(), "in_flight_bytes",
                         cluster_->network().bytes_in_flight());
    };
    cluster_->network().set_trace_hooks(std::move(hooks));
    trace_.add_counter(sim_.now(), "alive_workers",
                       static_cast<double>(num_alive()));
  }
  // Baseline for per-round wire accounting (a resumed run restores the
  // network's delivered-bytes counter).
  telemetry_bytes_mark_ = cluster_->network().bytes_delivered();

  while (true) {
    if (config_.max_virtual_time_s > 0.0) {
      sim_.run_until(config_.max_virtual_time_s);
    } else {
      sim_.run();
    }
    if (halted_ || !drain_pending_) break;
    if (!sim_.empty()) break;  // hit the virtual-time cap mid-drain
    // The queue starved with a drain pending: every worker is parked (or
    // done/crashed-forever) and no future fault event is left to trigger
    // the snapshot, so take it here and release the barrier.
    if (maybe_checkpoint_now()) {
      if (halted_) break;
      continue;
    }
    // The drain barrier deadlocked. After a crash a straggler can run a
    // round or two behind the pack in a barrier model, and its pending
    // round needs the parked workers' gradients to close — so the cut
    // can never go quiescent at this boundary. Skip it: release everyone
    // and re-arm the snapshot at the next cadence point.
    OSP_CHECK(std::any_of(workers_.begin(), workers_.end(),
                          [](const WorkerState& ws) { return ws.parked; }),
              "checkpoint drain stalled");
    next_checkpoint_iter_ += config_.checkpoint.every_iters;
    drain_pending_ = false;
    release_parked();
  }
  if (!halted_) maybe_evaluate(/*force=*/true);

  // Close out downtime of workers still crashed at run end.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& ws = workers_[w];
    if (!ws.crashed) continue;
    fault_stats_.worker_downtime_s += sim_.now() - ws.crashed_at;
    if (config_.record_trace) {
      trace_.add({ws.crashed_at, sim_.now(), w, ws.iteration,
                  TracePhase::kDowntime});
    }
  }
  const sim::Network& net = cluster_->network();
  fault_stats_.flows_cancelled = net.flows_cancelled();
  fault_stats_.messages_dropped = net.messages_dropped();
  fault_stats_.messages_delayed = net.messages_delayed();

  RunResult result;
  result.faults = fault_stats_;
  result.sync_name = sync_->name();
  result.workload_name = spec_->name;
  result.total_time_s = sim_.now();
  result.total_samples = samples_processed_;
  result.throughput =
      result.total_time_s > 0.0 ? samples_processed_ / result.total_time_s
                                : 0.0;
  result.best_metric = metrics_.best_metric();
  result.mean_bct_s = metrics_.bct().mean();
  result.mean_bst_s = metrics_.bst().mean();
  result.steady_bst_s = metrics_.steady_bst();
  result.p99_bst_s = metrics_.bst_percentile(0.99);
  result.curve = metrics_.curve();
  // Steady-state throughput: samples over the final quarter of the run.
  result.steady_throughput = result.throughput;
  if (result.total_time_s > 0.0 && !result.curve.empty()) {
    const double t0 = 0.75 * result.total_time_s;
    double samples_at_t0 = 0.0;
    for (const EvalPoint& p : result.curve) {
      if (p.time_s <= t0) samples_at_t0 = p.samples;
    }
    const double window = result.total_time_s - t0;
    if (window > 0.0 && samples_at_t0 > 0.0) {
      result.steady_throughput =
          (samples_processed_ - samples_at_t0) / window;
    }
  }
  result.epoch_losses = metrics_.epoch_losses();
  if (!result.curve.empty()) {
    result.final_loss = result.curve.back().loss;
  }
  if (auto hit = metrics_.first_reaching(spec_->target_metric)) {
    result.time_to_target_s = hit->time_s;
    result.iters_to_target =
        hit->samples / static_cast<double>(spec_->batch_size *
                                           config_.num_workers);
  }
  result.checkpoints_taken = checkpoints_taken_;
  result.halted_at_checkpoint = halted_;
  result.rounds = telemetry_;
  return result;
}

SyncTelemetry& Engine::telemetry_round(std::uint64_t round) {
  if (!config_.record_telemetry) {
    telemetry_scratch_ = SyncTelemetry{};
    return telemetry_scratch_;
  }
  // Amendments (OSP's late ICS corrections, catch-up retries) target recent
  // rounds, so search newest-first.
  for (auto it = telemetry_.rbegin(); it != telemetry_.rend(); ++it) {
    if (it->round == round) return *it;
  }
  SyncTelemetry rec;
  rec.round = round;
  rec.close_time_s = sim_.now();
  const double delivered = cluster_->network().bytes_delivered();
  rec.wire_bytes = delivered - telemetry_bytes_mark_;
  telemetry_bytes_mark_ = delivered;
  telemetry_.push_back(std::move(rec));
  return telemetry_.back();
}

void Engine::begin_compute(std::size_t w) {
  WorkerState& ws = workers_[w];
  if (ws.crashed) return;  // the restart path re-enters the loop
  if (ws.epoch >= config_.max_epochs) {
    ws.done = true;
    stopping_ = std::all_of(workers_.begin(), workers_.end(),
                            [](const WorkerState& s) { return s.done; });
    return;
  }
  if (should_park(w)) {
    // Checkpoint drain barrier: hold the worker at this iteration boundary
    // until the snapshot is taken (take_checkpoint releases everyone).
    ws.parked = true;
    ws.park_begin_time = sim_.now();
    drain_pending_ = true;
    // If this was the last worker the cut was waiting on, snapshot right
    // now — otherwise the drain would sit idle until the next queued
    // event (e.g. a fault scheduled minutes ahead) fires the gate.
    maybe_checkpoint_now();
    return;
  }
  if (sim_.now() < ws.pause_until) {
    // Paused between iterations: defer until the window closes (re-checked
    // there in case the pause was extended meanwhile).
    sim_.schedule_at(ws.pause_until, [this, w] { begin_compute(w); });
    return;
  }
  // Every input of this iteration's real math is determined right here:
  // the param snapshot (gradients are computed against the params as of
  // compute start — sync traffic such as OSP's ICS correction may update
  // ws.params mid-flight without affecting this gradient), the epoch, and
  // the batch index. Package them into a job and, on the async path, start
  // it on the thread pool immediately so it overlaps other workers' math
  // and the event loop; the completion event joins it in on_compute_done.
  auto job = std::make_shared<MathJob>();
  job->worker = w;
  job->epoch = ws.epoch;
  job->batch_index = ws.iteration % ws.loader->batches_per_epoch();
  job->is_qa = spec_->is_qa;
  job->params = ws.params;
  job->loader = ws.loader.get();
  ws.job = job;
  if (async_math_) {
    job->handle = pool_->submit_task([this, job] { replicas_->execute(*job); });
  }
  ws.compute_begin_time = sim_.now();
  const double t = compute_model_.batch_time(ws.batch_size,
                                             cluster_->speed_factor(w),
                                             ws.rng) *
                   (1.0 + ws.compute_overhead);
  ws.pending_charge = t;
  schedule_compute_completion(w, sim_.now() + t);
}

void Engine::schedule_compute_completion(std::size_t w, double end_time) {
  WorkerState& ws = workers_[w];
  ws.compute_pending = true;
  ws.compute_end_time = end_time;
  const std::uint64_t ce = ++ws.compute_epoch;
  sim_.schedule_at(end_time, [this, w, ce] {
    WorkerState& s = workers_[w];
    if (s.compute_epoch != ce || !s.compute_pending) return;  // cancelled
    s.compute_pending = false;
    on_compute_done(w, s.pending_charge);
  });
}

void Engine::on_compute_done(std::size_t w, double charged_time) {
  WorkerState& ws = workers_[w];
  metrics_.record_bct(charged_time);
  if (config_.record_trace) {
    trace_.add({ws.compute_begin_time, sim_.now(), w, ws.iteration,
                TracePhase::kCompute});
  }

  // Join the real math for this iteration. Async path: the job has been
  // running on the pool since begin_compute — if it is still queued the
  // join steals and runs it right here, so the wait is never longer than
  // one job. Serial path: execute it now, exactly where the seed did. All
  // side effects below stay on the event loop, in event order, so the two
  // paths (and any thread count) produce bit-identical results.
  OSP_CHECK(ws.job != nullptr, "compute completion without a math job");
  const std::shared_ptr<MathJob> job = std::move(ws.job);
  if (async_math_) {
    job->handle.join();
  } else {
    replicas_->execute(*job);
  }
  std::swap(ws.grad, job->grad);

  ws.epoch_loss_sum += job->loss;
  ws.epoch_loss_count += 1;
  ws.grad_ready_time = sim_.now();
  samples_processed_ += static_cast<double>(job->samples);
  maybe_evaluate(/*force=*/false);

  sync_->on_gradient_ready(w);
}

void Engine::finish_sync(std::size_t w) {
  WorkerState& ws = workers_[w];
  if (ws.crashed) return;  // stale callback; the restart path owns `w`
  metrics_.record_bst(sim_.now() - ws.grad_ready_time);
  if (config_.record_trace) {
    // OSP reports kRs here — its blocking stage — so RS is distinguishable
    // from a generic barrier in the trace; ICS spans are model-emitted.
    trace_.add({ws.grad_ready_time, sim_.now(), w, ws.iteration,
                sync_->blocking_phase()});
  }
  ws.iteration += 1;
  if (ws.iteration % ws.loader->batches_per_epoch() == 0) {
    complete_epoch(w);
    ws.epoch += 1;
  }
  begin_compute(w);
}

void Engine::complete_epoch(std::size_t w) {
  WorkerState& ws = workers_[w];
  const std::size_t e = ws.epoch;  // 0-based epoch just completed
  if (epoch_done_counts_.size() <= e) {
    epoch_done_counts_.resize(e + 1, 0);
    epoch_loss_sums_.resize(e + 1, 0.0);
  }
  const double mean_loss =
      ws.epoch_loss_count > 0
          ? ws.epoch_loss_sum / static_cast<double>(ws.epoch_loss_count)
          : 0.0;
  ws.epoch_loss_sum = 0.0;
  ws.epoch_loss_count = 0;
  epoch_loss_sums_[e] += mean_loss;
  epoch_done_counts_[e] += 1;
  if (epoch_done_counts_[e] == config_.num_workers) {
    const double cluster_loss =
        epoch_loss_sums_[e] / static_cast<double>(config_.num_workers);
    metrics_.record_epoch_loss(cluster_loss);
    sync_->on_epoch_complete(e + 1, cluster_loss);  // 1-based for Alg. 1
  }
}

bool Engine::worker_alive(std::size_t w) const {
  return !workers_.at(w).crashed;
}

std::size_t Engine::num_alive() const { return alive_count_; }

void Engine::cancel_math_job(std::size_t w) {
  WorkerState& ws = workers_[w];
  if (ws.job == nullptr) return;
  ws.job->cancelled.store(true, std::memory_order_relaxed);
  if (async_math_ && !ws.job->handle.ready()) {
    // Still owed a join before teardown; drop finished strays first so the
    // list stays bounded by pool concurrency, not crash count.
    std::erase_if(abandoned_jobs_, [](const std::shared_ptr<MathJob>& j) {
      return j->handle.ready();
    });
    abandoned_jobs_.push_back(ws.job);
  }
  ws.job.reset();
}

void Engine::worker_transfer(std::size_t owner,
                             std::vector<sim::LinkId> route, double bytes,
                             std::function<void()> done) {
  OSP_CHECK(done != nullptr, "worker transfer needs a completion");
  WorkerState& ws = workers_.at(owner);
  if (ws.crashed) return;
  const double overhead = config_.cluster.transfer_overhead_s;
  if (route.empty()) {
    // Loopback (co-located PS): not a network flow, so not cancellable —
    // guard at delivery instead.
    loopback_transfer(overhead, [this, owner, done = std::move(done)] {
      if (workers_[owner].crashed) return;
      done();
    });
    return;
  }
  // The flow id is only known after start_flow returns; box it so the
  // completion callback can deregister itself.
  auto id_box = std::make_shared<sim::FlowId>(0);
  const sim::FlowId id = cluster_->network().start_flow(
      std::move(route), bytes,
      [this, owner, id_box, done = std::move(done)] {
        WorkerState& s = workers_[owner];
        std::erase(s.flows, *id_box);
        if (!s.crashed) done();
        maybe_checkpoint_now();
      },
      overhead);
  *id_box = id;
  ws.flows.push_back(id);
}

void Engine::loopback_transfer(double delay, std::function<void()> done) {
  OSP_CHECK(delay >= 0.0, "negative loopback delay");
  OSP_CHECK(done != nullptr, "loopback transfer needs a completion");
  ++loopback_pending_;
  sim_.schedule(delay, [this, done = std::move(done)] {
    --loopback_pending_;
    done();
    maybe_checkpoint_now();
  });
}

void Engine::install_faults(double resume_time) {
  const bool resuming = resume_time >= 0.0;
  sim::Network& net = cluster_->network();
  // On resume the injection RNG mid-stream state was already restored with
  // the network; reseeding would rewind it.
  if (!resuming) net.set_injection_seed(config_.faults.seed());
  // Every event is gated on the pending-drain check: with all workers
  // parked the queue holds only future fault events, so the first one to
  // fire takes the snapshot — *before* its own effect, which therefore
  // replays on resume. Events already executed before the snapshot are
  // filtered out here; an event at exactly the snapshot time fired after
  // it (its gate is where the snapshot happened), so `>=` keeps it.
  auto gated = [this](const sim::FaultEvent& ev) {
    sim_.schedule_at(ev.time, [this, ev] {
      maybe_checkpoint_now();
      if (halted_) return;
      apply_fault(ev);
    });
  };
  for (const sim::FaultEvent& ev : config_.faults.events()) {
    const bool start_pending = !resuming || ev.time >= resume_time;
    const bool end_pending =
        !resuming || ev.time + ev.duration >= resume_time;
    switch (ev.kind) {
      case sim::FaultKind::kWorkerPause:
      case sim::FaultKind::kWorkerCrash:
        OSP_CHECK(ev.target < config_.num_workers,
                  "fault worker id out of range");
        if (start_pending) gated(ev);
        break;
      case sim::FaultKind::kPsCrash:
        OSP_CHECK(ev.target < ps_busy_until_.size(),
                  "fault ps id out of range");
        if (start_pending) gated(ev);
        break;
      case sim::FaultKind::kLinkDown:
        OSP_CHECK(ev.target < net.num_links(), "fault link id out of range");
        if (start_pending) gated(ev);
        if (end_pending) {
          sim_.schedule_at(ev.time + ev.duration, [this, ev] {
            maybe_checkpoint_now();
            if (halted_) return;
            cluster_->network().set_link_up(ev.target, true);
          });
        }
        break;
      case sim::FaultKind::kLinkDegrade:
        OSP_CHECK(ev.target < net.num_links(), "fault link id out of range");
        if (start_pending) gated(ev);
        if (end_pending) {
          sim_.schedule_at(ev.time + ev.duration, [this, ev] {
            maybe_checkpoint_now();
            if (halted_) return;
            cluster_->network().set_link_degradation(ev.target, 1.0, 0.0);
          });
        }
        break;
      case sim::FaultKind::kMessageDelay:
      case sim::FaultKind::kMessageDrop:
        OSP_CHECK(ev.target == sim::kAllLinks || ev.target < net.num_links(),
                  "injection link id out of range");
        // Windows are passive state, not events: always reinstall.
        net.add_injection_window(ev.time, ev.time + ev.duration, ev.target,
                                 ev.delay_s, ev.drop_prob);
        break;
    }
  }
}

void Engine::apply_fault(const sim::FaultEvent& ev) {
  switch (ev.kind) {
    case sim::FaultKind::kWorkerPause:
      pause_worker(ev.target, ev.duration);
      break;
    case sim::FaultKind::kWorkerCrash:
      crash_worker(ev.target, ev.duration);
      break;
    case sim::FaultKind::kPsCrash:
      crash_ps(ev.target, ev.duration);
      break;
    case sim::FaultKind::kLinkDown:
      ++fault_stats_.link_down_events;
      cluster_->network().set_link_up(ev.target, false);
      break;
    case sim::FaultKind::kLinkDegrade:
      ++fault_stats_.link_degrade_events;
      cluster_->network().set_link_degradation(ev.target,
                                               ev.bandwidth_factor,
                                               ev.extra_loss_rate);
      break;
    default:
      break;  // message windows are installed up-front, not event-driven
  }
}

void Engine::pause_worker(std::size_t w, double duration) {
  WorkerState& ws = workers_[w];
  if (ws.crashed || ws.done) return;
  ++fault_stats_.worker_pauses;
  fault_stats_.worker_downtime_s += duration;
  const double until = std::max(ws.pause_until, sim_.now() + duration);
  ws.pause_until = until;
  if (ws.compute_pending) {
    // Stretch the in-flight iteration by the pause window; the charged
    // (pure-compute) BCT is unchanged.
    const double remaining = ws.compute_end_time - sim_.now();
    schedule_compute_completion(w, until + remaining);
  }
  if (config_.record_trace) {
    trace_.add({sim_.now(), until, w, ws.iteration, TracePhase::kDowntime});
  }
}

void Engine::crash_worker(std::size_t w, double restart_after) {
  WorkerState& ws = workers_[w];
  if (ws.crashed || ws.done) return;
  ws.crashed = true;
  ws.crashed_at = sim_.now();
  if (ws.parked && config_.record_trace && sim_.now() > ws.park_begin_time) {
    trace_.add({ws.park_begin_time, sim_.now(), w, ws.iteration,
                TracePhase::kParkWait});
  }
  ws.parked = false;  // a dead worker cannot hold the drain barrier
  ++fault_stats_.worker_crashes;
  --alive_count_;
  if (config_.record_trace) {
    trace_.add_counter(sim_.now(), "alive_workers",
                       static_cast<double>(num_alive()));
  }
  ++ws.compute_epoch;  // cancels the in-flight compute completion
  ws.compute_pending = false;
  cancel_math_job(w);  // its gradient will never be consumed
  for (sim::FlowId f : ws.flows) {
    cluster_->network().cancel_flow(f);
  }
  ws.flows.clear();
  sync_->on_worker_crashed(w);
  if (restart_after >= 0.0) {
    // Gated like fault-schedule events (see install_faults): a pending
    // drain snapshots before the restart runs, and the restart time is
    // checkpointed so a resumed run can re-schedule it.
    ws.restart_at = sim_.now() + restart_after;
    sim_.schedule(restart_after, [this, w] {
      maybe_checkpoint_now();
      if (halted_) return;
      restart_worker(w);
    });
  }
}

void Engine::restart_worker(std::size_t w) {
  WorkerState& ws = workers_[w];
  ws.restart_at = -1.0;
  if (!ws.crashed) return;
  fault_stats_.worker_downtime_s += sim_.now() - ws.crashed_at;
  ++fault_stats_.worker_restarts;
  if (config_.record_trace) {
    trace_.add({ws.crashed_at, sim_.now(), w, ws.iteration,
                TracePhase::kDowntime});
  }
  ws.crashed = false;
  ++alive_count_;
  if (config_.record_trace) {
    trace_.add_counter(sim_.now(), "alive_workers",
                       static_cast<double>(num_alive()));
  }
  if (config_.checkpoint.restore_crashed_from_checkpoint && last_checkpoint_) {
    // Second recovery path: read the replica back from the latest run
    // checkpoint on local disk instead of pulling the full model from the
    // PS over the (possibly congested) network. The replica is as of the
    // checkpoint iteration; the sync model's ordinary catch-up machinery
    // brings the worker forward.
    ++fault_stats_.checkpoint_restores;
    auto ckpt = last_checkpoint_;
    const double rate =
        std::max(config_.checkpoint.restore_read_bytes_per_s, 1.0);
    loopback_transfer(model_bytes() / rate, [this, w, ckpt] {
      WorkerState& s = workers_[w];
      if (s.crashed) return;  // re-crashed during the disk read
      s.params = ckpt->workers[w].params;
      sync_->on_worker_restarted(w);
      begin_compute(w);
    });
    return;
  }
  // Local state died with the process: re-pull the global model, then
  // rejoin the training loop (redoing the batch the crash cancelled).
  worker_transfer(w, cluster_->route_from_ps(w), model_bytes(),
                  [this, w] {
                    WorkerState& s = workers_[w];
                    s.params = global_params_;
                    sync_->on_worker_restarted(w);
                    begin_compute(w);
                  });
}

bool Engine::ps_alive(std::size_t ps) const {
  OSP_CHECK(ps < ps_crashed_.size(), "ps id out of range");
  return ps_crashed_[ps] == 0;
}

void Engine::crash_ps(std::size_t ps, double restart_after) {
  OSP_CHECK(ps < ps_busy_until_.size(), "ps id out of range");
  if (ps_crashed_[ps] != 0) return;
  ps_crashed_[ps] = 1;
  ps_crashed_at_[ps] = sim_.now();
  ++ps_crashed_count_;
  ++fault_stats_.ps_crashes;
  // The serial update queue dies with the host: bump the epoch so every
  // already-scheduled ps_submit completion no-ops, and clear the busy
  // horizon so the drain barrier does not wait on phantom work.
  ++ps_epoch_[ps];
  ps_busy_until_[ps] = sim_.now();
  if (config_.record_trace) {
    trace_.add_counter(
        sim_.now(), "alive_ps",
        static_cast<double>(ps_crashed_.size() - ps_crashed_count_));
  }
  sync_->on_ps_crashed(ps);
  if (restart_after >= 0.0) {
    // Gated like fault-schedule events (see install_faults); the restart
    // time is checkpointed so a resumed run can re-schedule it.
    ps_restart_at_[ps] = sim_.now() + restart_after;
    sim_.schedule(restart_after, [this, ps] {
      maybe_checkpoint_now();
      if (halted_) return;
      restart_ps(ps);
    });
  }
}

void Engine::restart_ps(std::size_t ps) {
  ps_restart_at_[ps] = -1.0;
  if (ps_crashed_[ps] == 0) return;
  ++fault_stats_.ps_restarts;
  ps_crashed_[ps] = 0;
  --ps_crashed_count_;
  if (config_.record_trace) {
    trace_.add_counter(
        sim_.now(), "alive_ps",
        static_cast<double>(ps_crashed_.size() - ps_crashed_count_));
  }
  sync_->on_ps_restarted(ps);
}

bool Engine::should_park(std::size_t w) const {
  return next_checkpoint_iter_ > 0 && !halted_ &&
         workers_[w].iteration >= next_checkpoint_iter_;
}

bool Engine::all_parked() const {
  return std::all_of(workers_.begin(), workers_.end(),
                     [](const WorkerState& ws) {
                       return ws.parked || ws.done || ws.crashed;
                     });
}

bool Engine::quiescent() const {
  if (cluster_->network().active_flows() != 0) return false;
  if (loopback_pending_ != 0) return false;
  for (double t : ps_busy_until_) {
    if (t > sim_.now()) return false;
  }
  for (const WorkerState& ws : workers_) {
    if (!ws.flows.empty()) return false;
  }
  return sync_->drained();
}

bool Engine::maybe_checkpoint_now() {
  if (!drain_pending_ || halted_) return false;
  if (!all_parked() || !quiescent()) return false;
  take_checkpoint();
  return true;
}

void Engine::take_checkpoint() {
  ++checkpoints_taken_;
  last_checkpoint_ =
      std::make_shared<const RunCheckpoint>(make_checkpoint());
  if (!config_.checkpoint.path.empty()) {
    last_checkpoint_->save(config_.checkpoint.path);
  }
  drain_pending_ = false;
  next_checkpoint_iter_ += config_.checkpoint.every_iters;
  if (config_.checkpoint.halt_after_checkpoint) {
    // Model a preempted job: the run stops here; a resumed run picks up
    // from the file just written.
    halted_ = true;
    sim_.clear();
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      WorkerState& ws = workers_[w];
      if (ws.parked && config_.record_trace &&
          sim_.now() > ws.park_begin_time) {
        trace_.add({ws.park_begin_time, sim_.now(), w, ws.iteration,
                    TracePhase::kParkWait});
      }
      ws.parked = false;
    }
    return;
  }
  release_parked();
}

void Engine::release_parked() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& ws = workers_[w];
    if (!ws.parked) continue;
    if (config_.record_trace && sim_.now() > ws.park_begin_time) {
      trace_.add({ws.park_begin_time, sim_.now(), w, ws.iteration,
                  TracePhase::kParkWait});
    }
    ws.parked = false;
    begin_compute(w);
  }
}

RunCheckpoint Engine::make_checkpoint() const {
  RunCheckpoint c;
  c.workload_name = spec_->name;
  c.sync_name = sync_->name();
  c.num_workers = config_.num_workers;
  c.max_epochs = config_.max_epochs;
  c.seed = config_.seed;
  c.num_ps = ps_busy_until_.size();
  c.total_params = flat_->total_params();
  c.num_blocks = flat_->num_blocks();
  c.batches_per_epoch = workers_[0].loader->batches_per_epoch();
  c.momentum = config_.momentum;

  c.sim_time = sim_.now();
  c.checkpoint_iter = next_checkpoint_iter_;
  c.checkpoints_taken = checkpoints_taken_;

  c.global_params = global_params_;
  c.optimizer_velocity.assign(optimizer_->velocity().begin(),
                              optimizer_->velocity().end());
  c.samples_processed = samples_processed_;
  c.next_eval_at_samples = next_eval_at_samples_;
  c.epoch_done_counts = epoch_done_counts_;
  c.epoch_loss_sums = epoch_loss_sums_;
  c.ps_busy_until = ps_busy_until_;
  c.ps_crashed.assign(ps_crashed_.begin(), ps_crashed_.end());
  c.ps_crashed_at = ps_crashed_at_;
  c.ps_restart_at = ps_restart_at_;
  c.fault_stats = fault_stats_;

  c.bct = metrics_.bct();
  c.bst = metrics_.bst();
  c.bst_samples = metrics_.bst_samples();
  c.curve = metrics_.curve();
  c.epoch_losses = metrics_.epoch_losses();

  {
    util::serde::Writer w;
    cluster_->network().save_state(w);
    c.network_state = w.take();
  }
  c.workers.reserve(workers_.size());
  for (const WorkerState& ws : workers_) {
    WorkerCheckpoint wc;
    wc.params = ws.params;
    wc.rng = ws.rng.state();
    wc.iteration = ws.iteration;
    wc.epoch = ws.epoch;
    wc.epoch_loss_sum = ws.epoch_loss_sum;
    wc.epoch_loss_count = ws.epoch_loss_count;
    wc.done = ws.done;
    wc.parked = ws.parked;
    wc.crashed = ws.crashed;
    wc.crashed_at = ws.crashed_at;
    wc.pause_until = ws.pause_until;
    wc.restart_at = ws.restart_at;
    c.workers.push_back(std::move(wc));
  }
  {
    util::serde::Writer w;
    sync_->save_state(w);
    c.sync_state = w.take();
  }
  return c;
}

void Engine::restore_checkpoint(const RunCheckpoint& ckpt) {
  OSP_CHECK(ckpt.workload_name == spec_->name,
            "checkpoint is for a different workload");
  OSP_CHECK(ckpt.sync_name == sync_->name(),
            "checkpoint is for a different sync model");
  OSP_CHECK(ckpt.num_workers == config_.num_workers,
            "checkpoint worker count mismatch");
  OSP_CHECK(ckpt.max_epochs == config_.max_epochs,
            "checkpoint epoch budget mismatch");
  OSP_CHECK(ckpt.seed == config_.seed, "checkpoint seed mismatch");
  OSP_CHECK(ckpt.num_ps == ps_busy_until_.size(),
            "checkpoint PS count mismatch");
  OSP_CHECK(ckpt.total_params == flat_->total_params(),
            "checkpoint model size mismatch");
  OSP_CHECK(ckpt.num_blocks == flat_->num_blocks(),
            "checkpoint block layout mismatch");
  OSP_CHECK(ckpt.batches_per_epoch == workers_[0].loader->batches_per_epoch(),
            "checkpoint dataset sharding mismatch");
  OSP_CHECK(ckpt.momentum == config_.momentum,
            "checkpoint optimizer config mismatch");
  OSP_CHECK(ckpt.global_params.size() == global_params_.size(),
            "checkpoint parameter vector mismatch");

  global_params_ = ckpt.global_params;
  optimizer_->set_velocity(ckpt.optimizer_velocity);
  samples_processed_ = ckpt.samples_processed;
  next_eval_at_samples_ = ckpt.next_eval_at_samples;
  epoch_done_counts_ = ckpt.epoch_done_counts;
  epoch_loss_sums_ = ckpt.epoch_loss_sums;
  ps_busy_until_ = ckpt.ps_busy_until;
  OSP_CHECK(ckpt.ps_crashed.size() == ps_crashed_.size(),
            "checkpoint PS fault state mismatch");
  ps_crashed_.assign(ckpt.ps_crashed.begin(), ckpt.ps_crashed.end());
  ps_crashed_at_ = ckpt.ps_crashed_at;
  ps_restart_at_ = ckpt.ps_restart_at;
  ps_crashed_count_ = static_cast<std::size_t>(
      std::count(ps_crashed_.begin(), ps_crashed_.end(),
                 std::uint8_t{1}));
  fault_stats_ = ckpt.fault_stats;
  metrics_.restore(ckpt.bct, ckpt.bst, ckpt.bst_samples, ckpt.curve,
                   ckpt.epoch_losses);

  {
    util::serde::Reader r(ckpt.network_state);
    cluster_->network().load_state(r);
    r.expect_done();
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& ws = workers_[w];
    const WorkerCheckpoint& wc = ckpt.workers[w];
    OSP_CHECK(wc.params.size() == ws.params.size(),
              "checkpoint replica size mismatch");
    ws.params = wc.params;
    ws.rng.set_state(wc.rng);
    ws.iteration = wc.iteration;
    ws.epoch = wc.epoch;
    ws.epoch_loss_sum = wc.epoch_loss_sum;
    ws.epoch_loss_count = wc.epoch_loss_count;
    ws.done = wc.done;
    ws.parked = wc.parked;
    ws.crashed = wc.crashed;
    ws.crashed_at = wc.crashed_at;
    ws.pause_until = wc.pause_until;
    ws.restart_at = wc.restart_at;
  }
  alive_count_ = static_cast<std::size_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const WorkerState& ws) { return !ws.crashed; }));
  {
    util::serde::Reader r(ckpt.sync_state);
    sync_->load_state(r);
    r.expect_done();
  }

  checkpoints_taken_ = ckpt.checkpoints_taken;
  last_checkpoint_ = std::make_shared<const RunCheckpoint>(ckpt);
  next_checkpoint_iter_ =
      config_.checkpoint.every_iters > 0
          ? static_cast<std::size_t>(ckpt.checkpoint_iter) +
                config_.checkpoint.every_iters
          : 0;
  stopping_ = std::all_of(workers_.begin(), workers_.end(),
                          [](const WorkerState& ws) { return ws.done; });
}

void Engine::maybe_evaluate(bool force) {
  if (force) {
    evaluate_now();
    return;
  }
  if (samples_processed_ < next_eval_at_samples_) return;
  while (next_eval_at_samples_ <= samples_processed_) {
    next_eval_at_samples_ += static_cast<double>(eval_stride_);
  }
  evaluate_now();
}

void Engine::evaluate_now() {
  // Evaluate the *global* (PS) parameters — the model a practitioner would
  // checkpoint.
  flat_->scatter_params(global_params_);
  const data::Dataset& ds = *spec_->eval;
  std::size_t limit = ds.size();
  if (config_.eval_max_examples > 0) {
    limit = std::min(limit, config_.eval_max_examples);
  }
  const std::size_t bs = spec_->batch_size;
  double metric_sum = 0.0;
  double loss_sum = 0.0;
  std::size_t batches = 0;
  std::vector<std::size_t> idx(bs);
  for (std::size_t start = 0; start + bs <= limit; start += bs) {
    std::iota(idx.begin(), idx.end(), start);
    const data::Batch batch = ds.make_batch(idx);
    const tensor::Tensor logits =
        scratch_model_.forward(batch.inputs, false);
    if (spec_->is_qa) {
      metric_sum += nn::batch_span_f1(logits, batch.starts, batch.ends);
      loss_sum +=
          nn::span_cross_entropy(logits, batch.starts, batch.ends).loss;
    } else {
      metric_sum += nn::top1_accuracy(logits, batch.labels);
      loss_sum += nn::softmax_cross_entropy(logits, batch.labels).loss;
    }
    ++batches;
  }
  OSP_CHECK(batches > 0, "eval set smaller than one batch");
  EvalPoint point;
  point.time_s = sim_.now();
  point.samples = samples_processed_;
  point.metric = metric_sum / static_cast<double>(batches);
  point.loss = loss_sum / static_cast<double>(batches);
  metrics_.record_eval(point);
}

}  // namespace osp::runtime
