#include "runtime/worker_math.hpp"

#include "nn/loss.hpp"
#include "util/check.hpp"

namespace osp::runtime {

ReplicaPool::ReplicaPool(std::function<nn::Sequential(std::uint64_t)> build,
                         std::uint64_t seed)
    : build_(std::move(build)), seed_(seed) {
  OSP_CHECK(build_ != nullptr, "replica pool needs a model builder");
}

ReplicaPool::~ReplicaPool() = default;

std::unique_ptr<ReplicaPool::Replica> ReplicaPool::acquire() {
  {
    std::scoped_lock lock(mu_);
    if (!free_.empty()) {
      auto r = std::move(free_.back());
      free_.pop_back();
      return r;
    }
    ++built_;
  }
  // Build outside the lock: model construction is the expensive part and
  // the builder is a pure function of the seed.
  auto r = std::make_unique<Replica>();
  r->model = build_(seed_);
  r->flat = std::make_unique<nn::FlatModel>(r->model);
  return r;
}

void ReplicaPool::release(std::unique_ptr<Replica> r) {
  std::scoped_lock lock(mu_);
  free_.push_back(std::move(r));
}

std::size_t ReplicaPool::replicas_built() const {
  std::scoped_lock lock(mu_);
  return built_;
}

void ReplicaPool::execute(MathJob& job) {
  if (job.cancelled.load(std::memory_order_relaxed)) return;
  OSP_CHECK(job.loader != nullptr, "math job has no loader");
  std::unique_ptr<Replica> r = acquire();

  const data::Batch batch = job.loader->batch(job.epoch, job.batch_index);
  r->flat->scatter_params(job.params);
  r->model.zero_grad();
  const tensor::Tensor logits = r->model.forward(batch.inputs, true);
  const nn::LossResult loss =
      job.is_qa ? nn::span_cross_entropy(logits, batch.starts, batch.ends)
                : nn::softmax_cross_entropy(logits, batch.labels);
  r->model.backward(loss.grad_logits);
  job.grad.resize(r->flat->total_params());
  r->flat->gather_grads(job.grad);
  job.loss = loss.loss;
  job.samples = batch.size();

  release(std::move(r));
}

}  // namespace osp::runtime
