// Workload profiles pairing a *proxy* trainable task with the *real* model's
// timing metadata.
//
// The sync algorithms see gradients from the proxy model (small enough to
// train on one box) but communication sizes and compute times are scaled to
// the real model the paper trained (ResNet50, VGG16, InceptionV3, ResNet101,
// BERTbase): a layer covering 10 % of the proxy's parameters contributes
// 10 % of the real model's bytes on the wire. This keeps the
// compute:communication ratio — the quantity every throughput experiment
// depends on — faithful to the testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"

namespace osp::runtime {

struct WorkloadSpec {
  std::string name;          ///< e.g. "ResNet50/CIFAR10"
  std::string model_name;    ///< paper model whose metadata we use
  std::string dataset_name;

  // --- timing metadata of the real model ---
  double real_param_bytes = 0.0;   ///< 4·(parameter count)
  double flops_per_sample = 0.0;   ///< FP+BP FLOPs per sample
  std::size_t batch_size = 64;
  /// Worker-side extra compute when it co-hosts the PS (GIB calc, §5.4);
  /// calibrated from the paper's Figure 9 (3 %–8 %).
  double gib_overhead_fraction = 0.05;

  // --- proxy trainable task ---
  /// Builds a fresh proxy model seeded deterministically.
  std::function<nn::Sequential(std::uint64_t seed)> build_model;
  std::shared_ptr<const data::Dataset> train;
  std::shared_ptr<const data::Dataset> eval;
  bool is_qa = false;         ///< F1 metric instead of top-1 accuracy
  double target_metric = 0.9; ///< convergence threshold for iters-to-target
  std::string throughput_unit = "samples/s";
};

}  // namespace osp::runtime
