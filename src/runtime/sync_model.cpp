#include "runtime/sync_model.hpp"

#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"

namespace osp::runtime {

SyncTelemetry& SyncModel::record_full_round(std::uint64_t round,
                                            std::size_t contributors) {
  Engine& e = eng();
  SyncTelemetry& rec = e.telemetry_round(round);
  rec.close_time_s = e.sim().now();
  rec.contributors = contributors;
  rec.gib_important = e.num_blocks();
  rec.gib_unimportant = 0;
  rec.important_bytes = e.model_bytes();
  rec.unimportant_bytes = 0.0;
  return rec;
}

}  // namespace osp::runtime
