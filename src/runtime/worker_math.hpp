// The batch-parallel worker-math pipeline: per-worker FP+BP as pure,
// cancelable jobs over a pool of model replicas.
//
// At begin_compute(w) every input of worker w's real math is already
// determined — the parameter snapshot (gradients are computed against the
// params as of compute start, §4.2), the epoch, and the batch index — so
// the engine packages them into a MathJob and enqueues it on the thread
// pool immediately. The job is *pure*: it reads only its own input copies
// plus immutable shared state (the dataset is generative and const, the
// loader's order cache is internally locked), and writes only its own
// output fields. Multiple workers' math therefore overlaps in wall-clock
// while the engine's virtual-time event loop stays single-threaded: the
// compute-completion event joins the job and applies every side effect
// (metrics, samples_processed_, eval triggers, sync callbacks, trace
// spans) in exact event order. RunResult is bit-identical to the serial
// path at any OSP_NUM_THREADS because the tensor kernels are bit-identical
// across thread counts and nothing observable happens off the event loop.
//
// Cancellation contract: a crash (or engine teardown) flips `cancelled`
// and abandons the job — if it has not started, the claim CAS makes it a
// no-op; if it is mid-flight it finishes writing its own buffers, which
// nobody reads. The engine joins abandoned jobs before destroying the
// replicas and loaders they reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "data/loader.hpp"
#include "nn/registry.hpp"
#include "nn/sequential.hpp"
#include "util/thread_pool.hpp"

namespace osp::runtime {

/// One worker iteration's real FP+BP. Inputs are frozen at submission;
/// outputs are written by whichever thread executes the job and read by
/// the engine strictly after joining `handle`.
struct MathJob {
  // ---- inputs (immutable once submitted) ----
  std::size_t worker = 0;
  std::size_t epoch = 0;
  std::size_t batch_index = 0;
  bool is_qa = false;
  /// Parameter snapshot the gradient is computed against.
  std::vector<float> params;
  /// The owning worker's loader (outlives the job; thread-safe batch()).
  const data::ShardLoader* loader = nullptr;

  // ---- outputs (valid after handle.join()) ----
  std::vector<float> grad;
  double loss = 0.0;
  std::size_t samples = 0;

  // ---- control ----
  /// Set by the engine on crash/teardown; an unstarted job then skips its
  /// math entirely (samples stays 0).
  std::atomic<bool> cancelled{false};
  util::TaskHandle handle;
};

/// A pool of (Sequential, FlatModel) replicas for concurrent FP+BP.
/// Replicas are built lazily on first demand, so a serial run pays for
/// exactly one and an N-thread run for at most N+1 (the +1 covers a
/// stolen join executing on the event-loop thread while every pool worker
/// holds one). All replicas come from the same deterministic builder, so
/// which replica executes a job never affects its outputs.
class ReplicaPool {
 public:
  ReplicaPool(std::function<nn::Sequential(std::uint64_t)> build,
              std::uint64_t seed);
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Execute `job`'s FP+BP on a free replica: materialize the batch,
  /// scatter the snapshot, forward/backward, gather the gradient. Honors
  /// job.cancelled (checked once, up front).
  void execute(MathJob& job);

  /// Replicas built so far (observability: 1 on the serial path, up to
  /// pool-threads + 1 under full fan-out).
  [[nodiscard]] std::size_t replicas_built() const;

 private:
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<nn::FlatModel> flat;
  };

  [[nodiscard]] std::unique_ptr<Replica> acquire();
  void release(std::unique_ptr<Replica> r);

  std::function<nn::Sequential(std::uint64_t)> build_;
  std::uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Replica>> free_;
  std::size_t built_ = 0;
};

}  // namespace osp::runtime
