// Per-run metrics: the five quantities the paper's evaluation reports
// (§5.1.4) — throughput, best metric (top-1/F1), iterations-to-target,
// batch synchronization time (BST), and the time-to-accuracy curve — plus
// batch computation time (BCT) for the co-located-PS experiment (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/telemetry.hpp"
#include "sim/faults.hpp"
#include "util/stats.hpp"

namespace osp::runtime {

struct EvalPoint {
  double time_s = 0.0;        ///< virtual time of the evaluation
  double samples = 0.0;       ///< cumulative samples processed
  double metric = 0.0;        ///< top-1 accuracy or F1
  double loss = 0.0;          ///< eval loss
};

class MetricsRecorder {
 public:
  void record_bct(double seconds) { bct_.add(seconds); }
  void record_bst(double seconds) {
    bst_.add(seconds);
    bst_samples_.push_back(seconds);
  }
  void record_eval(const EvalPoint& point) { curve_.push_back(point); }
  void record_epoch_loss(double loss) { epoch_losses_.push_back(loss); }

  [[nodiscard]] const util::OnlineStats& bct() const { return bct_; }
  [[nodiscard]] const util::OnlineStats& bst() const { return bst_; }
  [[nodiscard]] double bst_percentile(double q) const;

  /// Mean BST over the final quarter of iterations — the steady-state
  /// value once Algorithm 1's budget has ramped (OSP's early iterations
  /// intentionally behave like BSP, which dominates the overall mean on
  /// short runs).
  [[nodiscard]] double steady_bst() const;
  [[nodiscard]] const std::vector<EvalPoint>& curve() const { return curve_; }
  [[nodiscard]] const std::vector<double>& epoch_losses() const {
    return epoch_losses_;
  }

  /// Highest metric seen on the curve (0 when never evaluated).
  [[nodiscard]] double best_metric() const;

  /// First eval point at or above `target`, if any.
  [[nodiscard]] std::optional<EvalPoint> first_reaching(double target) const;

  [[nodiscard]] const std::vector<double>& bst_samples() const {
    return bst_samples_;
  }

  /// Replace the full recorder state from a checkpoint.
  void restore(util::OnlineStats bct, util::OnlineStats bst,
               std::vector<double> bst_samples, std::vector<EvalPoint> curve,
               std::vector<double> epoch_losses) {
    bct_ = bct;
    bst_ = bst;
    bst_samples_ = std::move(bst_samples);
    curve_ = std::move(curve);
    epoch_losses_ = std::move(epoch_losses);
  }

 private:
  util::OnlineStats bct_;
  util::OnlineStats bst_;
  std::vector<double> bst_samples_;
  std::vector<EvalPoint> curve_;
  std::vector<double> epoch_losses_;
};

/// Summary of one training run, consumed by the benches.
struct RunResult {
  std::string sync_name;
  std::string workload_name;
  double total_time_s = 0.0;
  double total_samples = 0.0;
  double throughput = 0.0;       ///< samples per virtual second
  double best_metric = 0.0;
  double final_loss = 0.0;
  double mean_bct_s = 0.0;
  double mean_bst_s = 0.0;
  double steady_bst_s = 0.0;      ///< mean BST over the final quarter
  double p99_bst_s = 0.0;
  /// Throughput over the final quarter of virtual time (post-ramp).
  double steady_throughput = 0.0;
  /// Global iterations = samples / (batch·workers); counted at the first
  /// eval point reaching the workload's target metric.
  std::optional<double> iters_to_target;
  std::optional<double> time_to_target_s;
  std::vector<EvalPoint> curve;
  std::vector<double> epoch_losses;
  /// Fault accounting: crashes, downtime, cancelled flows, timed-out
  /// rounds, … All-zero for a run with an empty FaultSchedule.
  sim::FaultStats faults;
  /// Checkpoints taken during this run (including any the run was resumed
  /// from, so an interrupted+resumed pair reports the same count as an
  /// uninterrupted run).
  std::uint64_t checkpoints_taken = 0;
  /// True when the run stopped at a checkpoint barrier instead of training
  /// to completion (CheckpointPolicy::halt_after_checkpoint).
  bool halted_at_checkpoint = false;
  /// Per-round sync telemetry (EngineConfig::record_telemetry); empty when
  /// telemetry is disabled. Dump with write_telemetry_jsonl().
  std::vector<SyncTelemetry> rounds;
};

}  // namespace osp::runtime
