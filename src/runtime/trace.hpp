// Execution-trace recording: per-worker phase spans, per-flow network
// spans, and counter tracks, all in virtual time.
//
// When EngineConfig::record_trace is set, the engine records one span per
// phase per iteration plus one span per network flow; the trace can be
// exported as CSV or in the Chrome tracing JSON format (open
// chrome://tracing or https://ui.perfetto.dev and load the file to see the
// overlap structure — OSP's ICS visibly riding the compute spans is the
// paper's Figure 4, reconstructed from a run).
//
// Phase taxonomy:
//   compute    FP+BP of one batch
//   sync       generic blocking synchronization (BSP barrier, ASP round
//              trip, …) — the span from gradient-ready to finish_sync
//   rs         OSP's Routine Synchronization: the *blocking* stage (push of
//              the important blocks + wait for the PS response)
//   ics        OSP's In-Computation Synchronization: the unimportant bytes
//              travelling while the next iteration computes (rendered on a
//              per-worker side-track so the overlap is visible)
//   park_wait  checkpoint drain barrier: held at an iteration boundary
//   downtime   fault injection: crash downtime or pause window
//
// Counter tracks ("C" events in the Chrome export) carry run-wide scalar
// trajectories: OSP's S(Gᵘ) budget, bytes in flight on the network, and
// alive workers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osp::runtime {

enum class TracePhase : std::uint8_t {
  kCompute = 0,
  kSync = 1,
  kDowntime = 2,   ///< fault injection: crash downtime or pause window
  kRs = 3,         ///< OSP routine sync (blocking stage)
  kIcs = 4,        ///< OSP in-computation sync (overlapped stage)
  kParkWait = 5,   ///< checkpoint drain barrier wait
};

/// Stable lower-case name of a phase ("compute", "sync", "rs", …).
[[nodiscard]] const char* trace_phase_name(TracePhase phase);

struct TraceSpan {
  double begin_s = 0.0;
  double end_s = 0.0;
  std::size_t worker = 0;
  std::size_t iteration = 0;
  TracePhase phase = TracePhase::kCompute;
};

/// One network flow: a send from `src` to `dst` of `bytes` payload bytes.
/// Rendered on its own Perfetto track row (pid "network", tid per source
/// node) so PS-ingress incast shows as stacked concurrent arrivals.
struct FlowSpan {
  double begin_s = 0.0;
  double end_s = 0.0;      ///< delivery (or cancellation) instant
  std::string src;         ///< "worker3", "ps0", …
  std::string dst;
  double bytes = 0.0;      ///< payload bytes (pre loss inflation)
  bool cancelled = false;  ///< torn down before delivery (crash)
};

/// One sample of a named counter track.
struct CounterSample {
  double time_s = 0.0;
  std::string name;
  double value = 0.0;
};

class TraceRecorder {
 public:
  void add(const TraceSpan& span) { spans_.push_back(span); }
  void add_flow(FlowSpan flow) { flows_.push_back(std::move(flow)); }
  void add_counter(double time_s, std::string name, double value) {
    counters_.push_back({time_s, std::move(name), value});
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<FlowSpan>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<CounterSample>& counters() const {
    return counters_;
  }
  [[nodiscard]] bool empty() const {
    return spans_.empty() && flows_.empty() && counters_.empty();
  }
  void clear() {
    spans_.clear();
    flows_.clear();
    counters_.clear();
  }

  /// CSV: worker,iteration,phase,begin_s,end_s. Doubles are written at
  /// max_digits10 so a round-trip through the file recovers the exact
  /// bit pattern (default ostream precision corrupts microsecond
  /// timestamps past ~100 virtual seconds).
  void write_csv(const std::string& path) const;

  /// Chrome tracing JSON: "X" complete events for spans (ts/dur in
  /// fixed-point microseconds, never scientific notation — some viewers
  /// reject 1.2e+08), "M" metadata naming the track rows, "C" counter
  /// events for the counter tracks. Worker phases render under pid 0
  /// (tid = worker; ICS on a per-worker side-track), flows under pid 1
  /// (tid per source node). Throws util::CheckError on I/O failure.
  void write_chrome_json(const std::string& path) const;

  /// Total recorded span seconds per phase, over *all* phases (the old
  /// sync_fraction silently ignored everything but compute/sync).
  [[nodiscard]] std::map<TracePhase, double> phase_totals() const;

  /// Share of summed span time per phase; values sum to 1 (empty map for
  /// an empty trace).
  [[nodiscard]] std::map<TracePhase, double> phase_shares() const;

  /// Fraction of blocking-path time spent synchronizing:
  /// (sync + rs) / (sync + rs + compute). This is the old sync_fraction()
  /// value (OSP's blocking stage is recorded as `rs`); ICS, downtime and
  /// park waits are deliberately excluded — they are off the blocking path.
  [[nodiscard]] double blocking_sync_fraction() const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<FlowSpan> flows_;
  std::vector<CounterSample> counters_;
};

}  // namespace osp::runtime
