// Execution-trace recording: per-worker compute/sync spans in virtual time.
//
// When EngineConfig::record_trace is set, the engine records one span per
// phase per iteration; the trace can be exported as CSV or in the Chrome
// tracing JSON format (open chrome://tracing or https://ui.perfetto.dev and
// load the file to see the overlap structure — OSP's ICS visibly riding the
// compute spans is the paper's Figure 4, reconstructed from a run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace osp::runtime {

enum class TracePhase : std::uint8_t {
  kCompute = 0,
  kSync = 1,
  kDowntime = 2,  ///< fault injection: crash downtime or pause window
};

struct TraceSpan {
  double begin_s = 0.0;
  double end_s = 0.0;
  std::size_t worker = 0;
  std::size_t iteration = 0;
  TracePhase phase = TracePhase::kCompute;
};

class TraceRecorder {
 public:
  void add(const TraceSpan& span) { spans_.push_back(span); }
  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

  /// CSV: worker,iteration,phase,begin_s,end_s.
  void write_csv(const std::string& path) const;

  /// Chrome tracing "complete event" JSON (ts/dur in microseconds,
  /// tid = worker). Throws util::CheckError on I/O failure.
  void write_chrome_json(const std::string& path) const;

  /// Fraction of summed span time spent in sync (a quick comm-share view).
  [[nodiscard]] double sync_fraction() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace osp::runtime
