// The virtual-time training engine.
//
// Couples real numerics with simulated time: every worker's gradients are
// computed for real on the proxy model (so accuracy trajectories genuinely
// reflect staleness and correction effects), while compute and
// communication *durations* come from the calibrated compute model and the
// flow-level network simulator. One Engine drives one (workload, sync
// model, cluster) experiment to completion and returns a RunResult.
//
// Lifecycle per worker w:
//   begin_compute(w)              [engine]
//     … virtual compute time …
//   on_compute_done(w):           [engine]  real FP+BP, gradient gathered
//   sync->on_gradient_ready(w)    [sync model] virtual-time communication,
//                                  parameter updates via engine accessors
//   eng.finish_sync(w)            [sync model] records BST,
//                                  engine starts the next iteration
//
// Epoch bookkeeping: when every worker has finished epoch e the engine
// reports the mean training loss to the sync model (Algorithm 1's input)
// and the learning-rate schedule advances on the slowest worker's epoch.
//
// Fault injection: EngineConfig::faults installs a deterministic
// FaultSchedule (sim/faults.hpp) into the simulator at run start. The
// engine executes worker events — a paused worker's in-flight compute is
// stretched by the pause window; a crashed worker's in-flight compute and
// worker-owned network flows are cancelled, the sync model is notified,
// and on restart the worker re-pulls the global model before computing
// again. Link and message events are forwarded to the Network. Sync models
// route per-worker traffic through worker_transfer() so the engine can
// cancel it on a crash; RunResult::faults reports the accounting.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/registry.hpp"
#include "data/loader.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"
#include "runtime/sync_model.hpp"
#include "runtime/worker_math.hpp"
#include "runtime/workload.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace osp::runtime {

struct EngineConfig {
  std::size_t num_workers = 8;
  std::size_t max_epochs = 10;
  /// Evaluate the global model every this many processed samples
  /// (0 = once per dataset-size samples).
  std::size_t eval_every_samples = 0;
  /// Cap on eval examples per evaluation (0 = whole eval set).
  std::size_t eval_max_examples = 0;
  double momentum = 0.0;
  nn::StepLrSchedule lr_schedule = nn::StepLrSchedule::paper_default();
  std::uint64_t seed = 1;
  sim::ClusterConfig cluster;
  /// One-sided exponential compute jitter coefficient (stragglers).
  double straggler_jitter = 0.0;
  /// Safety limit on virtual time (seconds); 0 disables.
  double max_virtual_time_s = 0.0;
  /// Record per-worker compute/sync spans, network flow spans, and counter
  /// tracks (see runtime/trace.hpp).
  bool record_trace = false;
  /// Record per-round SyncTelemetry into RunResult::rounds (see
  /// runtime/telemetry.hpp). Independent of record_trace.
  bool record_telemetry = false;
  /// §6.2: scale each worker's batch size by its speed factor so
  /// heterogeneous workers finish compute in near-equal time; aggregation
  /// then weights each gradient by its sample share (§2.1.1).
  bool balance_batch_to_speed = false;
  /// Overlap workers' real FP+BP in wall-clock: each iteration's math is
  /// enqueued on the thread pool at compute start and joined at the
  /// virtual-time completion event (see runtime/worker_math.hpp). Results
  /// are bit-identical either way and at any OSP_NUM_THREADS; disable to
  /// get the serial reference path (or set OSP_ASYNC_MATH=0, which
  /// overrides this flag for A/B timing without code changes).
  bool async_worker_math = true;
  /// Deterministic fault scenario executed during the run (empty = none).
  sim::FaultSchedule faults;
  /// Periodic run-level checkpointing / resume (see runtime/checkpoint.hpp;
  /// default-disabled: every_iters == 0 and resume_from empty leave every
  /// code path of a plain run untouched).
  CheckpointPolicy checkpoint;
};

class Engine {
 public:
  Engine(const WorkloadSpec& spec, const EngineConfig& config,
         SyncModel& sync);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the experiment to completion; single use.
  [[nodiscard]] RunResult run();

  // ---- accessors for sync models ----
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] std::size_t num_workers() const {
    return config_.num_workers;
  }
  [[nodiscard]] const WorkloadSpec& spec() const { return *spec_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Layer blocks of the (proxy) model; wire sizes are scaled to the real
  /// model via block_bytes().
  [[nodiscard]] const std::vector<nn::LayerBlockInfo>& blocks() const;
  [[nodiscard]] std::size_t num_blocks() const { return blocks().size(); }
  /// Wire bytes of block `i`, scaled so the whole model weighs
  /// spec().real_param_bytes.
  [[nodiscard]] double block_bytes(std::size_t i) const;
  /// All blocks' wire bytes (same scaling).
  [[nodiscard]] const std::vector<double>& all_block_bytes() const {
    return block_bytes_;
  }
  [[nodiscard]] double model_bytes() const {
    return spec_->real_param_bytes;
  }

  /// Jitter-free per-iteration compute time T_C (Eq. 5's input).
  [[nodiscard]] double base_compute_time() const;

  /// Virtual seconds the PS spends touching `bytes` of gradient/parameter
  /// data `passes` times (aggregation, optimizer application, PGP). 0 when
  /// the cluster config disables PS costing.
  [[nodiscard]] double ps_apply_delay(double bytes,
                                      double passes = 1.0) const;

  /// Run `done` after PS `ps`'s single-threaded update loop has spent
  /// `seconds` of work. Jobs are served FIFO per PS: concurrent submissions
  /// queue behind each other, which is what makes N independent async
  /// updates per round more expensive at the PS than one aggregated
  /// OSP/BSP step. With multiple PSes (§6.1) each shard has its own queue.
  /// A PS crash (FaultKind::kPsCrash) drops the queue: jobs submitted
  /// before the crash never run, even if the host later restarts.
  void ps_submit(double seconds, std::function<void()> done,
                 std::size_t ps = 0);

  // ---- worker state ----
  [[nodiscard]] std::span<const float> worker_gradient(std::size_t w) const;
  [[nodiscard]] std::span<float> worker_params(std::size_t w);
  [[nodiscard]] std::size_t worker_iteration(std::size_t w) const;
  [[nodiscard]] std::size_t worker_epoch(std::size_t w) const;
  [[nodiscard]] std::size_t min_worker_iteration() const;
  [[nodiscard]] std::size_t batches_per_epoch() const;
  /// Worker w's batch size (== spec().batch_size unless
  /// balance_batch_to_speed rescaled it).
  [[nodiscard]] std::size_t worker_batch(std::size_t w) const;
  /// Worker w's aggregation weight: its batch share of the cluster's
  /// per-round samples (§2.1.1's dataset-ratio weighting). Uniform 1/N
  /// for homogeneous batches.
  [[nodiscard]] double worker_weight(std::size_t w) const;
  /// Extra per-iteration compute charged to a worker (co-located PS GIB
  /// computation, §4.4). Fraction of the batch compute time.
  void set_worker_compute_overhead(std::size_t w, double fraction);

  // ---- parameter server ----
  [[nodiscard]] std::span<float> global_params() { return global_params_; }
  [[nodiscard]] std::span<const float> global_params() const {
    return global_params_;
  }
  /// SGD step on the full global vector with the current scheduled LR.
  /// `scale` multiplies the gradient — async schemes (ASP/SSP/R²SP) apply
  /// each worker's gradient scaled by 1/N so the per-sample step size
  /// matches BSP's mean aggregation.
  void apply_global_step(std::span<const float> grad, double scale = 1.0);
  /// SGD step restricted to blocks whose GIB importance equals
  /// `important_set` (OSP's two-stage updates). `grad` is full-length.
  void apply_global_step_blocks(std::span<const float> grad,
                                const std::vector<bool>& block_mask);
  [[nodiscard]] double current_lr() const;

  /// Called by the sync model when worker `w` may start its next iteration.
  /// Ignored for a crashed worker (the restart path owns its lifecycle).
  void finish_sync(std::size_t w);

  // ---- fault injection ----
  /// False while worker `w` is crashed (between the crash event and the
  /// completion of its restart pull).
  [[nodiscard]] bool worker_alive(std::size_t w) const;
  [[nodiscard]] std::size_t num_alive() const;
  /// True once worker `w` has finished all its epochs (it will not push
  /// again; barriers must not wait for it).
  [[nodiscard]] bool worker_done(std::size_t w) const {
    return workers_.at(w).done;
  }

  /// Start a worker-owned transfer: like sync::transfer, but the flow is
  /// registered to `owner` and cancelled if the owner crashes (the
  /// completion callback then never fires). No-op when the owner is
  /// already crashed. Handles the empty-route (co-located PS) loopback.
  void worker_transfer(std::size_t owner, std::vector<sim::LinkId> route,
                       double bytes, std::function<void()> done);

  /// Complete `done` after `delay` virtual seconds of node-local activity
  /// (co-located-PS loopback, checkpoint disk reads). Equivalent to
  /// sim().schedule but tracked, so the checkpoint drain barrier sees
  /// pending loopbacks and does not snapshot across them.
  void loopback_transfer(double delay, std::function<void()> done);

  /// False while PS shard `ps` is crashed (between the crash event and its
  /// restart). Sync models route around dead hosts via their replica
  /// chains (kv/replication.hpp).
  [[nodiscard]] bool ps_alive(std::size_t ps) const;
  [[nodiscard]] std::size_t num_ps_crashed() const { return ps_crashed_count_; }

  /// Fault-accounting hooks for sync models.
  void record_round_timeout() { ++fault_stats_.timed_out_rounds; }
  void record_ics_abandoned() { ++fault_stats_.ics_rounds_abandoned; }
  void record_catch_up_pull() { ++fault_stats_.catch_up_pulls; }
  /// A key range was repointed at a replica after a PS fault;
  /// `catchup_bytes` is what the version-predicate catch-up shipped.
  void record_ps_promotion(double catchup_bytes) {
    ++fault_stats_.ps_promotions;
    fault_stats_.replica_catchup_bytes += catchup_bytes;
  }
  [[nodiscard]] const sim::FaultStats& fault_stats() const {
    return fault_stats_;
  }

  /// True once the run's stop condition has been reached (workers finished
  /// their epochs); sync models can early-out housekeeping.
  [[nodiscard]] bool stopping() const { return stopping_; }

  /// Execution trace (empty unless config().record_trace).
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  /// True when the run records a trace — sync models gate span emission
  /// (OSP's ICS side-track spans) on this.
  [[nodiscard]] bool tracing() const { return config_.record_trace; }
  /// Mutable trace recorder for sync-model-emitted spans. Only meaningful
  /// while tracing() is true.
  [[nodiscard]] TraceRecorder& trace_mutable() { return trace_; }

  // ---- sync telemetry ----
  /// The record for sync round `round`, creating it if absent (most models
  /// only ever append; OSP's late ICS corrections amend earlier rounds).
  /// A freshly created record gets close_time_s = now and wire_bytes = the
  /// network payload delivered since the previous record was created. When
  /// record_telemetry is off this returns a reusable scratch record, so
  /// callers never need their own gating.
  [[nodiscard]] SyncTelemetry& telemetry_round(std::uint64_t round);
  [[nodiscard]] const std::vector<SyncTelemetry>& telemetry() const {
    return telemetry_;
  }

  /// True when this run overlaps worker math on the thread pool (config
  /// flag and OSP_ASYNC_MATH resolved); the serial path otherwise.
  [[nodiscard]] bool async_math() const { return async_math_; }
  /// Model replicas the math pipeline has materialized (1 on the serial
  /// path; up to pool-threads + 1 under fan-out). Observability/tests.
  [[nodiscard]] std::size_t math_replicas() const {
    return replicas_->replicas_built();
  }

 private:
  struct WorkerState {
    std::vector<float> params;      // flat local parameters (live)
    std::vector<float> grad;        // flat last gradient
    std::unique_ptr<data::ShardLoader> loader;
    std::size_t batch_size = 0;
    util::Rng rng;                  // jitter stream
    std::size_t iteration = 0;      // completed iterations
    std::size_t epoch = 0;          // completed epochs
    double grad_ready_time = 0.0;
    double compute_begin_time = 0.0;
    double epoch_loss_sum = 0.0;
    std::size_t epoch_loss_count = 0;
    double compute_overhead = 0.0;
    bool done = false;
    // Checkpoint drain barrier: the worker reached the checkpoint
    // iteration and is held before its next compute until the snapshot.
    bool parked = false;
    double park_begin_time = 0.0;   // when parked went true (trace spans)
    // Fault-injection state.
    bool crashed = false;
    double crashed_at = 0.0;
    double pause_until = 0.0;       // compute stalls until this instant
    double restart_at = -1.0;       // pending restart event time (< 0: none)
    std::uint64_t compute_epoch = 0;  // invalidates in-flight completions
    bool compute_pending = false;
    double compute_end_time = 0.0;
    double pending_charge = 0.0;    // BCT to record at completion
    std::vector<sim::FlowId> flows;  // in-flight worker-owned transfers
    // In-flight math job for the current iteration: snapshot of params as
    // of compute start (gradients are computed against these, so ICS
    // corrections landing mid-compute only affect the *next* iteration,
    // §4.2), submitted at begin_compute, joined at the completion event.
    std::shared_ptr<MathJob> job;
  };

  void begin_compute(std::size_t w);
  void on_compute_done(std::size_t w, double charged_time);
  /// Abandon worker w's in-flight math job (crash / teardown): flags it
  /// cancelled and parks the handle so teardown can join it before the
  /// replicas and loaders it references die.
  void cancel_math_job(std::size_t w);
  void schedule_compute_completion(std::size_t w, double end_time);
  void maybe_evaluate(bool force);
  void evaluate_now();
  void complete_epoch(std::size_t w);
  /// Install the fault schedule. `resume_time >= 0` means we are resuming
  /// a checkpoint taken at that virtual time: already-executed events are
  /// filtered out and the injection RNG is restored from the checkpointed
  /// network state instead of being reseeded.
  void install_faults(double resume_time = -1.0);
  void apply_fault(const sim::FaultEvent& ev);
  void crash_worker(std::size_t w, double restart_after);
  void restart_worker(std::size_t w);
  void pause_worker(std::size_t w, double duration);
  void crash_ps(std::size_t ps, double restart_after);
  void restart_ps(std::size_t ps);

  // ---- checkpointing ----
  [[nodiscard]] bool should_park(std::size_t w) const;
  [[nodiscard]] bool all_parked() const;
  [[nodiscard]] bool quiescent() const;
  /// If a drain is pending and the cluster is fully parked + quiescent,
  /// take the checkpoint now. Returns true when a checkpoint was taken.
  bool maybe_checkpoint_now();
  void take_checkpoint();
  void release_parked();
  [[nodiscard]] RunCheckpoint make_checkpoint() const;
  void restore_checkpoint(const RunCheckpoint& ckpt);

  const WorkloadSpec* spec_;
  EngineConfig config_;
  SyncModel* sync_;

  sim::Simulator sim_;
  std::unique_ptr<sim::Cluster> cluster_;
  sim::ComputeModel compute_model_;

  // Dedicated evaluation replica: evaluate_now scatters the global params
  // into this model, so it must never be shared with in-flight math jobs
  // (those run on replicas_). flat_ also serves as the block-layout
  // authority for the sync-facing accessors.
  nn::Sequential scratch_model_;
  std::unique_ptr<nn::FlatModel> flat_;
  // Replica pool + pool handle for the async worker-math pipeline. The
  // pool pointer is pinned at construction so a mid-run ScopedGlobal swap
  // cannot split submissions and joins across pools.
  std::unique_ptr<ReplicaPool> replicas_;
  util::ThreadPool* pool_ = nullptr;
  bool async_math_ = true;
  // Crash-abandoned jobs still owed a join before teardown (pruned of
  // already-finished handles opportunistically).
  std::vector<std::shared_ptr<MathJob>> abandoned_jobs_;
  std::vector<double> block_bytes_;

  std::vector<float> global_params_;
  std::vector<float> scaled_grad_;  // scratch for scaled async updates
  std::unique_ptr<nn::SgdOptimizer> optimizer_;

  std::vector<WorkerState> workers_;
  MetricsRecorder metrics_;
  TraceRecorder trace_;
  // Sync telemetry (record_telemetry). The scratch record absorbs writes
  // while telemetry is disabled.
  std::vector<SyncTelemetry> telemetry_;
  SyncTelemetry telemetry_scratch_;
  double telemetry_bytes_mark_ = 0.0;
  // Flows currently on the wire, keyed by id (record_trace only): start
  // data held until the ended hook fires and the FlowSpan is emitted.
  struct PendingFlow {
    double begin_s = 0.0;
    std::string src;
    std::string dst;
    double bytes = 0.0;
  };
  std::map<sim::FlowId, PendingFlow> pending_flows_;
  sim::FaultStats fault_stats_;
  std::vector<double> ps_busy_until_;
  // PS-shard fault state. ps_epoch_ invalidates the serial queue: every
  // ps_submit captures the epoch at submission and its completion event
  // no-ops if the host crashed in between (the queue is lost with the
  // host, and does not come back at restart).
  std::vector<std::uint8_t> ps_crashed_;
  std::vector<double> ps_crashed_at_;
  std::vector<double> ps_restart_at_;   // pending restart time (< 0: none)
  std::vector<std::uint64_t> ps_epoch_;
  std::size_t ps_crashed_count_ = 0;
  // Live (non-crashed) workers, maintained on crash/restart so num_alive()
  // is O(1) — it is called per round in several hot paths.
  std::size_t alive_count_ = 0;

  double samples_processed_ = 0.0;
  double next_eval_at_samples_ = 0.0;
  std::size_t eval_stride_ = 0;
  // Epoch tracking: epoch_done_counts_[e] = workers that completed epoch e.
  std::vector<std::size_t> epoch_done_counts_;
  std::vector<double> epoch_loss_sums_;
  bool stopping_ = false;
  bool ran_ = false;

  // Checkpoint policy state. next_checkpoint_iter_ == 0 means the policy
  // is disabled and every checkpoint hook is a no-op.
  std::size_t next_checkpoint_iter_ = 0;
  bool drain_pending_ = false;     // waiting for park + quiescence
  bool halted_ = false;            // halt_after_checkpoint fired
  std::uint64_t checkpoints_taken_ = 0;
  std::shared_ptr<const RunCheckpoint> last_checkpoint_;
  std::size_t loopback_pending_ = 0;  // in-flight loopback_transfer events
};

}  // namespace osp::runtime
