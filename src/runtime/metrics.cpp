#include "runtime/metrics.hpp"

#include <algorithm>

namespace osp::runtime {

double MetricsRecorder::bst_percentile(double q) const {
  if (bst_samples_.empty()) return 0.0;
  return util::percentile(bst_samples_, q);
}

double MetricsRecorder::steady_bst() const {
  if (bst_samples_.empty()) return 0.0;
  const std::size_t start = bst_samples_.size() * 3 / 4;
  double sum = 0.0;
  for (std::size_t i = start; i < bst_samples_.size(); ++i) {
    sum += bst_samples_[i];
  }
  return sum / static_cast<double>(bst_samples_.size() - start);
}

double MetricsRecorder::best_metric() const {
  double best = 0.0;
  for (const EvalPoint& p : curve_) best = std::max(best, p.metric);
  return best;
}

std::optional<EvalPoint> MetricsRecorder::first_reaching(
    double target) const {
  for (const EvalPoint& p : curve_) {
    if (p.metric >= target) return p;
  }
  return std::nullopt;
}

}  // namespace osp::runtime
