#include "runtime/trace.hpp"

#include <cstdio>
#include <fstream>
#include <limits>

#include "util/check.hpp"

namespace osp::runtime {

const char* trace_phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCompute:
      return "compute";
    case TracePhase::kSync:
      return "sync";
    case TracePhase::kDowntime:
      return "downtime";
    case TracePhase::kRs:
      return "rs";
    case TracePhase::kIcs:
      return "ics";
    case TracePhase::kParkWait:
      return "park_wait";
  }
  return "unknown";
}

namespace {

// Seconds → fixed-point microseconds with 3 decimals. snprintf %f never
// produces scientific notation, which chrome://tracing chokes on.
std::string fixed_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

// Fixed-point decimal for counter values / byte counts (same no-e/E
// guarantee). Three decimals keep sub-byte budget values distinguishable.
std::string fixed_value(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

// The ICS side-track offset: OSP's ICS spans overlap the same worker's
// compute spans, and two overlapping "X" events on one (pid, tid) row
// render as malformed nesting — so ICS gets tid = kIcsTidBase + worker.
constexpr std::size_t kIcsTidBase = 1000;

}  // namespace

void TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  OSP_CHECK(static_cast<bool>(out), "cannot open trace CSV for writing");
  // Exact double round-trip: 17 significant digits.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "worker,iteration,phase,begin_s,end_s\n";
  for (const TraceSpan& s : spans_) {
    out << s.worker << ',' << s.iteration << ',' << trace_phase_name(s.phase)
        << ',' << s.begin_s << ',' << s.end_s << '\n';
  }
  OSP_CHECK(static_cast<bool>(out), "trace CSV write failed");
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  OSP_CHECK(static_cast<bool>(out), "cannot open trace JSON for writing");

  std::vector<std::string> events;
  events.reserve(spans_.size() + flows_.size() + counters_.size() + 16);

  // Track-naming metadata. Collect the rows actually used first.
  std::map<std::size_t, bool> worker_rows;   // worker -> has ics row too
  for (const TraceSpan& s : spans_) {
    auto [it, inserted] = worker_rows.emplace(s.worker, false);
    if (s.phase == TracePhase::kIcs) it->second = true;
  }
  std::map<std::string, std::size_t> flow_tids;  // src node -> tid
  for (const FlowSpan& f : flows_) {
    flow_tids.emplace(f.src, flow_tids.size());
  }

  auto meta = [&events](const char* what, std::size_t pid, long tid,
                        const std::string& label) {
    std::string e = "  {\"name\": \"";
    e += what;
    e += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid);
    if (tid >= 0) e += ", \"tid\": " + std::to_string(tid);
    e += ", \"args\": {\"name\": \"" + label + "\"}}";
    events.push_back(std::move(e));
  };
  meta("process_name", 0, -1, "train");
  for (const auto& [w, has_ics] : worker_rows) {
    meta("thread_name", 0, static_cast<long>(w),
         "worker " + std::to_string(w));
    if (has_ics) {
      meta("thread_name", 0, static_cast<long>(kIcsTidBase + w),
           "worker " + std::to_string(w) + " ics");
    }
  }
  if (!flow_tids.empty()) {
    meta("process_name", 1, -1, "network");
    for (const auto& [src, tid] : flow_tids) {
      meta("thread_name", 1, static_cast<long>(tid), src + " sends");
    }
  }

  for (const TraceSpan& s : spans_) {
    const std::size_t tid =
        s.phase == TracePhase::kIcs ? kIcsTidBase + s.worker : s.worker;
    std::string e = "  {\"name\": \"";
    e += trace_phase_name(s.phase);
    e += "\", \"cat\": \"train\", \"ph\": \"X\", \"pid\": 0, \"tid\": " +
         std::to_string(tid) + ", \"ts\": " + fixed_us(s.begin_s) +
         ", \"dur\": " + fixed_us(s.end_s - s.begin_s) +
         ", \"args\": {\"iteration\": " + std::to_string(s.iteration) + "}}";
    events.push_back(std::move(e));
  }

  for (const FlowSpan& f : flows_) {
    std::string e = "  {\"name\": \"";
    e += f.src + "->" + f.dst;
    e += "\", \"cat\": \"net\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
         std::to_string(flow_tids[f.src]) + ", \"ts\": " + fixed_us(f.begin_s) +
         ", \"dur\": " + fixed_us(f.end_s - f.begin_s) +
         ", \"args\": {\"src\": \"" + f.src + "\", \"dst\": \"" + f.dst +
         "\", \"bytes\": " + fixed_value(f.bytes) +
         ", \"cancelled\": " + (f.cancelled ? "1" : "0") + "}}";
    events.push_back(std::move(e));
  }

  for (const CounterSample& c : counters_) {
    std::string e = "  {\"name\": \"";
    e += c.name;
    e += "\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 0, \"ts\": " +
         fixed_us(c.time_s) + ", \"args\": {\"value\": " +
         fixed_value(c.value) + "}}";
    events.push_back(std::move(e));
  }

  out << "[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << events[i] << (i + 1 < events.size() ? ",\n" : "\n");
  }
  out << "]\n";
  OSP_CHECK(static_cast<bool>(out), "trace JSON write failed");
}

std::map<TracePhase, double> TraceRecorder::phase_totals() const {
  std::map<TracePhase, double> totals;
  for (const TraceSpan& s : spans_) {
    totals[s.phase] += s.end_s - s.begin_s;
  }
  return totals;
}

std::map<TracePhase, double> TraceRecorder::phase_shares() const {
  std::map<TracePhase, double> totals = phase_totals();
  double sum = 0.0;
  for (const auto& [phase, t] : totals) sum += t;
  if (sum <= 0.0) return {};
  for (auto& [phase, t] : totals) t /= sum;
  return totals;
}

double TraceRecorder::blocking_sync_fraction() const {
  double compute = 0.0, sync = 0.0;
  for (const TraceSpan& s : spans_) {
    const double dur = s.end_s - s.begin_s;
    if (s.phase == TracePhase::kCompute) {
      compute += dur;
    } else if (s.phase == TracePhase::kSync || s.phase == TracePhase::kRs) {
      sync += dur;
    }
  }
  const double total = compute + sync;
  return total > 0.0 ? sync / total : 0.0;
}

}  // namespace osp::runtime
