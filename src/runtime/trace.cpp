#include "runtime/trace.hpp"

#include <fstream>

#include "util/check.hpp"

namespace osp::runtime {

namespace {
const char* phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCompute:
      return "compute";
    case TracePhase::kSync:
      return "sync";
    case TracePhase::kDowntime:
      return "downtime";
  }
  return "unknown";
}
}  // namespace

void TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  OSP_CHECK(static_cast<bool>(out), "cannot open trace CSV for writing");
  out << "worker,iteration,phase,begin_s,end_s\n";
  for (const TraceSpan& s : spans_) {
    out << s.worker << ',' << s.iteration << ',' << phase_name(s.phase)
        << ',' << s.begin_s << ',' << s.end_s << '\n';
  }
  OSP_CHECK(static_cast<bool>(out), "trace CSV write failed");
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  OSP_CHECK(static_cast<bool>(out), "cannot open trace JSON for writing");
  out << "[\n";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    out << "  {\"name\": \"" << phase_name(s.phase)
        << "\", \"cat\": \"train\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << s.worker << ", \"ts\": " << s.begin_s * 1e6
        << ", \"dur\": " << (s.end_s - s.begin_s) * 1e6
        << ", \"args\": {\"iteration\": " << s.iteration << "}}";
    out << (i + 1 < spans_.size() ? ",\n" : "\n");
  }
  out << "]\n";
  OSP_CHECK(static_cast<bool>(out), "trace JSON write failed");
}

double TraceRecorder::sync_fraction() const {
  double compute = 0.0, sync = 0.0;
  for (const TraceSpan& s : spans_) {
    const double dur = s.end_s - s.begin_s;
    if (s.phase == TracePhase::kCompute) {
      compute += dur;
    } else if (s.phase == TracePhase::kSync) {
      sync += dur;
    }
  }
  const double total = compute + sync;
  return total > 0.0 ? sync / total : 0.0;
}

}  // namespace osp::runtime
