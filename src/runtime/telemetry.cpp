#include "runtime/telemetry.hpp"

#include <fstream>

#include "util/json.hpp"

namespace osp::runtime {

bool write_telemetry_jsonl(const std::string& path,
                           const std::vector<SyncTelemetry>& rounds) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const SyncTelemetry& r : rounds) {
    util::JsonObject o;
    o.set("round", static_cast<std::size_t>(r.round))
        .set("close_time_s", r.close_time_s)
        .set("contributors", r.contributors)
        .set("gib_important", r.gib_important)
        .set("gib_unimportant", r.gib_unimportant)
        .set("important_bytes", r.important_bytes)
        .set("unimportant_bytes", r.unimportant_bytes)
        .set("ics_budget_bytes", r.ics_budget_bytes)
        .set("lgp_correction_l2", r.lgp_correction_l2())
        .set("retries", r.retries)
        .set("timeouts", r.timeouts)
        .set("wire_bytes", r.wire_bytes)
        .set("replica_lag", r.replica_lag)
        .set("promotions", r.promotions)
        .set("catch_up_bytes", r.catch_up_bytes);
    out << o.str() << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace osp::runtime
