// Per-round synchronization telemetry.
//
// Every sync model reports one record per synchronization round it closes
// (a BSP barrier, an ASP per-worker exchange, an OSP RS round) through
// Engine::telemetry_round(). The record carries the quantities the paper
// argues with: who contributed, how the GIB split the model (§4.1), the
// S(Gᵘ) budget in force (Algorithm 1 / §5.3), the magnitude of the LGP
// correction the ICS delivered (Eq. 7), fault-path retries, and wire
// traffic. Records accumulate into RunResult::rounds and dump as JSONL —
// one JSON object per line — for the run inspector and offline analysis.
//
// Telemetry is strictly read-only with respect to training numerics: it is
// populated from values the models already computed and is NOT part of the
// checkpoint state, so enabling it cannot perturb bit-identity guarantees.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace osp::runtime {

struct SyncTelemetry {
  std::uint64_t round = 0;        ///< sync-model round id (1-based)
  double close_time_s = 0.0;      ///< virtual time the round closed
  std::size_t contributors = 0;   ///< gradients folded into this round
  /// GIB split of the round (non-OSP models: everything "important").
  std::size_t gib_important = 0;
  std::size_t gib_unimportant = 0;
  double important_bytes = 0.0;   ///< wire bytes of the blocking stage
  double unimportant_bytes = 0.0; ///< wire bytes riding the ICS
  /// S(Gᵘ): the ICS byte budget in force when the round closed (Eq. 5 /
  /// Algorithm 1). 0 for non-OSP models.
  double ics_budget_bytes = 0.0;
  /// Accumulated squared L2 of the ICS corrections delivered for this
  /// round (global − LGP-predicted params over the corrected blocks,
  /// summed across members and shards). Use lgp_correction_l2().
  double lgp_correction_sq = 0.0;
  std::size_t retries = 0;        ///< catch-up pulls issued at this close
  std::size_t timeouts = 0;       ///< 1 when a deadline closed the round
  /// Payload bytes delivered on the network since the previous telemetry
  /// record (a per-round view of wire traffic; responses of round r and
  /// pushes of round r+1 land in record r+1's window).
  double wire_bytes = 0.0;
  /// Replication health (kv/replication.hpp): segments whose backup
  /// replica was stale when the round closed, key ranges repointed at a
  /// replica during the round, and the bytes the version-predicate
  /// catch-ups shipped. All zero for models without PS replication.
  std::size_t replica_lag = 0;
  std::size_t promotions = 0;
  double catch_up_bytes = 0.0;

  [[nodiscard]] double lgp_correction_l2() const {
    return std::sqrt(lgp_correction_sq);
  }
};

/// Dump one JSON object per record, newline-delimited (JSONL). Returns
/// false on I/O failure.
bool write_telemetry_jsonl(const std::string& path,
                           const std::vector<SyncTelemetry>& rounds);

}  // namespace osp::runtime
