// Runtime SIMD dispatch for the gradient wire-path kernels.
//
// Four tiers — scalar, AVX2, AVX2+FMA, AVX-512 — selected once at startup
// via __builtin_cpu_supports (the same mechanism as the GEMM micro-kernel
// in src/tensor/ops.cpp), overridable with the OSP_SIMD_TIER environment
// variable ("scalar" | "avx2" | "avx2fma" | "avx512", clamped to what the
// CPU supports) and force-able from tests via force_tier().
//
// Bit-identity contract (see DESIGN.md "SIMD dispatch tiers"): every tier
// of every kernel produces bit-identical results.
//  - Elementwise float kernels perform the identical per-element IEEE op
//    sequence (mul then add, never a fused float FMA) in every tier, so
//    they are also bit-identical to the seed scalar loops.
//  - Double-precision reductions over float inputs use one fixed-width
//    8-lane accumulation tree in every tier: lane j of a range owns
//    elements (base+j, base+j+8, ...), and the 8 lane totals are combined
//    serially in lane order. The FMA tiers may fuse the per-lane
//    multiply-add because the product of two floats is exactly
//    representable in double, so fused and unfused rounding coincide.
//  - Integer/bitmap kernels are exact by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace osp::util::simd {

enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx2Fma = 2, kAvx512 = 3 };

/// Human-readable tier name ("scalar", "avx2", "avx2fma", "avx512").
[[nodiscard]] const char* tier_name(Tier t);

/// Parse an OSP_SIMD_TIER-style name; nullopt for unknown strings.
[[nodiscard]] std::optional<Tier> parse_tier(std::string_view name);

/// Best tier the running CPU supports (independent of env/forcing).
[[nodiscard]] Tier hardware_tier();

/// Tier currently used by the zero-argument kernels() accessor: the
/// hardware tier, clamped by OSP_SIMD_TIER if set, unless overridden by
/// force_tier().
[[nodiscard]] Tier active_tier();

/// Test/debug hook: pin the active tier (clamped to hardware_tier()).
/// Returns the tier actually installed. Not thread-safe against kernels
/// executing concurrently — call while the thread pool is idle.
Tier force_tier(Tier t);

/// Undo force_tier(): back to the env/hardware default.
void reset_tier();

/// Per-tier kernel table. All pointers are always valid; tiers the CPU
/// cannot execute fall back to the next lower supported tier so that
/// kernels(t) is safe to call for any t <= hardware_tier().
struct Kernels {
  // -- elementwise float (exact; identical op order in every tier) --
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  void (*scale)(float* x, float alpha, std::size_t n);
  void (*add)(const float* a, const float* b, float* dst, std::size_t n);
  /// d1[i] = d2[i] = a[i] + b[i] — the error-feedback fold (gradient +
  /// residual written to both the transmit buffer and the residual) in
  /// one pass. d2 may alias b.
  void (*add_copy2)(const float* a, const float* b, float* d1, float* d2,
                    std::size_t n);
  void (*sub)(const float* a, const float* b, float* dst, std::size_t n);

  // -- double reductions over float inputs (8-lane tree) --
  double (*dot)(const float* a, const float* b, std::size_t n);
  double (*abs_prod_sum)(const float* a, const float* b, std::size_t n);
  double (*l1)(const float* x, std::size_t n);
  /// Sum of squares (caller applies sqrt).
  double (*l2sq)(const float* x, std::size_t n);

  // -- wire codecs --
  /// max_i |x[i]| (0 for empty; exact in any order — max is associative).
  float (*max_abs)(const float* x, std::size_t n);
  /// x[i] = round(clamp(x[i]*inv, -127, 127)) * scale with round-half-
  /// away-from-zero (std::round semantics, exactly, in every tier).
  void (*quantize_dequantize)(float* x, float scale, float inv,
                              std::size_t n);
  /// mags[i] = |x[i]|.
  void (*abs_into)(const float* x, float* mags, std::size_t n);
  /// Count of mags[i] > threshold (IEEE >, no abs applied here).
  std::size_t (*count_gt)(const float* mags, float threshold, std::size_t n);
  /// Top-k apply pass: keep grad[i] where mags[i] > threshold; elements
  /// equal to the threshold consume tie_slots in ascending index order;
  /// everything else is zeroed. Returns the number of tie slots consumed.
  std::size_t (*threshold_zero)(float* grad, const float* mags,
                                float threshold, std::size_t tie_slots,
                                std::size_t n);
  /// grad[i] = 0 where keep[i] == 0 (byte mask).
  void (*mask_zero)(float* grad, const std::uint8_t* keep, std::size_t n);

  // -- bitmap pack/unpack (GIB wire format: bit i%8 of byte i/8) --
  /// bytes[i] (0 = clear, nonzero = set) -> bits[(n+7)/8]; unused high
  /// bits of the final byte are written as zero.
  void (*pack_bits)(const std::uint8_t* bytes, std::uint8_t* bits,
                    std::size_t n);
  /// bits -> bytes[i] in {0, 1}.
  void (*unpack_bits)(const std::uint8_t* bits, std::uint8_t* bytes,
                      std::size_t n);
};

/// Kernel table for an explicit tier (cross-tier bit-identity tests).
[[nodiscard]] const Kernels& kernels(Tier t);

/// Kernel table for the active tier.
[[nodiscard]] inline const Kernels& kernels() { return kernels(active_tier()); }

/// RAII forced-tier scope for tests.
class ScopedTier {
 public:
  explicit ScopedTier(Tier t) : prev_(active_tier()) { force_tier(t); }
  ~ScopedTier() { force_tier(prev_); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  Tier prev_;
};

}  // namespace osp::util::simd
