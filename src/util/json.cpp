#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace osp::util {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string number_repr(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(json_quote(key), json_quote(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  fields_.emplace_back(json_quote(key), number_repr(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::size_t value) {
  fields_.emplace_back(json_quote(key), std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(json_quote(key), value ? "true" : "false");
  return *this;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += fields_[i].first;
    out.push_back(':');
    out += fields_[i].second;
  }
  out.push_back('}');
  return out;
}

std::string json_array(const std::vector<JsonObject>& items) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += "  ";
    out += items[i].str();
    if (i + 1 != items.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "]\n";
  return out;
}

bool write_json_array(const std::string& path,
                      const std::vector<JsonObject>& items) {
  std::ofstream out(path);
  if (!out) return false;
  out << json_array(items);
  return static_cast<bool>(out);
}

}  // namespace osp::util
