#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/check.hpp"

namespace osp::util {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string number_repr(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(json_quote(key), json_quote(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  fields_.emplace_back(json_quote(key), number_repr(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::size_t value) {
  fields_.emplace_back(json_quote(key), std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(json_quote(key), value ? "true" : "false");
  return *this;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += fields_[i].first;
    out.push_back(':');
    out += fields_[i].second;
  }
  out.push_back('}');
  return out;
}

std::string json_array(const std::vector<JsonObject>& items) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += "  ";
    out += items[i].str();
    if (i + 1 != items.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "]\n";
  return out;
}

bool write_json_array(const std::string& path,
                      const std::vector<JsonObject>& items) {
  std::ofstream out(path);
  if (!out) return false;
  out << json_array(items);
  return static_cast<bool>(out);
}

bool JsonValue::as_bool() const {
  OSP_CHECK(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  OSP_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  OSP_CHECK(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  OSP_CHECK(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::fields()
    const {
  OSP_CHECK(kind_ == Kind::kObject, "JSON value is not an object");
  return fields_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Recursive-descent parser over the exact subset the emitters produce
/// (plus standard escapes, so hand-written fixtures also load).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    OSP_CHECK(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[nodiscard]] char peek() {
    OSP_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    OSP_CHECK(peek() == c, "unexpected character in JSON input");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = c == 't';
        OSP_CHECK(consume_literal(c == 't' ? "true" : "false"),
                  "malformed JSON literal");
        return v;
      }
      case 'n': {
        OSP_CHECK(consume_literal("null"), "malformed JSON literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          OSP_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              OSP_CHECK(false, "invalid \\u escape digit");
            }
            code = code * 16 + digit;
          }
          pos_ += 4;
          // Artifacts only escape control characters; emit BMP code points
          // as UTF-8 so round-trips through json_quote stay lossless.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: OSP_CHECK(false, "unknown JSON escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' ||
                               c == 'e' || c == 'E' || c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    OSP_CHECK(pos_ > start, "expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    OSP_CHECK(end == token.c_str() + token.size(), "malformed JSON number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue json_parse(std::string_view text) {
  JsonParser parser(text);
  return parser.parse_document();
}

}  // namespace osp::util
