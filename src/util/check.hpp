// Lightweight runtime contract checking used across the OSP library.
//
// OSP_CHECK(cond, msg) throws osp::util::CheckError when the condition is
// violated. Checks stay enabled in release builds: the library is a research
// system where silent contract violations would corrupt experiment results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace osp::util {

/// Error thrown when an OSP_CHECK contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OSP_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace osp::util

#define OSP_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::osp::util::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                        ::std::string{"" __VA_ARGS__});   \
    }                                                                     \
  } while (false)
