#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace osp::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  OSP_CHECK(task != nullptr, "null task");
  {
    std::scoped_lock lock(mu_);
    OSP_CHECK(!stopping_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = size();
  if (n <= grain || max_chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const std::size_t block = (n + chunks - 1) / chunks;
  // The calling thread takes the first block; the pool takes the rest. This
  // keeps the caller busy instead of blocking in wait_idle immediately.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * block;
    const std::size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  fn(0, std::min(block, n));
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::scoped_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace osp::util
