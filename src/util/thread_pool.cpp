#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace osp::util {

namespace {

std::atomic<ThreadPool*> g_global_override{nullptr};

std::size_t default_pool_size() {
  if (const char* env = std::getenv("OSP_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

thread_local bool t_in_tracked_task = false;

}  // namespace

namespace detail {

void TaskState::run() {
  int expected = kQueued;
  if (!status.compare_exchange_strong(expected, kRunning,
                                      std::memory_order_acq_rel)) {
    return;  // someone else claimed it (worker vs. stealing joiner)
  }
  const bool was_in_task = t_in_tracked_task;
  t_in_tracked_task = true;
  fn();
  t_in_tracked_task = was_in_task;
  if (tracked != nullptr) {
    tracked->fetch_sub(1, std::memory_order_relaxed);
  }
  status.store(kDone, std::memory_order_release);
  {
    std::scoped_lock lock(mu);
    done = true;
  }
  done_cv.notify_all();
}

}  // namespace detail

bool TaskHandle::ready() const {
  return state_ != nullptr &&
         state_->status.load(std::memory_order_acquire) ==
             detail::TaskState::kDone;
}

void TaskHandle::join() {
  if (state_ == nullptr) return;
  // Steal: if the task is still queued, claim and run it here. The pool's
  // queued wrapper later finds the claim CAS failing and does nothing.
  state_->run();
  std::unique_lock lock(state_->mu);
  state_->done_cv.wait(lock, [&] { return state_->done; });
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_pool_size();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  OSP_CHECK(task != nullptr, "null task");
  {
    std::scoped_lock lock(mu_);
    OSP_CHECK(!stopping_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

TaskHandle ThreadPool::submit_task(std::function<void()> task) {
  OSP_CHECK(task != nullptr, "null task");
  auto state = std::make_shared<detail::TaskState>();
  state->fn = std::move(task);
  state->tracked = &tracked_in_flight_;
  tracked_in_flight_.fetch_add(1, std::memory_order_relaxed);
  submit([state] { state->run(); });
  return TaskHandle(std::move(state));
}

bool ThreadPool::in_task() { return t_in_tracked_task; }

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::drain_job(detail::ParallelForJob& job) {
  std::size_t mine = 0;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    job.invoke(job.fn, begin, end);
    ++mine;
  }
  if (mine > 0) {
    bool all_done;
    {
      std::scoped_lock lock(job.mu);
      job.completed += mine;
      all_done = job.completed == job.num_chunks;
    }
    if (all_done) job.done.notify_all();
  }
}

void ThreadPool::run_job(const std::shared_ptr<detail::ParallelForJob>& job) {
  // The caller takes chunks too, so at most num_chunks - 1 helpers are
  // useful. Each helper shares ownership of the control block; the
  // callable itself stays on the caller's stack and is only dereferenced
  // while a claimed chunk runs — i.e. strictly before the completion wait
  // below returns.
  const std::size_t helpers =
      std::min(workers_.size(), job->num_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([job] { drain_job(*job); });
  }
  drain_job(*job);
  // Wait for every chunk to finish. Helpers that have not even started yet
  // can never claim one at this point (next is exhausted), so this wait
  // only covers helpers mid-chunk — it cannot deadlock, even when this
  // caller is itself a pool worker inside an outer parallel_for.
  std::unique_lock lock(job->mu);
  job->done.wait(lock, [&] { return job->completed == job->num_chunks; });
}

ThreadPool& ThreadPool::global() {
  if (ThreadPool* override_pool =
          g_global_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  static ThreadPool pool;
  return pool;
}

ThreadPool::ScopedGlobal::ScopedGlobal(ThreadPool& pool)
    : previous_(g_global_override.exchange(&pool, std::memory_order_acq_rel)) {
}

ThreadPool::ScopedGlobal::~ScopedGlobal() {
  g_global_override.store(previous_, std::memory_order_release);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::scoped_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace osp::util
