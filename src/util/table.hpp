// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every figure/table bench prints an aligned text table (the "same rows the
// paper reports") and can also dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace osp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows (excluding the header).
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Format a double with `digits` places after the point.
  [[nodiscard]] static std::string fmt(double value, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace osp::util
