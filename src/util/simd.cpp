#include "util/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define OSP_SIMD_X86 1
#endif

namespace osp::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier. The elementwise loops and wire codecs are the seed
// implementations verbatim; the double reductions implement the 8-lane
// accumulation tree that every vector tier reproduces exactly (lane j owns
// elements base+j mod 8 of the range, lane totals combined serially).
// ---------------------------------------------------------------------------

constexpr std::size_t kLanes = 8;

void axpy_scalar(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_scalar(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void add_scalar(const float* a, const float* b, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

void add_copy2_scalar(const float* a, const float* b, float* d1, float* d2,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float s = a[i] + b[i];
    d1[i] = s;
    d2[i] = s;
  }
}

void sub_scalar(const float* a, const float* b, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

/// Serial combine of the 8 lane totals — identical in every tier.
double combine_lanes(const double* lanes) {
  double s = 0.0;
  for (std::size_t j = 0; j < kLanes; ++j) s += lanes[j];
  return s;
}

double dot_scalar(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      lanes[j] += static_cast<double>(a[i + j]) * static_cast<double>(b[i + j]);
    }
  }
  for (std::size_t j = 0; i < n; ++i, ++j) {
    lanes[j] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double abs_prod_sum_scalar(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      lanes[j] += std::abs(static_cast<double>(a[i + j]) *
                           static_cast<double>(b[i + j]));
    }
  }
  for (std::size_t j = 0; i < n; ++i, ++j) {
    lanes[j] +=
        std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i]));
  }
  return combine_lanes(lanes);
}

double l1_scalar(const float* x, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      lanes[j] += std::abs(static_cast<double>(x[i + j]));
    }
  }
  for (std::size_t j = 0; i < n; ++i, ++j) {
    lanes[j] += std::abs(static_cast<double>(x[i]));
  }
  return combine_lanes(lanes);
}

double l2sq_scalar(const float* x, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      lanes[j] +=
          static_cast<double>(x[i + j]) * static_cast<double>(x[i + j]);
    }
  }
  for (std::size_t j = 0; i < n; ++i, ++j) {
    lanes[j] += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return combine_lanes(lanes);
}

float max_abs_scalar(const float* x, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void quantize_dequantize_scalar(float* x, float scale, float inv,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float q = std::round(std::clamp(x[i] * inv, -127.0f, 127.0f));
    x[i] = q * scale;
  }
}

void abs_into_scalar(const float* x, float* mags, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) mags[i] = std::fabs(x[i]);
}

std::size_t count_gt_scalar(const float* mags, float threshold,
                            std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += mags[i] > threshold ? 1 : 0;
  return count;
}

std::size_t threshold_zero_scalar(float* grad, const float* mags,
                                  float threshold, std::size_t tie_slots,
                                  std::size_t n) {
  const std::size_t initial = tie_slots;
  for (std::size_t i = 0; i < n; ++i) {
    const float m = mags[i];
    if (m > threshold) continue;
    if (m == threshold && tie_slots > 0) {
      --tie_slots;
    } else {
      grad[i] = 0.0f;
    }
  }
  return initial - tie_slots;
}

void mask_zero_scalar(float* grad, const std::uint8_t* keep, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i] == 0) grad[i] = 0.0f;
  }
}

// Word-at-a-time bitmap codecs, both exhaustively verified against the
// per-bit loop. Packing multiplies a word of 0/1 bytes by the gather
// constant (byte k = 2^(7-k)): byte j's bit lands at position 8j+7+7k, so
// bit m of the top byte collects exactly byte m (all 64 partial exponents
// are distinct — no carries), matching the seed's per-bit format (bit i%8
// of output byte i/8). Unpacking replicates the mask byte across a word,
// isolates bit j in byte j via kBitSelect, and normalizes to 0/1 with an
// OR-fold.
constexpr std::uint64_t kPackGather = 0x0102040810204080ull;
constexpr std::uint64_t kBitSelect = 0x8040201008040201ull;
constexpr std::uint64_t kByteRep = 0x0101010101010101ull;

std::uint8_t pack8(const std::uint8_t* bytes) {
  std::uint64_t word;
  std::memcpy(&word, bytes, sizeof(word));
  // Normalize nonzero bytes to 1 before the multiply gather.
  word = (word | (word >> 4)) & 0x0f0f0f0f0f0f0f0full;
  word = (word | (word >> 2)) & 0x0303030303030303ull;
  word = (word | (word >> 1)) & kByteRep;
  return static_cast<std::uint8_t>((word * kPackGather) >> 56);
}

void pack_bits_scalar(const std::uint8_t* bytes, std::uint8_t* bits,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) bits[i / 8] = pack8(bytes + i);
  if (i < n) {
    std::uint8_t tail = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      if (bytes[i + j] != 0) tail |= static_cast<std::uint8_t>(1u << j);
    }
    bits[i / 8] = tail;
  }
}

void unpack8(std::uint8_t m, std::uint8_t* bytes) {
  std::uint64_t w = (static_cast<std::uint64_t>(m) * kByteRep) & kBitSelect;
  w |= w >> 4;
  w |= w >> 2;
  w |= w >> 1;
  w &= kByteRep;
  std::memcpy(bytes, &w, sizeof(w));
}

void unpack_bits_scalar(const std::uint8_t* bits, std::uint8_t* bytes,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) unpack8(bits[i / 8], bytes + i);
  for (; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>((bits[i / 8] >> (i % 8)) & 1u);
  }
}

constexpr Kernels kScalarKernels = {
    axpy_scalar,          scale_scalar,    add_scalar,
    add_copy2_scalar,     sub_scalar,      dot_scalar,
    abs_prod_sum_scalar,  l1_scalar,       l2sq_scalar,
    max_abs_scalar,       quantize_dequantize_scalar,
    abs_into_scalar,      count_gt_scalar, threshold_zero_scalar,
    mask_zero_scalar,     pack_bits_scalar, unpack_bits_scalar,
};

#ifdef OSP_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier. Elementwise kernels issue the exact mul/add sequence of the
// scalar loops lane-by-lane; reductions realize the 8-lane tree as two
// 4-double accumulators (lanes 0-3 / 4-7).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void axpy_avx2(float alpha, const float* x,
                                               float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void scale_avx2(float* x, float alpha,
                                                std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) void add_avx2(const float* a, const float* b,
                                              float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void add_copy2_avx2(const float* a,
                                                    const float* b, float* d1,
                                                    float* d2, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s =
        _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(d1 + i, s);
    _mm256_storeu_ps(d2 + i, s);
  }
  for (; i < n; ++i) {
    const float s = a[i] + b[i];
    d1[i] = s;
    d2[i] = s;
  }
}

__attribute__((target("avx2"))) void sub_avx2(const float* a, const float* b,
                                              float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

// Reduction helpers: convert the low/high float quads of a 256-bit load to
// doubles, keeping lane j = element (base + j).

#define OSP_REDUCE_TAIL(expr)                           \
  alignas(32) double lanes[kLanes];                     \
  _mm256_storeu_pd(lanes, lo);                          \
  _mm256_storeu_pd(lanes + 4, hi);                      \
  for (std::size_t j = 0; i < n; ++i, ++j) lanes[j] += (expr); \
  return combine_lanes(lanes)

__attribute__((target("avx2"))) double dot_avx2(const float* a, const float* b,
                                                std::size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    lo = _mm256_add_pd(lo, _mm256_mul_pd(alo, blo));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(ahi, bhi));
  }
  OSP_REDUCE_TAIL(static_cast<double>(a[i]) * static_cast<double>(b[i]));
}

__attribute__((target("avx2,fma"))) double dot_fma(const float* a,
                                                   const float* b,
                                                   std::size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    // double(a)*double(b) is exact (24-bit mantissas, 53-bit double), so
    // the fused multiply-add rounds identically to mul-then-add.
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)), hi);
  }
  OSP_REDUCE_TAIL(static_cast<double>(a[i]) * static_cast<double>(b[i]));
}

__attribute__((target("avx2"))) double abs_prod_sum_avx2(const float* a,
                                                         const float* b,
                                                         std::size_t n) {
  const __m256d dsign = _mm256_set1_pd(-0.0);
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d plo =
        _mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(vb)));
    const __m256d phi =
        _mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)));
    lo = _mm256_add_pd(lo, _mm256_andnot_pd(dsign, plo));
    hi = _mm256_add_pd(hi, _mm256_andnot_pd(dsign, phi));
  }
  OSP_REDUCE_TAIL(
      std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i])));
}

__attribute__((target("avx2,fma"))) double abs_prod_sum_fma(const float* a,
                                                            const float* b,
                                                            std::size_t n) {
  // |a*b| == |a| * |b| exactly (both products are exact in double), so the
  // abs can move onto the float inputs and the multiply-add can fuse.
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_andnot_ps(fsign, _mm256_loadu_ps(a + i));
    const __m256 vb = _mm256_andnot_ps(fsign, _mm256_loadu_ps(b + i));
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)), hi);
  }
  OSP_REDUCE_TAIL(
      std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i])));
}

__attribute__((target("avx2"))) double l1_avx2(const float* x, std::size_t n) {
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_andnot_ps(fsign, _mm256_loadu_ps(x + i));
    lo = _mm256_add_pd(lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    hi = _mm256_add_pd(hi, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  OSP_REDUCE_TAIL(std::abs(static_cast<double>(x[i])));
}

__attribute__((target("avx2"))) double l2sq_avx2(const float* x,
                                                 std::size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d vlo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d vhi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    lo = _mm256_add_pd(lo, _mm256_mul_pd(vlo, vlo));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(vhi, vhi));
  }
  OSP_REDUCE_TAIL(static_cast<double>(x[i]) * static_cast<double>(x[i]));
}

__attribute__((target("avx2,fma"))) double l2sq_fma(const float* x,
                                                    std::size_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d vlo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d vhi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    lo = _mm256_fmadd_pd(vlo, vlo, lo);
    hi = _mm256_fmadd_pd(vhi, vhi, hi);
  }
  OSP_REDUCE_TAIL(static_cast<double>(x[i]) * static_cast<double>(x[i]));
}

__attribute__((target("avx2"))) float max_abs_avx2(const float* x,
                                                   std::size_t n) {
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  __m256 vm = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vm = _mm256_max_ps(vm, _mm256_andnot_ps(fsign, _mm256_loadu_ps(x + i)));
  }
  alignas(32) float m8[8];
  _mm256_storeu_ps(m8, vm);
  float m = 0.0f;
  for (float v : m8) m = std::max(m, v);
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

// round-half-away-from-zero (std::round) built from round-half-even:
// t = rint(q); fix t += copysign(1, q) exactly when q - t == copysign(.5, q)
// (q was an exact half rounded toward zero by rint). Proven identical to
// std::round for all finite q; the clamp keeps |q| <= 127 anyway.
__attribute__((target("avx2"))) void quantize_dequantize_avx2(float* x,
                                                              float scale,
                                                              float inv,
                                                              std::size_t n) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 q = _mm256_min_ps(
        _mm256_max_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv), vlo), vhi);
    __m256 t = _mm256_round_ps(q, _MM_FROUND_TO_NEAREST_INT |
                                      _MM_FROUND_NO_EXC);
    const __m256 sign_bits = _mm256_and_ps(q, fsign);
    const __m256 fix =
        _mm256_cmp_ps(_mm256_sub_ps(q, t), _mm256_or_ps(sign_bits, half),
                      _CMP_EQ_OQ);
    t = _mm256_blendv_ps(t, _mm256_add_ps(t, _mm256_or_ps(sign_bits, one)),
                         fix);
    _mm256_storeu_ps(x + i, _mm256_mul_ps(t, vscale));
  }
  for (; i < n; ++i) {
    const float q = std::round(std::clamp(x[i] * inv, -127.0f, 127.0f));
    x[i] = q * scale;
  }
}

__attribute__((target("avx2"))) void abs_into_avx2(const float* x, float* mags,
                                                   std::size_t n) {
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(mags + i,
                     _mm256_andnot_ps(fsign, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) mags[i] = std::fabs(x[i]);
}

__attribute__((target("avx2"))) std::size_t count_gt_avx2(const float* mags,
                                                          float threshold,
                                                          std::size_t n) {
  const __m256 vt = _mm256_set1_ps(threshold);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gt = _mm256_cmp_ps(_mm256_loadu_ps(mags + i), vt, _CMP_GT_OQ);
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(gt))));
  }
  for (; i < n; ++i) count += mags[i] > threshold ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) std::size_t threshold_zero_avx2(
    float* grad, const float* mags, float threshold, std::size_t tie_slots,
    std::size_t n) {
  const std::size_t initial = tie_slots;
  const __m256 vt = _mm256_set1_ps(threshold);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 m = _mm256_loadu_ps(mags + i);
    const __m256 eq = _mm256_cmp_ps(m, vt, _CMP_EQ_OQ);
    if (_mm256_movemask_ps(eq) == 0) {
      // No threshold ties in this block: keep strictly-greater, zero the
      // rest with a mask — identical to the scalar per-element rule.
      const __m256 gt = _mm256_cmp_ps(m, vt, _CMP_GT_OQ);
      _mm256_storeu_ps(grad + i,
                       _mm256_and_ps(_mm256_loadu_ps(grad + i), gt));
    } else {
      // Ties present (rare): apply the sequential tie budget in index
      // order, exactly as the scalar tier does.
      for (std::size_t j = 0; j < 8; ++j) {
        const float mj = mags[i + j];
        if (mj > threshold) continue;
        if (mj == threshold && tie_slots > 0) {
          --tie_slots;
        } else {
          grad[i + j] = 0.0f;
        }
      }
    }
  }
  for (; i < n; ++i) {
    const float m = mags[i];
    if (m > threshold) continue;
    if (m == threshold && tie_slots > 0) {
      --tie_slots;
    } else {
      grad[i] = 0.0f;
    }
  }
  return initial - tie_slots;
}

__attribute__((target("avx2"))) void mask_zero_avx2(float* grad,
                                                    const std::uint8_t* keep,
                                                    std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(keep + i));
    const __m256i lanes32 = _mm256_cvtepu8_epi32(bytes);
    const __m256i keep_mask = _mm256_cmpgt_epi32(lanes32, zero);
    _mm256_storeu_ps(grad + i,
                     _mm256_and_ps(_mm256_loadu_ps(grad + i),
                                   _mm256_castsi256_ps(keep_mask)));
  }
  for (; i < n; ++i) {
    if (keep[i] == 0) grad[i] = 0.0f;
  }
}

__attribute__((target("avx2"))) void pack_bits_avx2(const std::uint8_t* bytes,
                                                    std::uint8_t* bits,
                                                    std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
    const std::uint32_t is_zero = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    const std::uint32_t mask = ~is_zero;
    std::memcpy(bits + i / 8, &mask, sizeof(mask));
  }
  if (i < n) pack_bits_scalar(bytes + i, bits + i / 8, n - i);
}

__attribute__((target("avx2"))) void unpack_bits_avx2(const std::uint8_t* bits,
                                                      std::uint8_t* bytes,
                                                      std::size_t n) {
  // Replicate each mask byte across its 8 output lanes, test the lane's
  // bit, normalize to 0/1.
  const __m256i ctrl = _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0,  //
                                        1, 1, 1, 1, 1, 1, 1, 1,  //
                                        2, 2, 2, 2, 2, 2, 2, 2,  //
                                        3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bitsel = _mm256_set1_epi64x(
      static_cast<long long>(0x8040201008040201ull));
  const __m256i ones = _mm256_set1_epi8(1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint32_t mask;
    std::memcpy(&mask, bits + i / 8, sizeof(mask));
    const __m256i rep =
        _mm256_shuffle_epi8(_mm256_set1_epi32(static_cast<int>(mask)), ctrl);
    const __m256i sel = _mm256_and_si256(rep, bitsel);
    const __m256i set = _mm256_cmpeq_epi8(sel, bitsel);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bytes + i),
                        _mm256_and_si256(set, ones));
  }
  if (i < n) unpack_bits_scalar(bits + i / 8, bytes + i, n - i);
}

// ---------------------------------------------------------------------------
// AVX-512 tier (F+BW+DQ+VL). Same contracts at twice the width; the
// reductions keep the single 8-double-lane accumulator, so the tree is
// unchanged — AVX-512 just halves the instruction count per 8 elements.
// ---------------------------------------------------------------------------

#define OSP_T512 "avx512f,avx512bw,avx512dq,avx512vl"

__attribute__((target(OSP_T512))) void axpy_avx512(float alpha,
                                                   const float* x, float* y,
                                                   std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vy = _mm512_loadu_ps(y + i);
    const __m512 vx = _mm512_loadu_ps(x + i);
    _mm512_storeu_ps(y + i, _mm512_add_ps(vy, _mm512_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target(OSP_T512))) void scale_avx512(float* x, float alpha,
                                                    std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(_mm512_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target(OSP_T512))) void add_avx512(const float* a,
                                                  const float* b, float* dst,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        dst + i, _mm512_add_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

__attribute__((target(OSP_T512))) void add_copy2_avx512(const float* a,
                                                        const float* b,
                                                        float* d1, float* d2,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 s =
        _mm512_add_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    _mm512_storeu_ps(d1 + i, s);
    _mm512_storeu_ps(d2 + i, s);
  }
  for (; i < n; ++i) {
    const float s = a[i] + b[i];
    d1[i] = s;
    d2[i] = s;
  }
}

__attribute__((target(OSP_T512))) void sub_avx512(const float* a,
                                                  const float* b, float* dst,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        dst + i, _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

#define OSP_REDUCE_TAIL_512(expr)                        \
  alignas(64) double lanes[kLanes];                      \
  _mm512_storeu_pd(lanes, acc);                          \
  for (std::size_t j = 0; i < n; ++i, ++j) lanes[j] += (expr); \
  return combine_lanes(lanes)

__attribute__((target(OSP_T512))) double dot_avx512(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_fmadd_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i)),
                          _mm512_cvtps_pd(_mm256_loadu_ps(b + i)), acc);
  }
  OSP_REDUCE_TAIL_512(static_cast<double>(a[i]) * static_cast<double>(b[i]));
}

__attribute__((target(OSP_T512))) double abs_prod_sum_avx512(const float* a,
                                                             const float* b,
                                                             std::size_t n) {
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_andnot_ps(fsign, _mm256_loadu_ps(a + i));
    const __m256 vb = _mm256_andnot_ps(fsign, _mm256_loadu_ps(b + i));
    acc = _mm512_fmadd_pd(_mm512_cvtps_pd(va), _mm512_cvtps_pd(vb), acc);
  }
  OSP_REDUCE_TAIL_512(
      std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i])));
}

__attribute__((target(OSP_T512))) double l1_avx512(const float* x,
                                                   std::size_t n) {
  const __m256 fsign = _mm256_set1_ps(-0.0f);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(
        acc,
        _mm512_cvtps_pd(_mm256_andnot_ps(fsign, _mm256_loadu_ps(x + i))));
  }
  OSP_REDUCE_TAIL_512(std::abs(static_cast<double>(x[i])));
}

__attribute__((target(OSP_T512))) double l2sq_avx512(const float* x,
                                                     std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(x + i));
    acc = _mm512_fmadd_pd(v, v, acc);
  }
  OSP_REDUCE_TAIL_512(static_cast<double>(x[i]) * static_cast<double>(x[i]));
}

__attribute__((target(OSP_T512))) float max_abs_avx512(const float* x,
                                                       std::size_t n) {
  const __m512 fsign = _mm512_set1_ps(-0.0f);
  __m512 vm = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vm = _mm512_max_ps(vm, _mm512_andnot_ps(fsign, _mm512_loadu_ps(x + i)));
  }
  float m = _mm512_reduce_max_ps(vm);
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

__attribute__((target(OSP_T512))) void quantize_dequantize_avx512(
    float* x, float scale, float inv, std::size_t n) {
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vlo = _mm512_set1_ps(-127.0f);
  const __m512 vhi = _mm512_set1_ps(127.0f);
  const __m512 fsign = _mm512_set1_ps(-0.0f);
  const __m512 half = _mm512_set1_ps(0.5f);
  const __m512 one = _mm512_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 q = _mm512_min_ps(
        _mm512_max_ps(_mm512_mul_ps(_mm512_loadu_ps(x + i), vinv), vlo), vhi);
    __m512 t = _mm512_roundscale_ps(
        q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m512 sign_bits = _mm512_and_ps(q, fsign);
    const __mmask16 fix = _mm512_cmp_ps_mask(
        _mm512_sub_ps(q, t), _mm512_or_ps(sign_bits, half), _CMP_EQ_OQ);
    t = _mm512_mask_add_ps(t, fix, t, _mm512_or_ps(sign_bits, one));
    _mm512_storeu_ps(x + i, _mm512_mul_ps(t, vscale));
  }
  for (; i < n; ++i) {
    const float q = std::round(std::clamp(x[i] * inv, -127.0f, 127.0f));
    x[i] = q * scale;
  }
}

__attribute__((target(OSP_T512))) void abs_into_avx512(const float* x,
                                                       float* mags,
                                                       std::size_t n) {
  const __m512 fsign = _mm512_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(mags + i,
                     _mm512_andnot_ps(fsign, _mm512_loadu_ps(x + i)));
  }
  for (; i < n; ++i) mags[i] = std::fabs(x[i]);
}

__attribute__((target(OSP_T512))) std::size_t count_gt_avx512(
    const float* mags, float threshold, std::size_t n) {
  const __m512 vt = _mm512_set1_ps(threshold);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 gt =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(mags + i), vt, _CMP_GT_OQ);
    count += static_cast<std::size_t>(__builtin_popcount(gt));
  }
  for (; i < n; ++i) count += mags[i] > threshold ? 1 : 0;
  return count;
}

__attribute__((target(OSP_T512))) std::size_t threshold_zero_avx512(
    float* grad, const float* mags, float threshold, std::size_t tie_slots,
    std::size_t n) {
  const std::size_t initial = tie_slots;
  const __m512 vt = _mm512_set1_ps(threshold);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 m = _mm512_loadu_ps(mags + i);
    if (_mm512_cmp_ps_mask(m, vt, _CMP_EQ_OQ) == 0) {
      const __mmask16 gt = _mm512_cmp_ps_mask(m, vt, _CMP_GT_OQ);
      _mm512_storeu_ps(grad + i,
                       _mm512_maskz_mov_ps(gt, _mm512_loadu_ps(grad + i)));
    } else {
      for (std::size_t j = 0; j < 16; ++j) {
        const float mj = mags[i + j];
        if (mj > threshold) continue;
        if (mj == threshold && tie_slots > 0) {
          --tie_slots;
        } else {
          grad[i + j] = 0.0f;
        }
      }
    }
  }
  for (; i < n; ++i) {
    const float m = mags[i];
    if (m > threshold) continue;
    if (m == threshold && tie_slots > 0) {
      --tie_slots;
    } else {
      grad[i] = 0.0f;
    }
  }
  return initial - tie_slots;
}

__attribute__((target(OSP_T512))) void mask_zero_avx512(
    float* grad, const std::uint8_t* keep, std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keep + i));
    const __mmask16 keep_mask =
        _mm512_cmpgt_epi32_mask(_mm512_cvtepu8_epi32(bytes), zero);
    _mm512_storeu_ps(
        grad + i, _mm512_maskz_mov_ps(keep_mask, _mm512_loadu_ps(grad + i)));
  }
  for (; i < n; ++i) {
    if (keep[i] == 0) grad[i] = 0.0f;
  }
}

__attribute__((target(OSP_T512))) void pack_bits_avx512(
    const std::uint8_t* bytes, std::uint8_t* bits, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(bytes + i));
    const std::uint64_t mask = _mm512_test_epi8_mask(v, v);
    std::memcpy(bits + i / 8, &mask, sizeof(mask));
  }
  if (i < n) pack_bits_scalar(bytes + i, bits + i / 8, n - i);
}

__attribute__((target(OSP_T512))) void unpack_bits_avx512(
    const std::uint8_t* bits, std::uint8_t* bytes, std::size_t n) {
  const __m512i ones = _mm512_set1_epi8(1);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t mask;
    std::memcpy(&mask, bits + i / 8, sizeof(mask));
    _mm512_storeu_si512(reinterpret_cast<void*>(bytes + i),
                        _mm512_maskz_mov_epi8(mask, ones));
  }
  if (i < n) unpack_bits_scalar(bits + i / 8, bytes + i, n - i);
}

#undef OSP_T512
#undef OSP_REDUCE_TAIL
#undef OSP_REDUCE_TAIL_512

constexpr Kernels kAvx2Kernels = {
    axpy_avx2,          scale_avx2,    add_avx2,
    add_copy2_avx2,     sub_avx2,      dot_avx2,
    abs_prod_sum_avx2,  l1_avx2,       l2sq_avx2,
    max_abs_avx2,       quantize_dequantize_avx2,
    abs_into_avx2,      count_gt_avx2, threshold_zero_avx2,
    mask_zero_avx2,     pack_bits_avx2, unpack_bits_avx2,
};

// The FMA tier shares every elementwise/codec kernel with AVX2 (a fused
// float op would change rounding); only the double reductions fuse.
constexpr Kernels kAvx2FmaKernels = {
    axpy_avx2,          scale_avx2,    add_avx2,
    add_copy2_avx2,     sub_avx2,      dot_fma,
    abs_prod_sum_fma,   l1_avx2,       l2sq_fma,
    max_abs_avx2,       quantize_dequantize_avx2,
    abs_into_avx2,      count_gt_avx2, threshold_zero_avx2,
    mask_zero_avx2,     pack_bits_avx2, unpack_bits_avx2,
};

constexpr Kernels kAvx512Kernels = {
    axpy_avx512,          scale_avx512,    add_avx512,
    add_copy2_avx512,     sub_avx512,      dot_avx512,
    abs_prod_sum_avx512,  l1_avx512,       l2sq_avx512,
    max_abs_avx512,       quantize_dequantize_avx512,
    abs_into_avx512,      count_gt_avx512, threshold_zero_avx512,
    mask_zero_avx512,     pack_bits_avx512, unpack_bits_avx512,
};

#endif  // OSP_SIMD_X86

Tier detect_hardware_tier() {
#ifdef OSP_SIMD_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return __builtin_cpu_supports("fma") ? Tier::kAvx2Fma : Tier::kAvx2;
  }
#endif
  return Tier::kScalar;
}

Tier clamp_to_hardware(Tier t) { return std::min(t, hardware_tier()); }

Tier env_default_tier() {
  const Tier hw = hardware_tier();
  if (const char* env = std::getenv("OSP_SIMD_TIER")) {
    if (const auto parsed = parse_tier(env)) return clamp_to_hardware(*parsed);
  }
  return hw;
}

std::atomic<Tier> g_active_tier{env_default_tier()};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx2Fma:
      return "avx2fma";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Tier> parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx2fma" || name == "fma") return Tier::kAvx2Fma;
  if (name == "avx512") return Tier::kAvx512;
  return std::nullopt;
}

Tier hardware_tier() {
  static const Tier hw = detect_hardware_tier();
  return hw;
}

Tier active_tier() { return g_active_tier.load(std::memory_order_relaxed); }

Tier force_tier(Tier t) {
  const Tier installed = clamp_to_hardware(t);
  g_active_tier.store(installed, std::memory_order_relaxed);
  return installed;
}

void reset_tier() {
  g_active_tier.store(env_default_tier(), std::memory_order_relaxed);
}

const Kernels& kernels(Tier t) {
#ifdef OSP_SIMD_X86
  switch (clamp_to_hardware(t)) {
    case Tier::kAvx512:
      return kAvx512Kernels;
    case Tier::kAvx2Fma:
      return kAvx2FmaKernels;
    case Tier::kAvx2:
      return kAvx2Kernels;
    case Tier::kScalar:
      break;
  }
#else
  (void)t;
#endif
  return kScalarKernels;
}

}  // namespace osp::util::simd
