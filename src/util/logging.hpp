// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage: OSP_LOG(Info) << "epoch " << e << " acc=" << acc;
// Messages below the global threshold are compiled to a no-op stream.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace osp::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

[[nodiscard]] const char* log_level_name(LogLevel level);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace osp::util

#define OSP_LOG(severity)                                             \
  ::osp::util::detail::LogMessage(::osp::util::LogLevel::severity,    \
                                  __FILE__, __LINE__)
