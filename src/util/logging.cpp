#include "util/logging.hpp"

#include <atomic>
#include <cstring>

namespace osp::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_io_mu;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << '[' << log_level_name(level_) << ' '
          << (base != nullptr ? base + 1 : file) << ':' << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::scoped_lock lock(g_io_mu);
  std::cerr << stream_.str() << '\n';
}

}  // namespace detail
}  // namespace osp::util
