// Minimal JSON emission for machine-readable bench/perf artifacts.
//
// The bench harnesses emit flat arrays of records (BENCH_*.json) that the
// perf-trajectory tooling diffs across PRs. Only what that needs is
// implemented: objects of scalar fields, arrays of objects, and correct
// string escaping. Field order is preserved (insertion order) so diffs
// stay stable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace osp::util {

/// One flat JSON object: ordered key -> scalar (string/double/integer/bool).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::size_t value);
  JsonObject& set(const std::string& key, bool value);

  /// Serialized form, e.g. {"op":"matmul","gflops":12.3}.
  [[nodiscard]] std::string str() const;

 private:
  // Values are stored pre-serialized; keys escaped at set() time.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Serialize a list of objects as a pretty-printed JSON array.
[[nodiscard]] std::string json_array(const std::vector<JsonObject>& items);

/// Write a JSON array of records to `path`. Returns false on I/O failure.
bool write_json_array(const std::string& path,
                      const std::vector<JsonObject>& items);

/// Escape and quote a string for embedding in JSON output.
[[nodiscard]] std::string json_quote(const std::string& s);

/// Parsed JSON value (read side of the artifact tooling: the run inspector
/// consumes the traces and telemetry the emitters above produce). Numbers
/// are kept as doubles — the artifacts only carry values that survive that.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each OSP_CHECKs the kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  fields() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Parse a complete JSON document. Throws util::CheckError on malformed
/// input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace osp::util
