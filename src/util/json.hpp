// Minimal JSON emission for machine-readable bench/perf artifacts.
//
// The bench harnesses emit flat arrays of records (BENCH_*.json) that the
// perf-trajectory tooling diffs across PRs. Only what that needs is
// implemented: objects of scalar fields, arrays of objects, and correct
// string escaping. Field order is preserved (insertion order) so diffs
// stay stable.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace osp::util {

/// One flat JSON object: ordered key -> scalar (string/double/integer/bool).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::size_t value);
  JsonObject& set(const std::string& key, bool value);

  /// Serialized form, e.g. {"op":"matmul","gflops":12.3}.
  [[nodiscard]] std::string str() const;

 private:
  // Values are stored pre-serialized; keys escaped at set() time.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Serialize a list of objects as a pretty-printed JSON array.
[[nodiscard]] std::string json_array(const std::vector<JsonObject>& items);

/// Write a JSON array of records to `path`. Returns false on I/O failure.
bool write_json_array(const std::string& path,
                      const std::vector<JsonObject>& items);

/// Escape and quote a string for embedding in JSON output.
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace osp::util
