#include "util/vec_math.hpp"

#include <cmath>
#include <cstring>

#include "util/check.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace osp::util {

namespace {

// Elementwise kernels run in parallel once a block is large enough that the
// pool handoff is amortized; below the threshold they run inline. The split
// never changes results (every element is computed independently).
constexpr std::size_t kElemwiseGrain = 1 << 16;

// Reductions are chunked into fixed-size partials summed in chunk order, so
// the result is deterministic and independent of the pool size. The chunk
// grouping does reassociate the double accumulation, so the threshold is
// set high: blocks below ~1M elements (every proxy-model layer block)
// reduce serially and keep their bit pattern.
constexpr std::size_t kReduceParallelMin = 1 << 20;
constexpr std::size_t kReduceChunk = 1 << 18;

/// Deterministic parallel reduction: partial[i] covers the fixed range
/// [i*kReduceChunk, ...); partials are combined in index order. Each chunk
/// runs the dispatched kernel's 8-lane accumulation tree based at the chunk
/// start, so the result is also independent of the pool size and the tier.
template <typename PartialFn>
double chunked_reduce(std::size_t n, const PartialFn& partial) {
  const std::size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  std::vector<double> partials(num_chunks, 0.0);
  ThreadPool::global().parallel_for(
      num_chunks,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const std::size_t begin = c * kReduceChunk;
          const std::size_t end = std::min(n, begin + kReduceChunk);
          partials[c] = partial(begin, end);
        }
      },
      1);
  double s = 0.0;
  for (double p : partials) s += p;
  return s;
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  OSP_CHECK(x.size() == y.size(), "axpy size mismatch");
  const simd::Kernels& k = simd::kernels();
  const float* px = x.data();
  float* py = y.data();
  ThreadPool::global().parallel_for(
      x.size(),
      [&](std::size_t b, std::size_t e) { k.axpy(alpha, px + b, py + b, e - b); },
      kElemwiseGrain);
}

void scale(std::span<float> x, float alpha) {
  const simd::Kernels& k = simd::kernels();
  float* px = x.data();
  ThreadPool::global().parallel_for(
      x.size(),
      [&](std::size_t b, std::size_t e) { k.scale(px + b, alpha, e - b); },
      kElemwiseGrain);
}

void copy(std::span<const float> src, std::span<float> dst) {
  OSP_CHECK(src.size() == dst.size(), "copy size mismatch");
  if (!src.empty()) {
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

void fill(std::span<float> x, float value) {
  for (float& v : x) v = value;
}

double dot(std::span<const float> a, std::span<const float> b) {
  OSP_CHECK(a.size() == b.size(), "dot size mismatch");
  const simd::Kernels& k = simd::kernels();
  const std::size_t n = a.size();
  const float* pa = a.data();
  const float* pb = b.data();
  const auto range = [&](std::size_t begin, std::size_t end) {
    return k.dot(pa + begin, pb + begin, end - begin);
  };
  if (n < kReduceParallelMin) return range(0, n);
  return chunked_reduce(n, range);
}

double abs_prod_sum(std::span<const float> a, std::span<const float> b) {
  OSP_CHECK(a.size() == b.size(), "abs_prod_sum size mismatch");
  const simd::Kernels& k = simd::kernels();
  const std::size_t n = a.size();
  const float* pa = a.data();
  const float* pb = b.data();
  const auto range = [&](std::size_t begin, std::size_t end) {
    return k.abs_prod_sum(pa + begin, pb + begin, end - begin);
  };
  if (n < kReduceParallelMin) return range(0, n);
  return chunked_reduce(n, range);
}

double l2_norm(std::span<const float> x) {
  const simd::Kernels& k = simd::kernels();
  const std::size_t n = x.size();
  const float* px = x.data();
  const auto range = [&](std::size_t begin, std::size_t end) {
    return k.l2sq(px + begin, end - begin);
  };
  const double s = n < kReduceParallelMin ? range(0, n) : chunked_reduce(n, range);
  return std::sqrt(s);
}

double l1_norm(std::span<const float> x) {
  const simd::Kernels& k = simd::kernels();
  const std::size_t n = x.size();
  const float* px = x.data();
  const auto range = [&](std::size_t begin, std::size_t end) {
    return k.l1(px + begin, end - begin);
  };
  if (n < kReduceParallelMin) return range(0, n);
  return chunked_reduce(n, range);
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> dst) {
  OSP_CHECK(a.size() == b.size() && a.size() == dst.size(),
            "sub size mismatch");
  const simd::Kernels& k = simd::kernels();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pd = dst.data();
  ThreadPool::global().parallel_for(
      a.size(),
      [&](std::size_t begin, std::size_t end) {
        k.sub(pa + begin, pb + begin, pd + begin, end - begin);
      },
      kElemwiseGrain);
}

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> dst) {
  OSP_CHECK(a.size() == b.size() && a.size() == dst.size(),
            "add size mismatch");
  const simd::Kernels& k = simd::kernels();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pd = dst.data();
  ThreadPool::global().parallel_for(
      a.size(),
      [&](std::size_t begin, std::size_t end) {
        k.add(pa + begin, pb + begin, pd + begin, end - begin);
      },
      kElemwiseGrain);
}

}  // namespace osp::util
