#include "util/vec_math.hpp"

#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace osp::util {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  OSP_CHECK(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

void copy(std::span<const float> src, std::span<float> dst) {
  OSP_CHECK(src.size() == dst.size(), "copy size mismatch");
  if (!src.empty()) {
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

void fill(std::span<float> x, float value) {
  for (float& v : x) v = value;
}

double dot(std::span<const float> a, std::span<const float> b) {
  OSP_CHECK(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double abs_prod_sum(std::span<const float> a, std::span<const float> b) {
  OSP_CHECK(a.size() == b.size(), "abs_prod_sum size mismatch");
  double s = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    s += std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i]));
  }
  return s;
}

double l2_norm(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

double l1_norm(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += std::abs(static_cast<double>(v));
  return s;
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> dst) {
  OSP_CHECK(a.size() == b.size() && a.size() == dst.size(),
            "sub size mismatch");
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> dst) {
  OSP_CHECK(a.size() == b.size() && a.size() == dst.size(),
            "add size mismatch");
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

}  // namespace osp::util
