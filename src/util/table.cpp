#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace osp::util {

namespace {
std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OSP_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  OSP_CHECK(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  auto print_rule = [&] {
    for (std::size_t width : widths) {
      os << '+' << std::string(width + 2, '-');
    }
    os << "+\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  print_csv(out);
  return static_cast<bool>(out);
}

std::string Table::fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace osp::util
