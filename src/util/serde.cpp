#include "util/serde.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>

namespace osp::util::serde {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> b) {
  u64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::f32_vec(std::span<const float> v) {
  u64(v.size());
  if (v.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    // The wire format is the little-endian IEEE bit pattern, which on an
    // LE host is exactly the in-memory representation.
    const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), raw, raw + v.size() * sizeof(float));
  } else {
    for (float x : v) f32(x);
  }
}

void Writer::f64_vec(std::span<const double> v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Writer::u64_vec(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void Writer::size_vec(std::span<const std::size_t> v) {
  u64(v.size());
  for (std::size_t x : v) u64(static_cast<std::uint64_t>(x));
}

void Writer::bool_vec(const std::vector<bool>& v) {
  u64(v.size());
  for (bool x : v) u8(x ? 1 : 0);
}

std::uint8_t Reader::u8() {
  OSP_CHECK(pos_ < data_.size(), "serde: payload underflow reading u8");
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  OSP_CHECK(remaining() >= 4, "serde: payload underflow reading u32");
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t Reader::u64() {
  OSP_CHECK(remaining() >= 8, "serde: payload underflow reading u64");
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  OSP_CHECK(v <= 1, "serde: boolean byte is neither 0 nor 1");
  return v != 0;
}

void Reader::check_count(std::uint64_t count, std::size_t elem_bytes) const {
  OSP_CHECK(elem_bytes == 0 || count <= remaining() / elem_bytes,
            "serde: declared array length exceeds remaining payload");
}

std::string Reader::str() {
  std::uint32_t n = u32();
  check_count(n, 1);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> Reader::bytes() {
  std::uint64_t n = u64();
  check_count(n, 1);
  std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

std::vector<float> Reader::f32_vec() {
  std::uint64_t n = u64();
  check_count(n, 4);
  std::vector<float> v(n);
  read_f32_block(v);
  return v;
}

void Reader::f32_into(std::span<float> out) {
  std::uint64_t n = u64();
  check_count(n, 4);
  OSP_CHECK(n == out.size(),
            "serde: f32 array length does not match destination");
  read_f32_block(out);
}

void Reader::read_f32_block(std::span<float> out) {
  if (out.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_.data() + pos_, out.size() * sizeof(float));
    pos_ += out.size() * sizeof(float);
  } else {
    for (float& x : out) x = f32();
  }
}

std::vector<double> Reader::f64_vec() {
  std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<std::uint64_t> Reader::u64_vec() {
  std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = u64();
  return v;
}

std::vector<std::size_t> Reader::size_vec() {
  std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<std::size_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = static_cast<std::size_t>(u64());
  return v;
}

std::vector<bool> Reader::bool_vec() {
  std::uint64_t n = u64();
  check_count(n, 1);
  std::vector<bool> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = boolean();
  return v;
}

void Reader::expect_done() const {
  OSP_CHECK(done(), "serde: trailing bytes after payload");
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void write_file(const std::string& path, std::string_view magic,
                std::uint32_t version, std::span<const std::uint8_t> payload) {
  OSP_CHECK(magic.size() == 8, "serde: magic must be exactly 8 bytes");
  Writer envelope;
  envelope.u32(version);
  envelope.u64(payload.size());

  FilePtr f(std::fopen(path.c_str(), "wb"));
  OSP_CHECK(f != nullptr, "serde: cannot open file for writing: " + path);
  auto put = [&](std::span<const std::uint8_t> b) {
    OSP_CHECK(std::fwrite(b.data(), 1, b.size(), f.get()) == b.size(),
              "serde: short write to " + path);
  };
  put(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(magic.data()), magic.size()));
  put(envelope.data());
  put(payload);
  Writer tail;
  tail.u32(crc32(payload));
  put(tail.data());
  OSP_CHECK(std::fflush(f.get()) == 0, "serde: flush failed for " + path);
}

FileContents read_file(const std::string& path, std::string_view magic,
                       std::uint32_t max_supported_version) {
  OSP_CHECK(magic.size() == 8, "serde: magic must be exactly 8 bytes");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  OSP_CHECK(f != nullptr, "serde: cannot open file for reading: " + path);

  std::vector<std::uint8_t> raw;
  std::array<std::uint8_t, 65536> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), f.get())) > 0) {
    raw.insert(raw.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(got));
  }
  OSP_CHECK(std::ferror(f.get()) == 0, "serde: read error on " + path);

  OSP_CHECK(raw.size() >= 8 + 4 + 8 + 4,
            "serde: file too short to hold an envelope: " + path);
  OSP_CHECK(std::memcmp(raw.data(), magic.data(), 8) == 0,
            "serde: bad magic in " + path);

  Reader header(std::span<const std::uint8_t>(raw).subspan(8, 12));
  FileContents out;
  out.version = header.u32();
  OSP_CHECK(out.version >= 1 && out.version <= max_supported_version,
            "serde: unsupported format version in " + path);
  std::uint64_t payload_len = header.u64();

  const std::size_t body_off = 8 + 12;
  OSP_CHECK(raw.size() == body_off + payload_len + 4,
            "serde: file length does not match envelope (truncated or "
            "trailing bytes): " + path);

  auto payload = std::span<const std::uint8_t>(raw).subspan(body_off, payload_len);
  Reader tail(std::span<const std::uint8_t>(raw).subspan(body_off + payload_len, 4));
  std::uint32_t stored_crc = tail.u32();
  OSP_CHECK(crc32(payload) == stored_crc,
            "serde: CRC mismatch (file is corrupted): " + path);

  out.payload.assign(payload.begin(), payload.end());
  return out;
}

}  // namespace osp::util::serde
