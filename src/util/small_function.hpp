// A move-only callable with small-buffer optimization.
//
// std::function heap-allocates any capture larger than ~16 bytes, which
// makes every simulator event (capturing this + epoch + flow id, or the
// runtime's fatter completion lambdas) a malloc/free pair on the hottest
// loop in the codebase. SmallFunction stores captures up to `BufferSize`
// bytes inline in the event record and only falls back to the heap beyond
// that. It is move-only: events are scheduled once, moved into the queue,
// and consumed once, so copyability buys nothing and would force captured
// state to be copyable too.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace osp::util {

template <typename Signature, std::size_t BufferSize = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t BufferSize>
class SmallFunction<R(Args...), BufferSize> {
 public:
  SmallFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kInline<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      invoke_ = [](SmallFunction& self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(self.buffer_)))(
            std::forward<Args>(args)...);
      };
      if constexpr (std::is_trivially_copyable_v<Fn>) {
        // All trivially-copyable callables share one manage function;
        // move_from/reset recognize its address and inline the work
        // (memcpy / no-op), skipping the indirect call on the event
        // queue's sift path.
        manage_ = &trivial_manage;
      } else {
        manage_ = [](SmallFunction* self, SmallFunction* from) {
          if (from != nullptr) {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from->buffer_));
            ::new (static_cast<void*>(self->buffer_)) Fn(std::move(*src));
            src->~Fn();
          } else {
            std::launder(reinterpret_cast<Fn*>(self->buffer_))->~Fn();
          }
        };
      }
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](SmallFunction& self, Args&&... args) -> R {
        return (*static_cast<Fn*>(self.heap_))(std::forward<Args>(args)...);
      };
      manage_ = [](SmallFunction* self, SmallFunction* from) {
        if (from != nullptr) {
          self->heap_ = from->heap_;
          from->heap_ = nullptr;
        } else {
          delete static_cast<Fn*>(self->heap_);
        }
      };
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(*this, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  template <typename Fn>
  static constexpr bool kInline =
      sizeof(Fn) <= BufferSize &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  /// Shared manage for trivially-copyable inline callables: move is a raw
  /// buffer copy, destroy is a no-op. Kept as a real function so manage_
  /// is never null while a callable is held, but both call sites test for
  /// this address and inline the operation.
  static void trivial_manage(SmallFunction* self, SmallFunction* from) {
    if (from != nullptr) std::memcpy(self->buffer_, from->buffer_, BufferSize);
  }

  void move_from(SmallFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ == &trivial_manage) {
      std::memcpy(buffer_, other.buffer_, BufferSize);
    } else if (manage_ != nullptr) {
      manage_(this, &other);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr && manage_ != &trivial_manage) {
      manage_(this, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char buffer_[BufferSize];
    void* heap_;
  };
  R (*invoke_)(SmallFunction&, Args&&...) = nullptr;
  /// Moves `*from` into `*self` when from != nullptr, destroys `*self`'s
  /// callable otherwise. One pointer covers both operations so the event
  /// record stays at two words of overhead.
  void (*manage_)(SmallFunction*, SmallFunction*) = nullptr;
};

}  // namespace osp::util
