#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace osp::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ema::Ema(double alpha) : alpha_(alpha) {
  OSP_CHECK(alpha > 0.0 && alpha <= 1.0, "EMA alpha must be in (0, 1]");
}

void Ema::add(double x) {
  if (empty_) {
    value_ = x;
    empty_ = false;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double percentile(std::span<const double> xs, double q) {
  OSP_CHECK(!xs.empty(), "percentile of empty sample");
  OSP_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

}  // namespace osp::util
