// Flat float-vector kernels shared by the optimizer, the sync models, and
// the OSP correction math. These run on contiguous parameter/gradient
// blocks and are the hot path of aggregation, so they are kept branch-free
// and autovectorizer-friendly.
#pragma once

#include <cstddef>
#include <span>

namespace osp::util {

/// y += alpha * x. Sizes must match.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(std::span<float> x, float alpha);

/// dst = src (sizes must match).
void copy(std::span<const float> src, std::span<float> dst);

/// Fill x with the given value.
void fill(std::span<float> x, float value);

/// Dot product.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Sum of |a_i * b_i| — the Parameter-Gradient Production kernel (Eq. 4).
[[nodiscard]] double abs_prod_sum(std::span<const float> a,
                                  std::span<const float> b);

/// Euclidean norm.
[[nodiscard]] double l2_norm(std::span<const float> x);

/// Sum of absolute values.
[[nodiscard]] double l1_norm(std::span<const float> x);

/// dst = a - b (sizes must match).
void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> dst);

/// dst = a + b (sizes must match).
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> dst);

}  // namespace osp::util
