// Deterministic pseudo-random number generation.
//
// All stochastic choices in the library (weight init, dataset synthesis,
// straggler jitter, shuffling) draw from seeded xoshiro256** streams so
// every experiment is exactly reproducible across runs and platforms.
// std::mt19937 + std::normal_distribution are avoided because their output
// is not guaranteed identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace osp::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Snapshot of an Rng stream, including the Box–Muller spare so a
/// restored stream replays the exact same normal() sequence.
struct RngState {
  std::uint64_t s[4]{};
  bool have_spare_normal = false;
  double spare_normal = 0.0;
};

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  /// Reinitialize the stream from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream; `stream_id` selects the child.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    std::uint64_t mix = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64(mix)};
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (for std::shuffle-style use).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, platform-stable).
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given rate (lambda).
  [[nodiscard]] double exponential(double rate);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>{items});
  }

  [[nodiscard]] RngState state() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.have_spare_normal = have_spare_normal_;
    st.spare_normal = spare_normal_;
    return st;
  }

  void set_state(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    have_spare_normal_ = st.have_spare_normal;
    spare_normal_ = st.spare_normal;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace osp::util
