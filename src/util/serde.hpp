// Versioned binary serialization for run-level checkpoints.
//
// The format is deliberately boring: explicit little-endian scalars
// (byte-shifted, never memcpy'd structs, so the encoding is identical on
// any host), length-prefixed strings and arrays, and a file envelope of
//   magic (8 bytes) | u32 version | u64 payload length | payload | u32 CRC32
// so a reader can reject the three interesting failure classes — wrong
// file, truncated file, corrupted file — before interpreting a single
// payload byte. Floats travel as their IEEE-754 bit patterns (bit_cast),
// which is what makes checkpoint/resume bit-identical rather than merely
// "close".
//
// Reader performs a bounds check on every read and throws
// util::CheckError on underflow, so a malformed payload can never cause
// an out-of-bounds read; array reads additionally bound the declared
// element count by the bytes actually remaining, so a corrupted length
// cannot trigger a pathological allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace osp::util::serde {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  /// u64 length prefix + raw bytes (nestable sub-payloads).
  void bytes(std::span<const std::uint8_t> b);

  // Length-prefixed (u64 count) homogeneous arrays.
  void f32_vec(std::span<const float> v);
  void f64_vec(std::span<const double> v);
  void u64_vec(std::span<const std::uint64_t> v);
  void size_vec(std::span<const std::size_t> v);
  void bool_vec(const std::vector<bool>& v);

  [[nodiscard]] std::span<const std::uint8_t> data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] float f32() { return std::bit_cast<float>(u32()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean();

  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> bytes();

  [[nodiscard]] std::vector<float> f32_vec();
  /// Read a u64-prefixed f32 array into caller-owned storage; the count
  /// must equal out.size(). Avoids materializing a temporary vector on the
  /// checkpoint-load path.
  void f32_into(std::span<float> out);
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<std::uint64_t> u64_vec();
  [[nodiscard]] std::vector<std::size_t> size_vec();
  [[nodiscard]] std::vector<bool> bool_vec();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throws unless every payload byte was consumed (trailing garbage).
  void expect_done() const;

 private:
  /// Validate a length-prefixed array header: `count` elements of
  /// `elem_bytes` each must fit in the remaining payload.
  void check_count(std::uint64_t count, std::size_t elem_bytes) const;

  /// Copy out.size() f32 values from the payload (bounds already checked).
  void read_f32_block(std::span<float> out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Write `payload` to `path` under the standard envelope. `magic` must be
/// exactly 8 characters. Throws util::CheckError on I/O failure.
void write_file(const std::string& path, std::string_view magic,
                std::uint32_t version, std::span<const std::uint8_t> payload);

struct FileContents {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Read and validate an envelope written by write_file: wrong magic,
/// version above `max_supported_version`, short payload, trailing bytes,
/// and CRC mismatch all throw util::CheckError with a descriptive message.
[[nodiscard]] FileContents read_file(const std::string& path,
                                     std::string_view magic,
                                     std::uint32_t max_supported_version);

}  // namespace osp::util::serde
