// Parallel map over independent, self-contained jobs.
//
// The bench harnesses run many (seed, config) simulation repetitions where
// every repetition owns its Simulator/Network/Engine — embarrassingly
// parallel work. parallel_map fans the jobs out across a ThreadPool while
// keeping each job's result bit-identical to a serial run: the only shared
// state is the output vector, and every job writes its own element.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/thread_pool.hpp"

namespace osp::util {

/// Evaluate fn(0) … fn(n-1) across `pool`, returning results in index
/// order. fn must be callable concurrently from multiple threads and each
/// invocation must be self-contained (own RNG / simulator state), which is
/// what makes the per-index results independent of the pool size and of
/// scheduling order. R must be default-constructible and movable.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results must be default-constructible");
  std::vector<R> out(n);
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      /*grain=*/1);
  return out;
}

/// parallel_map over the process-global pool.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn) {
  return parallel_map(ThreadPool::global(), n, std::forward<Fn>(fn));
}

}  // namespace osp::util
