// A fixed-size worker pool with an OpenMP-style parallel_for.
//
// The tensor kernels (matmul, conv) decompose their iteration space into
// contiguous blocks, one per worker, mirroring the static scheduling idiom
// from the OpenMP examples guide. The pool is created once and reused; tasks
// never allocate threads on the hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace osp::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into contiguous blocks across the
  /// pool (and the calling thread). Blocks until all chunks complete.
  /// `grain` is the minimum block size; small loops run inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

  /// Process-wide default pool (lazily constructed, hardware threads).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace osp::util
