// A fixed-size worker pool with an OpenMP-style parallel_for and a
// joinable task-submission API.
//
// The tensor kernels (matmul, conv, the rank-2 helpers) and the vec_math
// aggregation kernels decompose their iteration space into chunks that the
// pool's workers claim off an atomic cursor (dynamic scheduling, so skewed
// loops balance). parallel_for is a template: the callable is invoked
// through a single type-erased function pointer held in a stack-allocated
// job record — no per-chunk std::function, no per-chunk heap allocation.
// The pool is created once and reused; tasks never allocate threads on the
// hot path.
//
// submit_task() is the coarse-grained sibling: it enqueues one independent
// unit of work (the engine's per-worker FP+BP jobs) and hands back a
// TaskHandle the producer joins later. Joining a task that has not started
// yet *steals* it — the joining thread claims and runs it inline instead
// of blocking on a busy queue, so a consumer is never stuck behind
// unrelated work.
//
// Saturation heuristic: when a tracked task itself calls parallel_for
// while enough tracked tasks are in flight to occupy every pool worker,
// the loop runs inline on the calling thread. Outer task-level parallelism
// already owns all the cores at that point; fanning the inner kernel out
// would only queue helper chunks behind other tasks and pay scheduling
// overhead for zero extra concurrency. Kernel results are bit-identical
// either way (see parallel_for's determinism contract), so the heuristic
// affects wall-clock only.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace osp::util {

namespace detail {

/// Shared control block for one parallel_for call (one allocation per call
/// that actually splits; chunks themselves never allocate). Workers claim
/// chunk indices from `next` until exhausted; the caller participates and
/// then blocks until every *chunk* has completed. Helper tasks hold the
/// block by shared_ptr, so one that starts after the call returned simply
/// finds no chunks left and exits without touching the callable (which
/// lives on the caller's stack and is only dereferenced while executing a
/// claimed chunk). Waiting on chunk completion rather than helper exit is
/// what makes nested parallel_for deadlock-free: a caller inside a worker
/// never depends on queued-but-unstarted tasks, because it can drain all
/// remaining chunks itself.
struct ParallelForJob {
  const void* fn = nullptr;
  void (*invoke)(const void*, std::size_t, std::size_t) = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable done;
  std::size_t completed = 0;  // guarded by mu
};

/// State shared between a submitted task, the pool worker that may run it,
/// and the TaskHandle that joins it. `status` moves queued → running →
/// done; the queued → running transition is a CAS so exactly one thread
/// (a pool worker or a stealing joiner) executes the callable.
struct TaskState {
  enum : int { kQueued = 0, kRunning = 1, kDone = 2 };

  std::function<void()> fn;
  std::atomic<std::size_t>* tracked = nullptr;  // pool's in-flight counter
  std::atomic<int> status{kQueued};

  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;  // guarded by mu

  /// Claim and execute (at most once); marks done and notifies joiners.
  void run();
};

}  // namespace detail

/// Join handle for one submit_task() call. Default-constructed handles are
/// empty; joining one is a no-op.
class TaskHandle {
 public:
  TaskHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// True once the task has finished executing (never true for a handle
  /// that was default-constructed).
  [[nodiscard]] bool ready() const;

  /// Block until the task has run. If it is still sitting in the queue the
  /// calling thread claims and runs it inline (work stealing) — the join
  /// latency is then the task's own runtime, not the queue depth.
  void join();

 private:
  friend class ThreadPool;
  explicit TaskHandle(std::shared_ptr<detail::TaskState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TaskState> state_;
};

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1),
  /// overridable through the OSP_NUM_THREADS environment variable.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Enqueue a *tracked* task and return a handle the producer can join.
  /// Tracked tasks count toward tasks_in_flight() (the saturation
  /// heuristic's input) and set the in_task() flag while running.
  [[nodiscard]] TaskHandle submit_task(std::function<void()> task);

  /// Tracked tasks submitted but not yet finished (approximate — callers
  /// use it only as a load heuristic).
  [[nodiscard]] std::size_t tasks_in_flight() const {
    return tracked_in_flight_.load(std::memory_order_relaxed);
  }

  /// True while the calling thread is executing a tracked task (including
  /// a task stolen by TaskHandle::join).
  [[nodiscard]] static bool in_task();

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) in chunks claimed dynamically by the
  /// pool's workers and the calling thread. Blocks until all chunks
  /// complete. `grain` is the minimum chunk size; loops no larger than one
  /// grain run inline on the caller.
  ///
  /// Chunk *boundaries* depend on the pool size, so callers that need
  /// results independent of thread count must make each index's work
  /// independent (all tensor kernels do) or partition explicitly.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 1024) {
    using F = std::remove_reference_t<Fn>;
    if (n == 0) return;
    grain = std::max<std::size_t>(grain, 1);
    if (n <= grain || size() <= 1) {
      fn(0, n);
      return;
    }
    // Saturation heuristic: a tracked task fanning out while every worker
    // already has (or is queued) a tracked task would gain no concurrency.
    if (in_task() && tasks_in_flight() >= size()) {
      fn(0, n);
      return;
    }
    auto job = std::make_shared<detail::ParallelForJob>();
    job->fn = static_cast<const void*>(&fn);
    job->invoke = [](const void* f, std::size_t begin, std::size_t end) {
      (*static_cast<const F*>(f))(begin, end);
    };
    job->n = n;
    // ~4 chunks per worker bounds the scheduling overhead while leaving
    // dynamic slack for skewed iterations.
    job->chunk = std::max(grain, n / (4 * size()) + 1);
    job->num_chunks = (n + job->chunk - 1) / job->chunk;
    run_job(job);
  }

  /// Process-wide default pool (lazily constructed; size from
  /// OSP_NUM_THREADS or hardware_concurrency). Tests can substitute a pool
  /// with ScopedGlobal.
  static ThreadPool& global();

  /// RAII override of the pool returned by global() — lets tests run the
  /// tensor kernels under specific thread counts in one process.
  class ScopedGlobal {
   public:
    explicit ScopedGlobal(ThreadPool& pool);
    ~ScopedGlobal();
    ScopedGlobal(const ScopedGlobal&) = delete;
    ScopedGlobal& operator=(const ScopedGlobal&) = delete;

   private:
    ThreadPool* previous_;
  };

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<detail::ParallelForJob>& job);
  static void drain_job(detail::ParallelForJob& job);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<std::size_t> tracked_in_flight_{0};
};

}  // namespace osp::util
