// A fixed-size worker pool with an OpenMP-style parallel_for.
//
// The tensor kernels (matmul, conv, the rank-2 helpers) and the vec_math
// aggregation kernels decompose their iteration space into chunks that the
// pool's workers claim off an atomic cursor (dynamic scheduling, so skewed
// loops balance). parallel_for is a template: the callable is invoked
// through a single type-erased function pointer held in a stack-allocated
// job record — no per-chunk std::function, no per-chunk heap allocation.
// The pool is created once and reused; tasks never allocate threads on the
// hot path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace osp::util {

namespace detail {

/// Shared control block for one parallel_for call (one allocation per call
/// that actually splits; chunks themselves never allocate). Workers claim
/// chunk indices from `next` until exhausted; the caller participates and
/// then blocks until every *chunk* has completed. Helper tasks hold the
/// block by shared_ptr, so one that starts after the call returned simply
/// finds no chunks left and exits without touching the callable (which
/// lives on the caller's stack and is only dereferenced while executing a
/// claimed chunk). Waiting on chunk completion rather than helper exit is
/// what makes nested parallel_for deadlock-free: a caller inside a worker
/// never depends on queued-but-unstarted tasks, because it can drain all
/// remaining chunks itself.
struct ParallelForJob {
  const void* fn = nullptr;
  void (*invoke)(const void*, std::size_t, std::size_t) = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable done;
  std::size_t completed = 0;  // guarded by mu
};

}  // namespace detail

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1),
  /// overridable through the OSP_NUM_THREADS environment variable.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) in chunks claimed dynamically by the
  /// pool's workers and the calling thread. Blocks until all chunks
  /// complete. `grain` is the minimum chunk size; loops no larger than one
  /// grain run inline on the caller.
  ///
  /// Chunk *boundaries* depend on the pool size, so callers that need
  /// results independent of thread count must make each index's work
  /// independent (all tensor kernels do) or partition explicitly.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 1024) {
    using F = std::remove_reference_t<Fn>;
    if (n == 0) return;
    grain = std::max<std::size_t>(grain, 1);
    if (n <= grain || size() <= 1) {
      fn(0, n);
      return;
    }
    auto job = std::make_shared<detail::ParallelForJob>();
    job->fn = static_cast<const void*>(&fn);
    job->invoke = [](const void* f, std::size_t begin, std::size_t end) {
      (*static_cast<const F*>(f))(begin, end);
    };
    job->n = n;
    // ~4 chunks per worker bounds the scheduling overhead while leaving
    // dynamic slack for skewed iterations.
    job->chunk = std::max(grain, n / (4 * size()) + 1);
    job->num_chunks = (n + job->chunk - 1) / job->chunk;
    run_job(job);
  }

  /// Process-wide default pool (lazily constructed; size from
  /// OSP_NUM_THREADS or hardware_concurrency). Tests can substitute a pool
  /// with ScopedGlobal.
  static ThreadPool& global();

  /// RAII override of the pool returned by global() — lets tests run the
  /// tensor kernels under specific thread counts in one process.
  class ScopedGlobal {
   public:
    explicit ScopedGlobal(ThreadPool& pool);
    ~ScopedGlobal();
    ScopedGlobal(const ScopedGlobal&) = delete;
    ScopedGlobal& operator=(const ScopedGlobal&) = delete;

   private:
    ThreadPool* previous_;
  };

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<detail::ParallelForJob>& job);
  static void drain_job(detail::ParallelForJob& job);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace osp::util
