// Online and batch statistics helpers used by the metrics recorder and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osp::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const OnlineStats& other);

  /// Raw second central moment (for exact serialization round-trips).
  [[nodiscard]] double m2() const { return m2_; }

  /// Rebuild an accumulator from previously serialized raw fields.
  [[nodiscard]] static OnlineStats from_state(std::size_t count, double mean,
                                              double m2, double min, double max,
                                              double sum) {
    OnlineStats s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    s.sum_ = sum;
    return s;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponential moving average with smoothing factor alpha in (0, 1].
class Ema {
 public:
  explicit Ema(double alpha);

  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool empty() const { return empty_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

/// Percentile of a sample set via linear interpolation; `q` in [0, 1].
/// The input is copied and sorted internally.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs);

}  // namespace osp::util
