#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace osp::util {

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  OSP_CHECK(n > 0, "uniform_u64 requires n > 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller: draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(kTwoPi * u2);
  have_spare_normal_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::exponential(double rate) {
  OSP_CHECK(rate > 0.0, "exponential requires rate > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace osp::util
