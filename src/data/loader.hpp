// Sharding and shuffled batch iteration.
//
// In PS data-parallel training each worker owns a fixed shard of the
// dataset; the shard is reshuffled at every epoch with the worker's own RNG
// stream (the paper relies on per-epoch shuffling so no fixed data subset is
// always trained on stale parameters after LGP, §4.2).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace osp::data {

/// The examples assigned to one worker: the contiguous range
/// [w·n/W, (w+1)·n/W). With round-robin class labels (label = idx mod C) a
/// contiguous range stays class-balanced for any worker count, unlike
/// interleaved sharding (idx mod W), which aliases with the label cycle
/// whenever gcd(W, C) > 1 and starves shards of entire classes.
[[nodiscard]] std::vector<std::size_t> shard_indices(std::size_t dataset_size,
                                                     std::size_t worker,
                                                     std::size_t num_workers);

/// Iterates a worker's shard in shuffled minibatches; reshuffles per epoch.
class ShardLoader {
 public:
  ShardLoader(const Dataset& dataset, std::size_t worker,
              std::size_t num_workers, std::size_t batch_size,
              std::uint64_t seed);

  /// Number of full batches per epoch (trailing partial batch is dropped,
  /// matching fixed-batch DDL training).
  [[nodiscard]] std::size_t batches_per_epoch() const;

  /// Shard size in examples.
  [[nodiscard]] std::size_t shard_size() const { return indices_.size(); }

  /// Produce the `batch`-th minibatch of epoch `epoch`. Batches within an
  /// epoch partition the shuffled shard; the shuffle depends only on
  /// (seed, worker, epoch) so iteration is stateless and reproducible.
  ///
  /// The per-epoch shuffled order is memoized, so after the first call of
  /// an epoch, materialization is O(batch_size) instead of O(shard_size).
  /// Thread-safe: the engine's async math pipeline can have a stale
  /// (crash-abandoned) job and the worker's restarted job materializing
  /// batches concurrently.
  [[nodiscard]] Batch batch(std::size_t epoch, std::size_t batch) const;

 private:
  const Dataset* dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::uint64_t seed_;
  std::size_t worker_;
  // Memoized per-epoch shuffle (guarded by mu_). kNoEpoch marks "empty";
  // any real epoch evicts the previous one (workers walk epochs forward,
  // revisiting at most the current epoch).
  static constexpr std::size_t kNoEpoch = static_cast<std::size_t>(-1);
  mutable std::mutex mu_;
  mutable std::size_t cached_epoch_ = kNoEpoch;
  mutable std::vector<std::size_t> cached_order_;
};

}  // namespace osp::data
