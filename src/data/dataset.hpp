// Dataset abstraction.
//
// Datasets are *generative*: examples are synthesized deterministically from
// (seed, index), so a 50k-example dataset occupies no memory and every
// worker regenerates identical examples. A Batch carries the model input
// tensor plus whichever supervision the task uses (class labels or QA
// spans).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace osp::data {

/// One minibatch. `labels` is used by classification tasks; `starts`/`ends`
/// by span-extraction tasks. Unused fields stay empty.
struct Batch {
  tensor::Tensor inputs;
  std::vector<std::int32_t> labels;
  std::vector<std::int32_t> starts;
  std::vector<std::int32_t> ends;

  [[nodiscard]] std::size_t size() const {
    return inputs.empty() ? 0 : inputs.dim(0);
  }
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Total number of examples.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Materialize the examples at `indices` into a batch.
  [[nodiscard]] virtual Batch make_batch(
      std::span<const std::size_t> indices) const = 0;
};

}  // namespace osp::data
