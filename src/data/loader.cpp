#include "data/loader.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace osp::data {

std::vector<std::size_t> shard_indices(std::size_t dataset_size,
                                       std::size_t worker,
                                       std::size_t num_workers) {
  OSP_CHECK(num_workers > 0, "need at least one worker");
  OSP_CHECK(worker < num_workers, "worker id out of range");
  const std::size_t begin = worker * dataset_size / num_workers;
  const std::size_t end = (worker + 1) * dataset_size / num_workers;
  std::vector<std::size_t> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(i);
  return out;
}

ShardLoader::ShardLoader(const Dataset& dataset, std::size_t worker,
                         std::size_t num_workers, std::size_t batch_size,
                         std::uint64_t seed)
    : dataset_(&dataset),
      indices_(shard_indices(dataset.size(), worker, num_workers)),
      batch_size_(batch_size),
      seed_(seed),
      worker_(worker) {
  OSP_CHECK(batch_size > 0, "batch size must be positive");
  OSP_CHECK(indices_.size() >= batch_size,
            "shard smaller than one batch — increase dataset size");
}

std::size_t ShardLoader::batches_per_epoch() const {
  return indices_.size() / batch_size_;
}

Batch ShardLoader::batch(std::size_t epoch, std::size_t batch) const {
  OSP_CHECK(batch < batches_per_epoch(), "batch index out of range");
  const std::size_t begin = batch * batch_size_;
  std::vector<std::size_t> picked(batch_size_);
  {
    // Epoch-specific shuffle of the shard, derived from (seed, worker,
    // epoch) — identical to shuffling afresh on every call, but memoized
    // so only the first batch of an epoch pays the O(shard) shuffle. The
    // lock covers the cache *and* the copy-out: a concurrent call for a
    // different epoch may evict cached_order_ right after.
    std::scoped_lock lock(mu_);
    if (cached_epoch_ != epoch) {
      cached_order_ = indices_;
      util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (worker_ + 1)) ^
                    (0xbf58476d1ce4e5b9ULL * (epoch + 1)));
      rng.shuffle(cached_order_);
      cached_epoch_ = epoch;
    }
    std::copy_n(cached_order_.begin() + static_cast<std::ptrdiff_t>(begin),
                batch_size_, picked.begin());
  }
  return dataset_->make_batch(picked);
}

}  // namespace osp::data
