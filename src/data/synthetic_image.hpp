// Class-conditional Gaussian "image" dataset — the stand-in for
// CIFAR-10/100 and ImageNet1K.
//
// Each class c has a fixed random prototype vector μ_c of unit scale;
// example i of class c is μ_c·separation + ε with ε ~ N(0, noise). The task
// is learnable by a linear model yet noisy enough that stale-gradient
// training (ASP) measurably degrades accuracy — exactly the property the
// paper's accuracy experiments rely on. Generation is stateless: example i
// is produced from rng.fork(i), so shards and epochs are reproducible.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace osp::data {

struct ImageDatasetConfig {
  std::size_t num_examples = 4096;
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t height = 8;
  std::size_t width = 8;
  double separation = 1.0;  ///< prototype scale; higher = easier task
  double noise = 1.0;       ///< per-pixel Gaussian noise stddev
  /// Defines the class prototypes — the *task*. Train and eval splits of
  /// the same task must share this.
  std::uint64_t seed = 42;
  /// Defines the per-example noise. Give train and eval different values
  /// so they are disjoint samples of the same task (0 = derive from seed).
  std::uint64_t noise_seed = 0;
};

class SyntheticImageDataset : public Dataset {
 public:
  explicit SyntheticImageDataset(const ImageDatasetConfig& config);

  [[nodiscard]] std::size_t size() const override { return config_.num_examples; }
  [[nodiscard]] Batch make_batch(
      std::span<const std::size_t> indices) const override;

  [[nodiscard]] const ImageDatasetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t pixels() const {
    return config_.channels * config_.height * config_.width;
  }

  /// The label assigned to example `index` (round-robin over classes, so
  /// every shard is class-balanced).
  [[nodiscard]] std::int32_t label_of(std::size_t index) const;

 private:
  ImageDatasetConfig config_;
  std::vector<float> prototypes_;  // [classes, pixels]
};

}  // namespace osp::data
