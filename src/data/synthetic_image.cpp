#include "data/synthetic_image.hpp"

#include "util/check.hpp"

namespace osp::data {

SyntheticImageDataset::SyntheticImageDataset(const ImageDatasetConfig& config)
    : config_(config) {
  OSP_CHECK(config.num_examples > 0 && config.num_classes > 0,
            "dataset needs examples and classes");
  OSP_CHECK(config.channels > 0 && config.height > 0 && config.width > 0,
            "dataset needs positive image dims");
  // Fixed per-class prototypes drawn once from the master seed.
  util::Rng proto_rng(config.seed);
  prototypes_.resize(config.num_classes * pixels());
  for (float& v : prototypes_) {
    v = static_cast<float>(proto_rng.normal() * config.separation);
  }
}

std::int32_t SyntheticImageDataset::label_of(std::size_t index) const {
  OSP_CHECK(index < config_.num_examples, "example index out of range");
  return static_cast<std::int32_t>(index % config_.num_classes);
}

Batch SyntheticImageDataset::make_batch(
    std::span<const std::size_t> indices) const {
  OSP_CHECK(!indices.empty(), "empty batch request");
  const std::size_t px = pixels();
  Batch batch;
  batch.inputs = tensor::Tensor(
      {indices.size(), config_.channels, config_.height, config_.width});
  batch.labels.reserve(indices.size());
  util::Rng master(config_.noise_seed != 0 ? config_.noise_seed
                                           : config_.seed);
  float* out = batch.inputs.raw();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t idx = indices[b];
    const std::int32_t label = label_of(idx);
    batch.labels.push_back(label);
    // Stateless per-example noise stream.
    util::Rng ex = master.fork(idx + 1);
    const float* proto = prototypes_.data() +
                         static_cast<std::size_t>(label) * px;
    float* dst = out + b * px;
    for (std::size_t p = 0; p < px; ++p) {
      dst[p] = proto[p] + static_cast<float>(ex.normal() * config_.noise);
    }
  }
  return batch;
}

}  // namespace osp::data
