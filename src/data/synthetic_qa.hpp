// Synthetic extractive-QA dataset — the stand-in for SQuAD1.1 fine-tuning.
//
// Each example is a token sequence of length seq_len. A contiguous answer
// span is filled with tokens drawn from a small "answer" sub-vocabulary
// [0, answer_vocab); the rest of the sequence uses tokens from
// [answer_vocab, vocab). The model must learn to point at the answer span
// (start and end positions) — structurally the same pointer task as
// SQuAD-style heads, and learnable by the attention proxy model.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace osp::data {

struct QaDatasetConfig {
  std::size_t num_examples = 2048;
  std::size_t seq_len = 24;
  std::size_t vocab = 128;
  std::size_t answer_vocab = 16;  ///< ids < answer_vocab mark answer tokens
  std::size_t max_answer_len = 4;
  std::uint64_t seed = 123;
};

class SyntheticQaDataset : public Dataset {
 public:
  explicit SyntheticQaDataset(const QaDatasetConfig& config);

  [[nodiscard]] std::size_t size() const override { return config_.num_examples; }
  [[nodiscard]] Batch make_batch(
      std::span<const std::size_t> indices) const override;

  [[nodiscard]] const QaDatasetConfig& config() const { return config_; }

 private:
  QaDatasetConfig config_;
};

}  // namespace osp::data
