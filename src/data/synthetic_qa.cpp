#include "data/synthetic_qa.hpp"

#include "util/check.hpp"

namespace osp::data {

SyntheticQaDataset::SyntheticQaDataset(const QaDatasetConfig& config)
    : config_(config) {
  OSP_CHECK(config.num_examples > 0, "dataset needs examples");
  OSP_CHECK(config.seq_len >= 2, "sequence too short");
  OSP_CHECK(config.answer_vocab > 0 && config.answer_vocab < config.vocab,
            "answer_vocab must be a strict sub-vocabulary");
  OSP_CHECK(config.max_answer_len >= 1 &&
                config.max_answer_len <= config.seq_len,
            "invalid max_answer_len");
}

Batch SyntheticQaDataset::make_batch(
    std::span<const std::size_t> indices) const {
  OSP_CHECK(!indices.empty(), "empty batch request");
  const std::size_t L = config_.seq_len;
  Batch batch;
  batch.inputs = tensor::Tensor({indices.size(), L});
  batch.starts.reserve(indices.size());
  batch.ends.reserve(indices.size());
  util::Rng master(config_.seed);
  float* out = batch.inputs.raw();
  const std::size_t ctx_vocab = config_.vocab - config_.answer_vocab;
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t idx = indices[b];
    OSP_CHECK(idx < config_.num_examples, "example index out of range");
    util::Rng ex = master.fork(idx + 1);
    const std::size_t ans_len = 1 + ex.uniform_u64(config_.max_answer_len);
    const std::size_t start = ex.uniform_u64(L - ans_len + 1);
    const std::size_t end = start + ans_len - 1;
    float* seq = out + b * L;
    for (std::size_t t = 0; t < L; ++t) {
      std::uint64_t token = 0;
      if (t >= start && t <= end) {
        token = ex.uniform_u64(config_.answer_vocab);
      } else {
        token = config_.answer_vocab + ex.uniform_u64(ctx_vocab);
      }
      seq[t] = static_cast<float>(token);
    }
    batch.starts.push_back(static_cast<std::int32_t>(start));
    batch.ends.push_back(static_cast<std::int32_t>(end));
  }
  return batch;
}

}  // namespace osp::data
