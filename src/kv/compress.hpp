// Value-compression primitives shared by the message filters and the
// gradient-compression sync baselines (§2.2.2, §7).
//
// These are the raw kernels — sparsification and symmetric int8
// quantization — that the composable filter stages (kv/filter.hpp) wrap.
// They live below src/sync so both the KV pipeline and the legacy
// sync-model entry points (sync/compression.hpp keeps aliases) can share
// one implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace osp::kv {

enum class CompressionMode { TopK, RandomK };

/// Reusable working memory for sparsify(). Sized on first use and reused
/// across rounds, so the per-round selection does no heap allocation after
/// warm-up.
struct SparsifyScratch {
  std::vector<float> mags;        // |grad[i]|, kept in element order
  std::vector<float> sel;         // nth_element workspace (permuted)
  std::vector<std::uint32_t> idx; // RandomK shuffle indices
  std::vector<std::uint8_t> mask; // RandomK keep byte-mask
};

/// Sparsify `grad` in place, keeping `keep_fraction` of its elements
/// (highest |g| for TopK, uniform for RandomK); zeroes the rest. Returns
/// the number of kept elements.
std::size_t sparsify(std::span<float> grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng,
                     SparsifyScratch& scratch);

/// Convenience overload with throwaway scratch (tests, one-shot callers).
std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng);

/// Symmetric per-tensor int8 quantization: q = round(clamp(g/s)) with
/// s = max|g|/127. Returns the scale; `grad` is replaced by the
/// dequantized values (the receiver's view), so quantization noise enters
/// the training numerics exactly as it would on a real system.
float quantize_dequantize_int8(std::span<float> grad);

}  // namespace osp::kv
