#include "kv/partition.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace osp::kv {

Partition byte_balanced_partition(std::span<const double> key_bytes,
                                  std::size_t num_shards) {
  OSP_CHECK(num_shards >= 1, "need at least one shard");
  Partition part;
  part.num_shards = num_shards;
  part.owner.assign(key_bytes.size(), 0);
  if (num_shards == 1) return part;
  // Largest-first greedy: stable and near-balanced for practical inputs.
  std::vector<std::size_t> order(key_bytes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key_bytes[a] > key_bytes[b];
                   });
  std::vector<double> load(num_shards, 0.0);
  for (std::size_t idx : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    part.owner[idx] = target;
    load[target] += key_bytes[idx];
  }
  return part;
}

std::vector<double> partition_bytes(std::span<const double> key_bytes,
                                    const Partition& part) {
  OSP_CHECK(part.owner.size() == key_bytes.size(),
            "partition arity mismatch");
  std::vector<double> out(part.num_shards, 0.0);
  for (std::size_t i = 0; i < key_bytes.size(); ++i) {
    OSP_CHECK(part.owner[i] < part.num_shards, "owner out of range");
    out[part.owner[i]] += key_bytes[i];
  }
  return out;
}

double selected_bytes(std::span<const std::uint8_t> keep,
                      std::span<const double> key_bytes) {
  OSP_CHECK(keep.size() == key_bytes.size(), "selection arity mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] != 0) total += key_bytes[i];
  }
  return total;
}

ConsistentHashRing::ConsistentHashRing(std::size_t num_shards,
                                       std::size_t vnodes,
                                       std::uint64_t salt)
    : num_shards_(num_shards), salt_(salt) {
  OSP_CHECK(num_shards >= 1, "need at least one shard");
  OSP_CHECK(vnodes >= 1, "need at least one virtual node per shard");
  ring_.reserve(num_shards * vnodes);
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // splitmix64 of the (salt, shard, vnode) triple: well-mixed, stable
      // across platforms, and independent of the shard count below `s` —
      // which is what makes ring growth move only the new shard's arcs.
      std::uint64_t state = salt_ ^ (0x9e3779b97f4a7c15ULL * (s + 1));
      (void)util::splitmix64(state);
      state ^= 0xbf58476d1ce4e5b9ULL * (v + 1);
      ring_.push_back({util::splitmix64(state), s});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
  });
}

std::size_t ConsistentHashRing::shard_of(Key k) const {
  std::uint64_t state = salt_ ^ k;
  const std::uint64_t h = util::splitmix64(state);
  // First ring point clockwise of h, wrapping to the smallest point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::size_t ConsistentHashRing::successor(std::size_t shard) const {
  OSP_CHECK(shard < num_shards_, "shard out of range");
  if (num_shards_ == 1) return shard;
  // The ring is sorted by hash, so the shard's lowest-hash vnode is its
  // first occurrence; walk clockwise (wrapping) to the next foreign point.
  auto anchor = std::find_if(
      ring_.begin(), ring_.end(),
      [shard](const Point& p) { return p.shard == shard; });
  OSP_CHECK(anchor != ring_.end(), "shard missing from ring");
  const std::size_t start = static_cast<std::size_t>(anchor - ring_.begin());
  for (std::size_t step = 1; step < ring_.size(); ++step) {
    const Point& p = ring_[(start + step) % ring_.size()];
    if (p.shard != shard) return p.shard;
  }
  return shard;  // unreachable with >= 2 shards, defensive
}

Partition ConsistentHashRing::partition(std::size_t num_keys) const {
  Partition part;
  part.num_shards = num_shards_;
  part.owner.resize(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    part.owner[k] = shard_of(static_cast<Key>(k));
  }
  return part;
}

}  // namespace osp::kv
