// Versioned key-segment table of a parameter server.
//
// One segment per key: a contiguous run of the flat parameter vector
// (here one layer block) plus a monotonically increasing version that
// bumps every time the PS applies an update covering it. Responses stamp
// segment versions into their messages so a receiver can tell fresh data
// from a stale replay; checkpoints snapshot the table so a resumed run
// continues the same version stream (KV state must survive
// snapshot/resume — see runtime/checkpoint).
//
// The store does not own parameter memory: the engine's global parameter
// vector stays the single source of truth, and segments describe offsets
// into it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/key.hpp"
#include "kv/message.hpp"

namespace osp::util::serde {
class Writer;
class Reader;
}  // namespace osp::util::serde

namespace osp::kv {

class KvStore {
 public:
  struct Segment {
    Key key = 0;
    std::size_t offset = 0;   ///< first element in the flat param vector
    std::size_t numel = 0;
    std::uint64_t version = 0;
  };

  /// Dense layout: key b covers [offsets[b], offsets[b] + numels[b]).
  void init(std::span<const std::size_t> offsets,
            std::span<const std::size_t> numels);

  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] const Segment& segment(Key k) const;
  [[nodiscard]] std::uint64_t version(Key k) const { return segment(k).version; }
  [[nodiscard]] KeyRange key_range() const {
    return {0, static_cast<Key>(segments_.size())};
  }

  /// An update was applied to segment `k`.
  void bump(Key k);
  /// Bump every segment with keep[k] != 0 (a GIB-selected apply).
  void bump_selected(std::span<const std::uint8_t> keep);
  void bump_all();

  /// Stamp current versions into `m` — one per key in `m.keys`, or one
  /// per key of `m.range` when the key list is empty.
  void stamp_versions(KvMessage& m) const;

  void save_state(util::serde::Writer& w) const;
  /// Restores versions; the layout (keys/offsets/numels) must match the
  /// attached model — a mismatch throws.
  void load_state(util::serde::Reader& r);

 private:
  std::vector<Segment> segments_;
};

}  // namespace osp::kv
