#include "kv/compress.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace osp::kv {

std::size_t sparsify(std::span<float> grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng,
                     SparsifyScratch& scratch) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
  const std::size_t n = grad.size();
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(keep_fraction *
                                               static_cast<double>(n))));
  if (keep >= n) return n;
  const util::simd::Kernels& k = util::simd::kernels();
  if (mode == CompressionMode::TopK) {
    // Threshold at the keep-th largest magnitude. `mags` keeps element
    // order for the scan passes; `sel` is the nth_element workspace.
    scratch.mags.resize(n);
    scratch.sel.resize(n);
    k.abs_into(grad.data(), scratch.mags.data(), n);
    std::copy(scratch.mags.begin(), scratch.mags.end(), scratch.sel.begin());
    std::nth_element(scratch.sel.begin(),
                     scratch.sel.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     scratch.sel.end(), std::greater<float>());
    const float threshold = scratch.sel[keep - 1];
    // Keep strictly-above first; elements equal to the threshold fill
    // remaining slots in index order (deterministic tie handling).
    const std::size_t kept_above = k.count_gt(scratch.mags.data(), threshold, n);
    const std::size_t ties_kept = k.threshold_zero(
        grad.data(), scratch.mags.data(), threshold, keep - kept_above, n);
    return kept_above + ties_kept;
  }
  // RandomK: reservoir-free selection via shuffled index prefix.
  OSP_CHECK(n <= std::numeric_limits<std::uint32_t>::max(),
            "RandomK gradient block too large for 32-bit indices");
  scratch.idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.idx[i] = static_cast<std::uint32_t>(i);
  }
  rng.shuffle(scratch.idx);
  scratch.mask.assign(n, 0);
  for (std::size_t i = 0; i < keep; ++i) scratch.mask[scratch.idx[i]] = 1;
  k.mask_zero(grad.data(), scratch.mask.data(), n);
  return keep;
}

std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng) {
  SparsifyScratch scratch;
  return sparsify(std::span<float>(grad), mode, keep_fraction, rng, scratch);
}

float quantize_dequantize_int8(std::span<float> grad) {
  const util::simd::Kernels& k = util::simd::kernels();
  const float max_abs = k.max_abs(grad.data(), grad.size());
  if (max_abs == 0.0f) return 0.0f;
  const float scale = max_abs / 127.0f;
  const float inv = 1.0f / scale;
  k.quantize_dequantize(grad.data(), scale, inv, grad.size());
  return scale;
}

}  // namespace osp::kv
