// Key space of the KV parameter-server core.
//
// Parameters are addressed by dense 64-bit keys; a key identifies one
// *segment* (a contiguous run of model parameters, in this codebase one
// layer block). Messages address either a half-open contiguous
// [begin, end) KeyRange or an explicit key list (shards produced by a
// byte-balancing partitioner are generally not contiguous).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace osp::kv {

using Key = std::uint64_t;

/// Half-open key interval [begin, end). Empty when begin == end.
struct KeyRange {
  Key begin = 0;
  Key end = 0;

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(end - begin);
  }
  [[nodiscard]] bool empty() const { return begin == end; }
  [[nodiscard]] bool contains(Key k) const { return k >= begin && k < end; }
  [[nodiscard]] bool operator==(const KeyRange&) const = default;
};

/// Split `range` into `n` contiguous subranges whose sizes differ by at
/// most one (the first `size % n` subranges get the extra key). The
/// concatenation of the result is exactly `range`; empty input ranges
/// yield n empty subranges at `begin`.
[[nodiscard]] inline std::vector<KeyRange> split_range(KeyRange range,
                                                       std::size_t n) {
  OSP_CHECK(range.begin <= range.end, "invalid key range");
  OSP_CHECK(n >= 1, "cannot split into zero ranges");
  const std::uint64_t total = range.end - range.begin;
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;
  std::vector<KeyRange> out;
  out.reserve(n);
  Key cursor = range.begin;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t len = base + (i < extra ? 1 : 0);
    out.push_back({cursor, cursor + len});
    cursor += len;
  }
  return out;
}

/// Coalesce a sorted, non-overlapping list of ranges, merging adjacent
/// ones (a.end == b.begin) and dropping empties. Inverse of split_range
/// up to empty subranges: merge_ranges(split_range(r, n)) == {r} for any
/// non-empty r.
[[nodiscard]] inline std::vector<KeyRange> merge_ranges(
    std::vector<KeyRange> ranges) {
  std::vector<KeyRange> out;
  for (const KeyRange& r : ranges) {
    OSP_CHECK(r.begin <= r.end, "invalid key range");
    if (r.empty()) continue;
    OSP_CHECK(out.empty() || r.begin >= out.back().end,
              "ranges must be sorted and non-overlapping");
    if (!out.empty() && out.back().end == r.begin) {
      out.back().end = r.end;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace osp::kv
