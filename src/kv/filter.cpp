#include "kv/filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp::kv {

namespace {

/// FNV-1a over a key list — the key-cache signature.
std::uint64_t fnv1a_keys(std::span<const Key> keys) {
  std::uint64_t h = 1469598103934665603ULL;
  for (Key k : keys) {
    for (int b = 0; b < 8; ++b) {
      h ^= (k >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  // 0 is reserved for "keys travel inline".
  return h == 0 ? 1 : h;
}

std::vector<std::uint32_t> value_bits(std::span<const float> values) {
  std::vector<std::uint32_t> bits(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    bits[i] = std::bit_cast<std::uint32_t>(values[i]);
  }
  return bits;
}

}  // namespace

void MessageFilter::save_state(util::serde::Writer&) const {}
void MessageFilter::load_state(util::serde::Reader&) {}

// ---------------------------------------------------------------- pipeline

MessageFilter& FilterPipeline::add(std::unique_ptr<MessageFilter> f) {
  stages_.push_back(std::move(f));
  return *stages_.back();
}

void FilterPipeline::encode(KvMessage& m) {
  for (auto& f : stages_) f->encode(m);
}

void FilterPipeline::decode(KvMessage& m) {
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    (*it)->decode(m);
  }
}

std::string FilterPipeline::name() const {
  std::string out;
  for (const auto& f : stages_) {
    if (!out.empty()) out += "∘";  // '∘'
    out += f->name();
  }
  return out;
}

void FilterPipeline::save_state(util::serde::Writer& w) const {
  w.u8(1);  // pipeline state version
  w.u64(stages_.size());
  for (const auto& f : stages_) {
    w.str(f->name());
    util::serde::Writer sub;
    f->save_state(sub);
    w.bytes(sub.data());
  }
}

void FilterPipeline::load_state(util::serde::Reader& r) {
  OSP_CHECK(r.u8() == 1, "unsupported filter-pipeline state version");
  OSP_CHECK(r.u64() == stages_.size(), "filter-pipeline stage count mismatch");
  for (const auto& f : stages_) {
    OSP_CHECK(r.str() == f->name(), "filter-pipeline stage order mismatch");
    const std::vector<std::uint8_t> sub_bytes = r.bytes();
    util::serde::Reader sub(sub_bytes);
    f->load_state(sub);
    sub.expect_done();
  }
}

// ---------------------------------------------------------------- key cache

void KeyCacheFilter::encode(KvMessage& m) {
  if (m.keys.empty()) return;
  const std::uint64_t sig = fnv1a_keys(m.keys);
  const auto it = sent_.find(sig);
  if (it != sent_.end() && it->second == m.keys) {
    // The receiver has this list: send the signature instead.
    m.key_sig = sig;
    m.keys.clear();
    m.meta_bytes += 8.0;
    return;
  }
  sent_[sig] = m.keys;
  m.key_sig = 0;
  m.index_bytes += 8.0 * static_cast<double>(m.keys.size());
}

void KeyCacheFilter::decode(KvMessage& m) {
  if (m.key_sig != 0) {
    OSP_CHECK(m.keys.empty(), "key-cached message carries inline keys");
    const auto it = recv_.find(m.key_sig);
    OSP_CHECK(it != recv_.end(), "key-cache signature unknown to receiver");
    m.keys = it->second;
    m.key_sig = 0;
    return;
  }
  if (!m.keys.empty()) recv_[fnv1a_keys(m.keys)] = m.keys;
}

// ----------------------------------------------------------------- XOR delta

void DeltaXorFilter::encode(KvMessage& m) {
  if (m.sparse || m.values.empty()) return;
  const StreamKey stream{m.sender, m.range.begin};
  std::vector<std::uint32_t> cur = value_bits(m.values);
  const auto it = sent_.find(stream);
  if (it == sent_.end() || it->second.size() != cur.size()) {
    sent_[stream] = std::move(cur);  // first message: travels raw
    return;
  }
  const std::vector<std::uint32_t>& prev = it->second;
  std::size_t nonzero_bytes = 0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint32_t x = cur[i] ^ prev[i];
    m.values[i] = std::bit_cast<float>(x);
    for (int b = 0; b < 4; ++b) {
      nonzero_bytes += ((x >> (8 * b)) & 0xffU) != 0 ? 1 : 0;
    }
  }
  // Zero-byte elision: a presence bit per payload byte + the bytes that
  // actually changed. Scales whatever the value channel currently costs.
  const double raw_bytes = 4.0 * static_cast<double>(cur.size());
  const double elided =
      std::ceil(raw_bytes / 8.0) + static_cast<double>(nonzero_bytes);
  m.value_bytes *= elided / raw_bytes;
  m.delta_encoded = true;
  it->second = std::move(cur);  // new sender baseline: the pre-XOR values
}

void DeltaXorFilter::decode(KvMessage& m) {
  const StreamKey stream{m.sender, m.range.begin};
  if (!m.delta_encoded) {
    if (!m.sparse && !m.values.empty()) recv_[stream] = value_bits(m.values);
    return;
  }
  const auto it = recv_.find(stream);
  OSP_CHECK(it != recv_.end() && it->second.size() == m.values.size(),
            "XOR-delta message without a matching receiver baseline");
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    const std::uint32_t orig =
        std::bit_cast<std::uint32_t>(m.values[i]) ^ it->second[i];
    m.values[i] = std::bit_cast<float>(orig);
    it->second[i] = orig;  // new receiver baseline
  }
  m.delta_encoded = false;
}

// ------------------------------------------------------------------- int8

void QuantizeInt8Filter::encode(KvMessage& m) {
  if (!m.values.empty()) {
    m.quant_scale = quantize_dequantize_int8(m.values);
    m.quant_bits = 8;
  }
  m.value_bytes /= 4.0;
  m.meta_bytes += 4.0;  // the fp32 scale
}

void QuantizeInt8Filter::decode(KvMessage&) {
  // Values already carry the dequantized receiver view — the lossy
  // projection happened on encode, exactly once.
}

// ------------------------------------------------------------------- top-k

TopKFilter::TopKFilter(CompressionMode mode, double keep_fraction,
                       std::uint64_t seed)
    : mode_(mode), keep_fraction_(keep_fraction), rng_(seed) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
}

void TopKFilter::encode(KvMessage& m) {
  if (m.values.empty() || m.compact) return;
  if (m.dense_numel == 0) m.dense_numel = m.values.size();
  const std::size_t kept = sparsify(std::span<float>(m.values), mode_,
                                    keep_fraction_, rng_, scratch_);
  last_kept_ = kept;
  m.indices.clear();
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    if (m.values[i] != 0.0f) {
      m.indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
  m.sparse = true;
  // Wire format: fp32 value + u32 index per kept element, replacing the
  // dense value accounting (so int8 composes after this stage).
  m.value_bytes = static_cast<double>(kept) * 4.0;
  m.index_bytes += static_cast<double>(kept) * 4.0;
}

void TopKFilter::decode(KvMessage& m) {
  if (!m.compact) return;
  OSP_CHECK(m.values.size() == m.indices.size(),
            "compact message support mismatch");
  std::vector<float> dense(m.dense_numel, 0.0f);
  for (std::size_t i = 0; i < m.indices.size(); ++i) {
    dense[m.indices[i]] = m.values[i];
  }
  m.values = std::move(dense);
  m.compact = false;
}

void TopKFilter::save_state(util::serde::Writer& w) const {
  w.u8(1);  // top-k filter state version
  const util::RngState rng = rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.boolean(rng.have_spare_normal);
  w.f64(rng.spare_normal);
}

void TopKFilter::load_state(util::serde::Reader& r) {
  OSP_CHECK(r.u8() == 1, "unsupported top-k filter state version");
  util::RngState rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.have_spare_normal = r.boolean();
  rng.spare_normal = r.f64();
  rng_.set_state(rng);
}

// --------------------------------------------------------------------- GIB

void GibFilter::set_selection(std::vector<std::uint8_t> keep) {
  OSP_CHECK(keep.size() == blocks_.size(),
            "GIB selection arity must match the block layout");
  keep_ = std::move(keep);
}

void GibFilter::encode(KvMessage& m) {
  OSP_CHECK(keep_.size() == blocks_.size() && !blocks_.empty(),
            "GIB filter needs a block layout and selection");
  m.block_mask = keep_;
  double total = 0.0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (keep_[b] != 0) {
      total += blocks_[b].wire_bytes;
      continue;
    }
    if (!m.values.empty()) {
      const Block& blk = blocks_[b];
      OSP_CHECK(blk.offset + blk.numel <= m.values.size(),
                "GIB block layout exceeds the payload");
      std::fill(m.values.begin() + static_cast<std::ptrdiff_t>(blk.offset),
                m.values.begin() +
                    static_cast<std::ptrdiff_t>(blk.offset + blk.numel),
                0.0f);
    }
  }
  m.value_bytes = total;
  if (attach_bitmap_) {
    // Same cost model as core::Gib::wire_bytes(): u32 count + packed bits.
    m.index_bytes += 4.0 + static_cast<double>((blocks_.size() + 7) / 8);
  }
}

void GibFilter::decode(KvMessage&) {
  // Dropped blocks arrive as zeros in the dense view — nothing to undo.
}

}  // namespace osp::kv
