// Composable message filters (dmlc/parameter_server-style).
//
// A MessageFilter transforms a KvMessage on its way out (`encode`) and
// back (`decode`); a FilterPipeline applies its stages in order on
// encode and in *reverse* order on decode — the symmetry rule that makes
// stages composable: each decode sees exactly the representation its
// encode produced, with every later stage already undone.
//
// Two invariants every stage must keep:
//  * Lossless stages (key-cache, XOR-delta) restore the encode-input
//    values bit-for-bit on decode. Lossy stages (top-k, int8, GIB) are
//    projections: encode replaces `values` with the receiver's view, and
//    decode of a deserialized message reproduces that view exactly, so
//    lossiness happens once, on encode, never on the wire.
//  * The simulated byte accounting (value/index/meta bytes) moves in
//    lockstep with the payload transform, so telemetry wire bytes always
//    match the composed pipeline.
//
// Stages no-op gracefully on representations they do not apply to
// (XOR-delta skips sparse messages; value transforms skip empty
// payloads but still update the accounting), so any composition order is
// safe even if not always byte-optimal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "kv/compress.hpp"
#include "kv/message.hpp"
#include "util/rng.hpp"

namespace osp::util::serde {
class Writer;
class Reader;
}  // namespace osp::util::serde

namespace osp::kv {

class MessageFilter {
 public:
  virtual ~MessageFilter() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void encode(KvMessage& m) = 0;
  virtual void decode(KvMessage& m) = 0;
  /// Filter-local training state (RNG streams, caches worth keeping).
  virtual void save_state(util::serde::Writer& w) const;
  virtual void load_state(util::serde::Reader& r);
};

/// Ordered stage list; encode applies front-to-back, decode back-to-front.
class FilterPipeline {
 public:
  MessageFilter& add(std::unique_ptr<MessageFilter> f);

  void encode(KvMessage& m);
  void decode(KvMessage& m);

  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] MessageFilter& stage(std::size_t i) { return *stages_.at(i); }
  /// "a∘b∘c" in encode order.
  [[nodiscard]] std::string name() const;

  void save_state(util::serde::Writer& w) const;
  void load_state(util::serde::Reader& r);

 private:
  std::vector<std::unique_ptr<MessageFilter>> stages_;
};

/// Key-caching (dmlc KVPS "key cache"): repeated key lists are replaced
/// by an 8-byte FNV signature once the receiver has seen them. Lossless.
class KeyCacheFilter : public MessageFilter {
 public:
  [[nodiscard]] std::string name() const override { return "keycache"; }
  void encode(KvMessage& m) override;
  void decode(KvMessage& m) override;

 private:
  std::map<std::uint64_t, std::vector<Key>> sent_;  ///< sender-side cache
  std::map<std::uint64_t, std::vector<Key>> recv_;  ///< receiver-side cache
};

/// XOR delta encoding against the previous message of the same stream
/// (sender, range.begin): unchanged floats become zero bytes, charged as
/// a presence bitmap plus the non-zero bytes. Bit-exact invertible
/// (unlike float subtraction). Skips sparse messages — their support
/// changes every round, so a positional delta is meaningless.
class DeltaXorFilter : public MessageFilter {
 public:
  [[nodiscard]] std::string name() const override { return "deltaxor"; }
  void encode(KvMessage& m) override;
  void decode(KvMessage& m) override;

 private:
  using StreamKey = std::pair<std::uint32_t, std::uint64_t>;
  std::map<StreamKey, std::vector<std::uint32_t>> sent_;  ///< prior bits
  std::map<StreamKey, std::vector<std::uint32_t>> recv_;
};

/// Symmetric int8 quantization as a stage: values become the dequantized
/// receiver view (noise enters training numerics exactly once), value
/// bytes shrink 4x, one fp32 scale rides in the meta channel.
class QuantizeInt8Filter : public MessageFilter {
 public:
  [[nodiscard]] std::string name() const override { return "q8"; }
  void encode(KvMessage& m) override;
  void decode(KvMessage& m) override;
};

/// Top-k / random-k sparsification as a stage. Encode keeps the values
/// dense (zeros at dropped positions) and records the support in
/// `indices`; serialization compacts, decode scatters back. Accounting:
/// kept elements travel as fp32 value + u32 index (4 bytes each side),
/// replacing the dense value bytes — so a quantizer composes *after*
/// this stage. The selection RNG is filter state and checkpoints with
/// the model.
class TopKFilter : public MessageFilter {
 public:
  TopKFilter(CompressionMode mode, double keep_fraction, std::uint64_t seed);

  [[nodiscard]] std::string name() const override {
    return mode_ == CompressionMode::TopK ? "topk" : "randk";
  }
  void encode(KvMessage& m) override;
  void decode(KvMessage& m) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;

  [[nodiscard]] std::size_t last_kept() const { return last_kept_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

 private:
  CompressionMode mode_;
  double keep_fraction_;
  util::Rng rng_;
  SparsifyScratch scratch_;
  std::size_t last_kept_ = 0;
};

/// GIB significance filtering as a stage (§4.1): a per-block keep mask
/// selects which layer blocks travel; dropped blocks are zeroed out of
/// the dense payload and their (real-model-scale) bytes leave the value
/// accounting. With attach_bitmap the serialized bitmap cost
/// (4 + ceil(B/8) bytes) rides in the index channel — the PushGIB term
/// the paper's Eq. 5 neglects.
class GibFilter : public MessageFilter {
 public:
  struct Block {
    std::size_t offset = 0;   ///< first value index of the block
    std::size_t numel = 0;    ///< proxy values in the block
    double wire_bytes = 0.0;  ///< simulated (real-model-scale) size
  };

  explicit GibFilter(bool attach_bitmap = false)
      : attach_bitmap_(attach_bitmap) {}

  void set_blocks(std::vector<Block> blocks) { blocks_ = std::move(blocks); }
  /// keep[b] != 0 means block b travels. Sized like blocks().
  void set_selection(std::vector<std::uint8_t> keep);
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  [[nodiscard]] std::string name() const override { return "gib"; }
  void encode(KvMessage& m) override;
  void decode(KvMessage& m) override;

 private:
  bool attach_bitmap_;
  std::vector<Block> blocks_;
  std::vector<std::uint8_t> keep_;
};

}  // namespace osp::kv
