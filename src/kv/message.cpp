#include "kv/message.hpp"

#include <cstring>

#include "util/serde.hpp"

namespace osp::kv {

namespace {
using util::serde::Reader;
using util::serde::Writer;

void write_payload(const KvMessage& m, Writer& w) {
  w.u8(static_cast<std::uint8_t>(m.op));
  w.u32(m.sender);
  w.u64(m.round);
  w.u64(m.range.begin);
  w.u64(m.range.end);
  w.u64_vec(m.keys);
  w.u64_vec(m.versions);
  w.u64(m.key_sig);
  w.boolean(m.sparse);
  w.boolean(m.delta_encoded);
  w.u8(m.quant_bits);
  w.f32(m.quant_scale);
  w.u64(m.dense_numel);
  w.u64(m.indices.size());
  for (std::uint32_t i : m.indices) w.u32(i);
  w.bytes(m.block_mask);
  if (m.sparse && !m.compact) {
    // Compact on the fly: only the support travels.
    w.u64(m.indices.size());
    for (std::uint32_t i : m.indices) w.f32(m.values[i]);
  } else {
    w.f32_vec(m.values);
  }
  w.f64(m.dense_value_bytes);
  w.f64(m.value_bytes);
  w.f64(m.index_bytes);
  w.f64(m.meta_bytes);
}

KvMessage read_payload(Reader& r) {
  KvMessage m;
  const std::uint8_t op = r.u8();
  OSP_CHECK(op <= static_cast<std::uint8_t>(Op::kPullResponse),
            "KV message: unknown op");
  m.op = static_cast<Op>(op);
  m.sender = r.u32();
  m.round = r.u64();
  m.range.begin = r.u64();
  m.range.end = r.u64();
  OSP_CHECK(m.range.begin <= m.range.end, "KV message: inverted key range");
  m.keys = r.u64_vec();
  m.versions = r.u64_vec();
  OSP_CHECK(m.versions.empty() || m.versions.size() == m.keys.size() ||
                m.versions.size() == m.range.size(),
            "KV message: version arity mismatch");
  m.key_sig = r.u64();
  m.sparse = r.boolean();
  m.delta_encoded = r.boolean();
  m.quant_bits = r.u8();
  m.quant_scale = r.f32();
  m.dense_numel = r.u64();
  const std::uint64_t n_idx = r.u64();
  OSP_CHECK(n_idx * 4 <= r.remaining(), "KV message: truncated index list");
  m.indices.resize(n_idx);
  for (std::uint64_t i = 0; i < n_idx; ++i) {
    m.indices[i] = r.u32();
    OSP_CHECK(m.indices[i] < m.dense_numel,
              "KV message: sparse index out of bounds");
  }
  m.block_mask = r.bytes();
  m.values = r.f32_vec();
  if (m.sparse) {
    OSP_CHECK(m.values.size() == m.indices.size(),
              "KV message: sparse support arity mismatch");
    m.compact = true;
  } else {
    OSP_CHECK(m.values.empty() || m.values.size() == m.dense_numel,
              "KV message: dense value count mismatch");
  }
  m.dense_value_bytes = r.f64();
  m.value_bytes = r.f64();
  m.index_bytes = r.f64();
  m.meta_bytes = r.f64();
  return m;
}
}  // namespace

std::vector<std::uint8_t> serialize(const KvMessage& m) {
  Writer payload;
  write_payload(m, payload);
  Writer env;
  for (const char* c = kMessageMagic; *c != '\0'; ++c) {
    env.u8(static_cast<std::uint8_t>(*c));
  }
  env.u32(kMessageVersion);
  env.bytes(payload.data());  // u64 length prefix + payload
  env.u32(util::serde::crc32(payload.data()));
  return env.take();
}

KvMessage deserialize(std::span<const std::uint8_t> data) {
  Reader env(data);
  char magic[9] = {};
  for (int i = 0; i < 8; ++i) magic[i] = static_cast<char>(env.u8());
  OSP_CHECK(std::memcmp(magic, kMessageMagic, 8) == 0,
            "KV message: bad magic");
  const std::uint32_t version = env.u32();
  OSP_CHECK(version == kMessageVersion,
            "KV message: unsupported version");
  const std::vector<std::uint8_t> payload = env.bytes();
  const std::uint32_t crc = env.u32();
  env.expect_done();
  OSP_CHECK(crc == util::serde::crc32(payload), "KV message: CRC mismatch");
  Reader r(payload);
  KvMessage m = read_payload(r);
  r.expect_done();
  return m;
}

}  // namespace osp::kv
