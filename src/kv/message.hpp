// KV wire messages.
//
// A KvMessage is one push / pull / pull-response addressed to a key
// range (contiguous [begin,end)) or an explicit key list (byte-balanced
// shards are not contiguous). It carries two parallel representations:
//
//  * the *proxy payload* — `values` etc., the real floats the receiving
//    end trains on (real numerics, simulated time);
//  * the *simulated byte accounting* — value/index/meta wire bytes at
//    the workload's real-model scale, which is what the network
//    simulator charges. Filters transform both sides consistently.
//
// In memory `values` stays dense (zeros at dropped positions) so filter
// stages compose cheaply; serialize() writes the genuinely compact form
// (sparse support only) and deserialize() marks the message `compact`
// until FilterPipeline::decode scatters it back to dense.
//
// Serialized envelope (same shape as util::serde::write_file):
//   magic "OSPKVMSG" | u32 version | u64 payload len | payload | u32 CRC32
// Truncation, trailing bytes, bit flips and version skew are all
// rejected with util::CheckError — never mis-decoded (see tests/test_io).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/key.hpp"

namespace osp::kv {

inline constexpr const char* kMessageMagic = "OSPKVMSG";
inline constexpr std::uint32_t kMessageVersion = 1;

/// Fixed per-message frame the serialized format carries regardless of the
/// payload: 8-byte magic, u32 format version, u64 payload length, u32 CRC.
inline constexpr double kFrameOverheadBytes = 8.0 + 4.0 + 8.0 + 4.0;

enum class Op : std::uint8_t { kPush = 0, kPull = 1, kPullResponse = 2 };

struct KvMessage {
  // ---- header ----
  Op op = Op::kPush;
  std::uint32_t sender = 0;           ///< worker id (push) or PS id
  std::uint64_t round = 0;
  KeyRange range{0, 0};               ///< contiguous address, if any
  std::vector<Key> keys;              ///< explicit keys (non-contiguous)
  std::vector<std::uint64_t> versions;  ///< per-key segment versions

  // ---- proxy payload ----
  std::vector<float> values;          ///< dense receiver view
  std::vector<std::uint32_t> indices;   ///< sparse support (top-k)
  std::vector<std::uint8_t> block_mask; ///< per-block keep mask (GIB)
  float quant_scale = 0.0f;
  std::uint8_t quant_bits = 0;        ///< 0 = unquantized
  bool sparse = false;                ///< only `indices` positions travel
  bool delta_encoded = false;         ///< values are XOR deltas on the wire
  bool compact = false;               ///< values hold support only (post-deserialize)
  std::uint64_t dense_numel = 0;      ///< full value count before sparsify
  std::uint64_t key_sig = 0;          ///< key-cache signature (0 = keys inline)

  // ---- simulated byte accounting (real-model scale) ----
  double dense_value_bytes = 0.0;     ///< unfiltered payload size
  double value_bytes = 0.0;           ///< value payload after filters
  double index_bytes = 0.0;           ///< index / bitmap side channel
  double meta_bytes = 0.0;            ///< scales, signatures, piggybacks

  /// Total simulated cost the transport charges for this message: the
  /// filtered payload plus the fixed frame every serialized message carries
  /// (magic | version | length | crc32).
  [[nodiscard]] double wire_bytes() const {
    return value_bytes + index_bytes + meta_bytes + kFrameOverheadBytes;
  }

  /// Re-arm a (possibly reused) message for a fresh send: resets every
  /// field except `values`, whose buffer the sender refills in place.
  void begin(Op o, std::uint32_t sender_id, std::uint64_t r, KeyRange addr) {
    op = o;
    sender = sender_id;
    round = r;
    range = addr;
    keys.clear();
    versions.clear();
    indices.clear();
    block_mask.clear();
    quant_scale = 0.0f;
    quant_bits = 0;
    sparse = delta_encoded = compact = false;
    dense_numel = 0;
    key_sig = 0;
    dense_value_bytes = value_bytes = index_bytes = meta_bytes = 0.0;
  }

  /// Initialize the payload and its dense byte accounting in one step.
  void set_values(std::span<const float> v, double simulated_dense_bytes) {
    values.assign(v.begin(), v.end());
    dense_numel = v.size();
    dense_value_bytes = simulated_dense_bytes;
    value_bytes = simulated_dense_bytes;
    index_bytes = 0.0;
    meta_bytes = 0.0;
  }

  /// Like set_values but only sets the accounting (the payload stays
  /// by-reference in the sender's buffers — sharded/OSP pushes).
  void set_accounting(double simulated_dense_bytes) {
    dense_value_bytes = simulated_dense_bytes;
    value_bytes = simulated_dense_bytes;
    index_bytes = 0.0;
    meta_bytes = 0.0;
  }
};

/// Serialize under the OSPKVMSG envelope. Sparse messages are written in
/// compact form (support values only).
[[nodiscard]] std::vector<std::uint8_t> serialize(const KvMessage& m);

/// Parse and validate an OSPKVMSG envelope. Throws util::CheckError on
/// wrong magic, unsupported version, truncation, trailing bytes, CRC
/// mismatch, or any structurally inconsistent payload (out-of-range op,
/// index out of bounds, arity mismatches).
[[nodiscard]] KvMessage deserialize(std::span<const std::uint8_t> data);

}  // namespace osp::kv
