// Primary-backup replication of key segments across PS shards.
//
// Placement: logical shard p (one per PS host, from the sync model's key
// partition) is primary on host p; its backups are the ring-successor
// hosts on the existing consistent-hash ring (kv/partition.hpp), so a
// membership change moves only the chains of the ring neighbours —
// the same bounded-movement property key ownership already has.
//
// Freshness: the KV store's per-segment version stamps are the
// replica-sync predicate — a backup is *fresh* for segment k iff its
// recorded version matches the primary's authoritative version, and
// catch-up ships only the stale segments. The replication stream is
// modeled asynchronously, trailing the apply stream by exactly one
// update per segment: when the primary applies an update (bumping the
// store version to v) the backup is known-good up to v-1, and becomes
// fresh for v only at the next apply or at an explicit catch-up. At a
// crash, the version predicate therefore selects exactly the segments
// whose tail update was still in flight to the backup.
//
// Failover: the *serving* host of a shard is the first alive host in
// its chain. When the primary crashes, serving moves to the backup
// (promotion); when it restarts, serving moves back (failback). Both
// transitions run a catch-up that ships the stale segments and marks
// every segment fresh.
//
// Determinism: on a healthy run every call here is pure in-memory
// bookkeeping — no simulated flows, no RNG, no virtual-time cost — so
// runs with an empty fault schedule stay bit-identical to the sync
// goldens with replication enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kv/partition.hpp"
#include "kv/store.hpp"

namespace osp::util::serde {
class Writer;
class Reader;
}  // namespace osp::util::serde

namespace osp::kv {

class ReplicaTable {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Build the replica chains for `part` (one logical shard per host;
  /// shard p is primary on host p). `key_bytes` sizes catch-up traffic.
  /// `replication_factor` counts the primary, so 2 = one backup. Chains
  /// never repeat a host; with a single host there is no backup.
  void init(const Partition& part, std::span<const double> key_bytes,
            std::size_t replication_factor = 2);

  [[nodiscard]] std::size_t num_hosts() const { return chains_.size(); }
  [[nodiscard]] std::size_t num_keys() const {
    return backup_versions_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& chain(
      std::size_t shard) const;
  [[nodiscard]] bool has_backup(std::size_t shard) const {
    return chain(shard).size() > 1;
  }

  // ---- host liveness (mirrors the engine's PS fault state) ----
  [[nodiscard]] bool alive(std::size_t host) const;
  void set_alive(std::size_t host, bool up);

  /// The host currently serving `shard`: the first alive host in its
  /// chain, or npos when the whole chain is down.
  [[nodiscard]] std::size_t serving(std::size_t shard) const;

  // ---- version-predicate freshness ----

  /// The primary applied an update to key k; the store's authoritative
  /// version is now `version_now`. The async replication stream trails by
  /// one update, so this marks the backup fresh up to version_now - 1.
  void note_update(Key k, std::uint64_t version_now);

  /// Backup fresh for k ⇔ its recorded version matches the store's.
  [[nodiscard]] bool fresh(Key k, const KvStore& store) const;

  /// Stale segments across the whole key space (the replica-lag metric).
  [[nodiscard]] std::size_t lag(const KvStore& store) const;

  /// Bytes of `shard`'s stale segments — what a catch-up would ship.
  [[nodiscard]] double stale_bytes(std::size_t shard,
                                   const KvStore& store) const;

  /// Ship `shard`'s stale segments: marks them fresh at the authoritative
  /// versions and returns the bytes shipped (ascending key order, the
  /// same accumulation discipline as selected_bytes).
  double catch_up(std::size_t shard, const KvStore& store);

  void save_state(util::serde::Writer& w) const;
  void load_state(util::serde::Reader& r);

 private:
  Partition part_;                   ///< key → primary logical shard
  std::vector<double> key_bytes_;
  std::vector<std::vector<std::size_t>> chains_;  ///< per shard
  std::vector<std::uint64_t> backup_versions_;    ///< per key
  std::vector<bool> alive_;                       ///< per host
};

}  // namespace osp::kv
