#include "kv/store.hpp"

#include "util/serde.hpp"

namespace osp::kv {

void KvStore::init(std::span<const std::size_t> offsets,
                   std::span<const std::size_t> numels) {
  OSP_CHECK(offsets.size() == numels.size(), "segment arity mismatch");
  segments_.clear();
  segments_.reserve(offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    segments_.push_back({static_cast<Key>(i), offsets[i], numels[i], 0});
  }
}

const KvStore::Segment& KvStore::segment(Key k) const {
  OSP_CHECK(k < segments_.size(), "segment key out of range");
  return segments_[static_cast<std::size_t>(k)];
}

void KvStore::bump(Key k) {
  OSP_CHECK(k < segments_.size(), "segment key out of range");
  ++segments_[static_cast<std::size_t>(k)].version;
}

void KvStore::bump_selected(std::span<const std::uint8_t> keep) {
  OSP_CHECK(keep.size() == segments_.size(), "selection arity mismatch");
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] != 0) ++segments_[i].version;
  }
}

void KvStore::bump_all() {
  for (Segment& s : segments_) ++s.version;
}

void KvStore::stamp_versions(KvMessage& m) const {
  m.versions.clear();
  if (!m.keys.empty()) {
    m.versions.reserve(m.keys.size());
    for (Key k : m.keys) {
      // A message that addresses a contiguous range must not list keys
      // outside it (shard messages legitimately carry an empty range and
      // an explicit key list — those only need to be in-store).
      OSP_CHECK(m.range.size() == 0 ||
                    (k >= m.range.begin && k < m.range.end),
                "stamp_versions: listed key outside the message range");
      m.versions.push_back(version(k));
    }
    return;
  }
  m.versions.reserve(m.range.size());
  for (Key k = m.range.begin; k < m.range.end; ++k) {
    m.versions.push_back(version(k));
  }
}

void KvStore::save_state(util::serde::Writer& w) const {
  w.u8(1);  // KV store state version
  w.u64(segments_.size());
  for (const Segment& s : segments_) {
    w.u64(s.key);
    w.u64(s.offset);
    w.u64(s.numel);
    w.u64(s.version);
  }
}

void KvStore::load_state(util::serde::Reader& r) {
  OSP_CHECK(r.u8() == 1, "unsupported KV store state version");
  OSP_CHECK(r.u64() == segments_.size(),
            "KV store checkpoint segment count mismatch");
  for (Segment& s : segments_) {
    OSP_CHECK(r.u64() == s.key && r.u64() == s.offset && r.u64() == s.numel,
              "KV store checkpoint layout mismatch");
    s.version = r.u64();
  }
}

}  // namespace osp::kv
