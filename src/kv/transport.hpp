// KV transport: moves messages between workers and parameter-server
// shards over the engine's simulated network.
//
// The transport charges exactly KvMessage::wire_bytes() per send — the
// composed filter pipeline's output plus the fixed serialization frame
// (kFrameOverheadBytes: magic | version | length | crc32) every message
// carries — and adds nothing of its own, so telemetry and flow sizes
// always equal what a serialized message would put on the wire.
//
// Routes come from the cluster topology: an empty route is a co-located
// loopback and completes through the engine's event queue (deterministic
// callback ordering, visible to the checkpoint quiescence check).
//
// Ownership mirrors the two historical call styles:
//  * owned = true  — Engine::worker_transfer semantics: the flow belongs
//    to `worker`, passes the fault layer (delay/drop injection) and is
//    cancelled if the worker crashes mid-transfer, so the payload is not
//    delivered posthumously.
//  * owned = false — plain flow (the old sync/transfer.hpp helper):
//    survives worker crashes; used by barrier models whose PS-side
//    bookkeeping tolerates late arrivals.
#pragma once

#include <cstddef>
#include <functional>

#include "kv/message.hpp"
#include "runtime/engine.hpp"

namespace osp::kv {

class Transport {
 public:
  Transport() = default;

  void bind(runtime::Engine& eng) { eng_ = &eng; }
  [[nodiscard]] bool bound() const { return eng_ != nullptr; }

  /// worker → PS `ps` (gradient push).
  void push(std::size_t worker, std::size_t ps, const KvMessage& m,
            bool owned, std::function<void()> done);

  /// PS `ps` → worker (parameter response / pull answer).
  void respond(std::size_t worker, std::size_t ps, const KvMessage& m,
               bool owned, std::function<void()> done);

 private:
  void send(std::size_t worker, std::vector<sim::LinkId> route, double bytes,
            bool owned, std::function<void()> done);

  runtime::Engine* eng_ = nullptr;
};

}  // namespace osp::kv
