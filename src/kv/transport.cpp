#include "kv/transport.hpp"

#include <utility>

namespace osp::kv {

void Transport::push(std::size_t worker, std::size_t ps, const KvMessage& m,
                     bool owned, std::function<void()> done) {
  OSP_CHECK(bound(), "transport not bound to an engine");
  send(worker, eng_->cluster().route_to_ps(worker, ps), m.wire_bytes(),
       owned, std::move(done));
}

void Transport::respond(std::size_t worker, std::size_t ps,
                        const KvMessage& m, bool owned,
                        std::function<void()> done) {
  OSP_CHECK(bound(), "transport not bound to an engine");
  send(worker, eng_->cluster().route_from_ps(worker, ps), m.wire_bytes(),
       owned, std::move(done));
}

void Transport::send(std::size_t worker, std::vector<sim::LinkId> route,
                     double bytes, bool owned, std::function<void()> done) {
  if (owned) {
    eng_->worker_transfer(worker, std::move(route), bytes, std::move(done));
    return;
  }
  const double overhead = eng_->cluster().config().transfer_overhead_s;
  if (route.empty()) {
    // Route through the engine so pending loopbacks are visible to the
    // checkpoint quiescence check.
    eng_->loopback_transfer(overhead, std::move(done));
    return;
  }
  eng_->cluster().network().start_flow(std::move(route), bytes,
                                       std::move(done), overhead);
}

}  // namespace osp::kv
