#include "kv/replication.hpp"

#include "util/serde.hpp"

namespace osp::kv {

void ReplicaTable::init(const Partition& part,
                        std::span<const double> key_bytes,
                        std::size_t replication_factor) {
  OSP_CHECK(part.num_shards >= 1, "need at least one host");
  OSP_CHECK(replication_factor >= 1, "replication factor counts the primary");
  OSP_CHECK(key_bytes.size() == part.owner.size(),
            "key byte table arity mismatch");
  part_ = part;
  key_bytes_.assign(key_bytes.begin(), key_bytes.end());
  backup_versions_.assign(part.owner.size(), 0);
  alive_.assign(part.num_shards, true);

  // Chain for shard p: primary p, then ring successors until the factor
  // is met or the hosts run out. The ring is the same construction key
  // ownership uses, so membership changes keep bounded movement.
  const ConsistentHashRing ring(part.num_shards);
  chains_.assign(part.num_shards, {});
  for (std::size_t p = 0; p < part.num_shards; ++p) {
    std::vector<std::size_t>& chain = chains_[p];
    chain.push_back(p);
    std::size_t host = p;
    while (chain.size() < replication_factor) {
      host = ring.successor(host);
      if (std::find(chain.begin(), chain.end(), host) != chain.end()) break;
      chain.push_back(host);
    }
  }
}

const std::vector<std::size_t>& ReplicaTable::chain(std::size_t shard) const {
  OSP_CHECK(shard < chains_.size(), "shard out of range");
  return chains_[shard];
}

bool ReplicaTable::alive(std::size_t host) const {
  OSP_CHECK(host < alive_.size(), "host out of range");
  return alive_[host];
}

void ReplicaTable::set_alive(std::size_t host, bool up) {
  OSP_CHECK(host < alive_.size(), "host out of range");
  alive_[host] = up;
}

std::size_t ReplicaTable::serving(std::size_t shard) const {
  for (std::size_t host : chain(shard)) {
    if (alive_[host]) return host;
  }
  return npos;
}

void ReplicaTable::note_update(Key k, std::uint64_t version_now) {
  OSP_CHECK(k < backup_versions_.size(), "key out of range");
  OSP_CHECK(version_now >= 1, "note_update before any apply");
  backup_versions_[static_cast<std::size_t>(k)] = version_now - 1;
}

bool ReplicaTable::fresh(Key k, const KvStore& store) const {
  OSP_CHECK(k < backup_versions_.size(), "key out of range");
  return backup_versions_[static_cast<std::size_t>(k)] == store.version(k);
}

std::size_t ReplicaTable::lag(const KvStore& store) const {
  std::size_t stale = 0;
  for (std::size_t k = 0; k < backup_versions_.size(); ++k) {
    if (!fresh(static_cast<Key>(k), store)) ++stale;
  }
  return stale;
}

double ReplicaTable::stale_bytes(std::size_t shard,
                                 const KvStore& store) const {
  double total = 0.0;
  for (std::size_t k = 0; k < backup_versions_.size(); ++k) {
    if (part_.owner[k] != shard) continue;
    if (!fresh(static_cast<Key>(k), store)) total += key_bytes_[k];
  }
  return total;
}

double ReplicaTable::catch_up(std::size_t shard, const KvStore& store) {
  double shipped = 0.0;
  for (std::size_t k = 0; k < backup_versions_.size(); ++k) {
    if (part_.owner[k] != shard) continue;
    const Key key = static_cast<Key>(k);
    if (fresh(key, store)) continue;
    shipped += key_bytes_[k];
    backup_versions_[k] = store.version(key);
  }
  return shipped;
}

void ReplicaTable::save_state(util::serde::Writer& w) const {
  w.u8(1);  // replica table state version
  w.u64_vec(backup_versions_);
  w.bool_vec(alive_);
}

void ReplicaTable::load_state(util::serde::Reader& r) {
  OSP_CHECK(r.u8() == 1, "unsupported replica table state version");
  const std::vector<std::uint64_t> versions = r.u64_vec();
  OSP_CHECK(versions.size() == backup_versions_.size(),
            "replica table checkpoint key count mismatch");
  backup_versions_ = versions;
  const std::vector<bool> alive = r.bool_vec();
  OSP_CHECK(alive.size() == alive_.size(),
            "replica table checkpoint host count mismatch");
  alive_ = alive;
}

}  // namespace osp::kv
