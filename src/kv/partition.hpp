// Key partitioning across parameter-server shards.
//
// Two strategies:
//
//  * byte_balanced_partition — greedy largest-first placement onto the
//    least-loaded shard (§6.1). This is the historical `sync/sharding`
//    assignment, preserved bit-for-bit: every ported sync model keeps
//    producing the exact shard layout (and therefore the exact flow
//    schedule) it produced before the KV refactor.
//
//  * ConsistentHashRing — hash-ring ownership with virtual nodes, the
//    general mechanism for clusters whose shard count changes at
//    runtime: adding a shard moves only the keys that land on the new
//    shard's arcs (≈ 1/(P+1) of the key space in expectation), instead
//    of reshuffling everything the way any balanced recomputation does.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kv/key.hpp"

namespace osp::kv {

/// Key → shard ownership table for a dense key space [0, num_keys).
struct Partition {
  std::vector<std::size_t> owner;   ///< owner[k] = shard of key k
  std::size_t num_shards = 1;

  [[nodiscard]] std::size_t shard_of(Key k) const {
    OSP_CHECK(k < owner.size(), "key out of partition range");
    return owner[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::size_t num_keys() const { return owner.size(); }
};

/// Greedy byte-balancing partition: walk keys largest-first (stable on
/// ties) and place each on the currently least-loaded shard.
[[nodiscard]] Partition byte_balanced_partition(
    std::span<const double> key_bytes, std::size_t num_shards);

/// Total bytes owned by each shard under `part`.
[[nodiscard]] std::vector<double> partition_bytes(
    std::span<const double> key_bytes, const Partition& part);

/// Sum of key_bytes over keys with keep[k] != 0, accumulated in
/// ascending key order (the order matters: these doubles feed simulated
/// flow sizes, which the bit-identity goldens pin down).
[[nodiscard]] double selected_bytes(std::span<const std::uint8_t> keep,
                                    std::span<const double> key_bytes);

/// Consistent-hash ring: each shard owns `vnodes` pseudo-random points
/// on a 64-bit ring; a key belongs to the shard owning the first point
/// clockwise of hash(key). Deterministic for a given (salt, vnodes).
class ConsistentHashRing {
 public:
  ConsistentHashRing(std::size_t num_shards, std::size_t vnodes = 64,
                     std::uint64_t salt = 0x05f061746e696f70ULL);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::size_t shard_of(Key k) const;

  /// Materialize the ring's ownership over a dense key space.
  [[nodiscard]] Partition partition(std::size_t num_keys) const;

  /// Replica placement: the shard owning the first ring point clockwise of
  /// `shard`'s lowest-hash vnode that belongs to a *different* shard. This
  /// is the primary-backup successor rule — deterministic, and with the
  /// same bounded-movement property as key ownership: adding a shard only
  /// changes the successors of its ring neighbours. With one shard the
  /// successor is the shard itself (no distinct backup exists).
  [[nodiscard]] std::size_t successor(std::size_t shard) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
  };
  std::size_t num_shards_;
  std::uint64_t salt_;
  std::vector<Point> ring_;  ///< sorted by hash
};

}  // namespace osp::kv
