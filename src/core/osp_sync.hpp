// Overlapped Synchronization Parallel — the paper's contribution (§3–§4).
//
// Per iteration:
//   1. RS (Routine Synchronization): every worker pushes the *important*
//      gradient blocks (selected by the GIB the PS computed last round).
//      When all N pushes arrive the PS (a) averages the full gradients,
//      (b) steps the important blocks of the global model, (c) computes the
//      next GIB from PGP on the fresh aggregate (asynchronous GIB
//      calculation — zero worker-side cost), and (d) answers each worker
//      with the updated important blocks + the new GIB.
//   2. On the RS response a worker overwrites its important blocks, applies
//      LGP's local prediction to the unimportant blocks (Eq. 6), and starts
//      the next iteration immediately.
//   3. ICS (In-Computation Synchronization): while the workers compute,
//      the unimportant gradients travel to the PS; when all arrive the PS
//      steps the unimportant blocks and sends the corrected values back;
//      the worker replaces its LGP prediction with the global result
//      (Eq. 7).
//
// The ICS byte budget follows Algorithm 1 (ramp from 0 to U_max as the loss
// falls), so early training behaves like BSP (budget 0 ⇒ GIB all-important,
// §4.3's degradation) and later training overlaps up to 80 % of the model.
//
// Multi-PS (§6.1): when the cluster has P > 1 parameter servers, layer
// blocks are byte-balanced across them; each RS/ICS exchange becomes P
// parallel per-shard flows, each PS aggregates and steps only its own
// blocks on its own serial update queue, and Eq. 5's bound scales with the
// P-fold aggregate ingress capacity.
//
// Survival contract (fault injection): RS rounds are tagged so late pushes
// are recognized; a crashed worker stops gating the RS barrier. With a
// configured rs_timeout_s the RS closes after the deadline with the N−k
// contributors it has (weights renormalized), and stragglers are resynced
// with a full parameter pull. While any worker is unhealthy the next GIB
// degrades to all-important (§4.3: RS-only, ICS budget effectively 0);
// Algorithm 1's budget resumes once the cluster heals. ICS rounds track
// their member set — a member's crash removes it from every in-flight
// round — and an ics_timeout_s abandons rounds whose remaining pushes
// never arrive.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/gib.hpp"
#include "core/lgp.hpp"
#include "core/tuning.hpp"
#include "kv/message.hpp"
#include "kv/partition.hpp"
#include "kv/replication.hpp"
#include "kv/store.hpp"
#include "kv/transport.hpp"
#include "runtime/sync_model.hpp"
#include "util/rng.hpp"

namespace osp::core {

struct OspOptions {
  /// Apply LGP's Eq. 6 local prediction (off = train on stale values until
  /// the ICS lands — the ablation case).
  bool enable_lgp = true;
  /// Use the EMA-LGP variant instead of plain LGP (§4.2; the paper found no
  /// benefit — reproduced by bench_ablation_lgp).
  bool use_ema_lgp = false;
  double ema_beta = 0.5;
  double ema_alpha = 0.125;

  /// Gradient-importance ranking. kPgp is density-normalized PGP (the
  /// default, see pgp.hpp); kPgpSum is the paper's literal Eq. 4 sum;
  /// kMagnitude/kRandom are ablations.
  enum class Ranking { kPgp, kPgpSum, kMagnitude, kRandom } ranking =
      Ranking::kPgp;

  /// < 0: Algorithm 1 schedule. Otherwise a fixed ICS budget as a fraction
  /// of the model size (ablation; 0 degrades to BSP, ≥ cap to capped-ASP).
  double fixed_budget_fraction = -1.0;

  /// The Eq. 5 cap: U_max never exceeds this fraction of the model.
  double cap_fraction = 0.8;

  /// Account the GIB computation on worker 0 (co-located PS, §4.4/§5.4).
  /// The engine's cluster should also be configured co-located.
  bool colocated_ps = false;

  std::uint64_t seed = 7;  ///< for Ranking::kRandom
};

class OspSync : public runtime::SyncModel {
 public:
  explicit OspSync(OspOptions options = {});
  OspSync(OspOptions options, runtime::SyncTimeouts timeouts)
      : OspSync(options) {
    set_timeouts(timeouts);
  }

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_epoch_complete(std::size_t epoch, double mean_loss) override;
  void on_worker_crashed(std::size_t worker) override;
  void on_worker_restarted(std::size_t worker) override;
  void on_ps_crashed(std::size_t ps) override;
  void on_ps_restarted(std::size_t ps) override;

  /// Introspection for tests/benches.
  [[nodiscard]] const Gib& current_gib() const { return gib_; }
  [[nodiscard]] double current_ics_budget() const { return ics_budget_; }
  [[nodiscard]] double u_max() const;
  [[nodiscard]] std::size_t ics_rounds_completed() const {
    return ics_rounds_completed_;
  }
  [[nodiscard]] std::size_t num_ps() const { return num_ps_; }
  /// Currently-crashed worker count (drives the §4.3 fault degradation).
  [[nodiscard]] std::size_t num_unhealthy() const { return unhealthy_; }
  /// Introspection for tests: host currently serving logical shard `p`.
  [[nodiscard]] std::size_t serving_host(std::size_t p) const {
    return serving_[p];
  }
  [[nodiscard]] const kv::ReplicaTable& replicas() const { return replica_; }

  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

  /// The gradient-ready → finish_sync span is OSP's blocking RS stage.
  [[nodiscard]] runtime::TracePhase blocking_phase() const override {
    return runtime::TracePhase::kRs;
  }

 private:
  // ---- RS ----
  void arm_rs_timer();
  /// One shard flow of worker `worker`'s round-`round` important push,
  /// routed to shard `p`'s serving host.
  void push_rs_shard(std::size_t worker, std::uint64_t round, std::size_t p);
  void on_rs_push_arrived(std::uint64_t round, std::size_t p,
                          std::size_t worker, std::uint64_t epoch);
  void maybe_close_rs();
  void close_rs();
  void catch_up(std::size_t worker);
  Gib compute_next_gib();

  // ---- PS failover ----
  //
  // An RS response is queued as a job on the shard's serving host; until
  // the job fires its payload is recorded here so a crash of that host
  // (which drops its serial queue) can re-submit the *same* response on
  // the promoted replica. Re-submission never re-applies the optimizer
  // step — the step ran at close_rs; only the answer is re-driven.
  struct PendingRsResp {
    std::uint64_t id = 0;
    std::size_t ps = 0;        ///< logical shard
    std::size_t host = 0;      ///< host the job is queued on
    kv::KvMessage resp;
    Gib round_gib = Gib::all_important(0);
    double lr = 0.0;
    std::vector<bool> recipients;
  };
  /// Queue pending_rs_resp_ entry `id` on its host's serial queue.
  void submit_rs_response(std::uint64_t id);
  /// Serving host for shard `p` changed (crash or restart): catch the new
  /// host up and re-drive what the old host still owed (RS pushes of the
  /// collecting round, unapplied ICS shard pushes, queued RS responses).
  void repoint_shard(std::size_t p);

  // ---- ICS ----
  struct IcsRound {
    std::uint64_t round = 0;
    Gib gib = Gib::all_important(0);
    std::vector<float> grad;          ///< snapshot of the aggregate
    std::vector<bool> members;        ///< workers whose pushes we expect
    std::vector<std::vector<bool>> arrived_from;  ///< [ps][worker]
    std::vector<bool> applied;        ///< per-PS shard stepped + answered
  };
  void start_ics_round(std::uint64_t round, const Gib& gib,
                       const std::vector<bool>& members);
  void on_ics_push_arrived(std::uint64_t round, std::size_t ps,
                           std::size_t worker, std::uint64_t epoch);
  /// Apply every shard whose remaining members' pushes all arrived; erase
  /// the round once all byte-carrying shards applied (or no member is
  /// left to deliver the rest).
  void check_ics_round(std::uint64_t round);

  /// Bytes of blocks owned by PS `ps` that are important/unimportant under
  /// `gib`.
  [[nodiscard]] double ps_bytes(const Gib& gib, std::size_t ps,
                                bool important) const;
  /// KV message addressed to PS `ps`'s blocks whose GIB state equals
  /// `important`: key list + wire accounting (no payload copy — RS/ICS
  /// values stay by-reference in the engine's buffers).
  [[nodiscard]] kv::KvMessage shard_message(kv::Op op, std::uint32_t sender,
                                            std::uint64_t round,
                                            std::size_t ps, const Gib& gib,
                                            bool important) const;
  // ---- observability ----
  //
  // ICS spans outlive IcsRound bookkeeping (the PS erases a round once all
  // shards are applied, while the correction responses are still on the
  // wire), so span state lives in its own map: round → start instant +
  // per-worker count of correction deliveries still expected. The span for
  // (round, worker) closes when the worker's last correction lands.
  struct IcsTrace {
    double begin_s = 0.0;
    std::map<std::size_t, std::size_t> pending;  ///< worker → deliveries left
  };
  /// A correction response for `round` reached worker `w`.
  void ics_trace_note_correction(std::uint64_t round, std::size_t w);
  /// The round died (timeout / every member crashed): close the open spans
  /// of still-alive members at the current instant.
  void ics_trace_abandon(std::uint64_t round);

  /// A Gib view selecting blocks with (gib state == want_important) AND
  /// owner == ps. With encode_as_important=true the selection becomes the
  /// view's *important* set (for copy_important_blocks); with false it
  /// becomes the *unimportant* set (for the LGP helpers, which operate on
  /// unimportant blocks). Unselected blocks land in the opposite set and
  /// are therefore untouched by the corresponding helper.
  [[nodiscard]] Gib restrict_to_ps(const Gib& gib, std::size_t ps,
                                   bool want_important,
                                   bool encode_as_important) const;

  OspOptions options_;
  util::Rng rng_;

  Gib gib_;                    ///< split used by the current round
  std::unique_ptr<SguTuner> tuner_;
  double ics_budget_ = 0.0;    ///< bytes allowed into ICS
  std::unique_ptr<EmaLgp> ema_lgp_;

  std::size_t num_ps_ = 1;
  kv::Partition part_;     ///< block → PS (byte-balanced)
  kv::Transport tx_;       ///< all RS/ICS traffic (worker-owned flows)
  kv::KvStore store_;      ///< per-block segment versions
  kv::ReplicaTable replica_;

  std::vector<float> agg_;     ///< mean of this round's full gradients
  std::uint64_t round_ = 0;    ///< RS rounds closed; collecting id round_+1
  std::vector<std::size_t> rs_shards_arrived_;  ///< per-worker, this round
  std::vector<bool> rs_contributed_;            ///< all shards arrived
  std::size_t rs_contributed_count_ = 0;
  std::vector<bool> rs_awaiting_;  ///< pushed, no response delivered yet
  std::vector<std::uint64_t> rs_awaiting_round_;  ///< round of that push
  std::vector<std::size_t> rs_pending_;  ///< per-worker RS responses awaited
  bool rs_timer_armed_ = false;
  bool survival_ = false;  ///< faults/timeouts in play (see attach)
  std::size_t unhealthy_ = 0;  ///< workers currently crashed

  std::vector<IcsRound> ics_inflight_;
  std::vector<std::uint64_t> last_ics_applied_;  ///< per worker
  std::size_t ics_rounds_completed_ = 0;
  std::map<std::uint64_t, IcsTrace> ics_trace_;  ///< tracing only

  // ---- PS failover state (identity / empty on a healthy run) ----
  std::vector<std::size_t> serving_;        ///< logical shard → host
  std::vector<std::uint64_t> shard_epoch_;  ///< fences stale arrivals
  /// Collecting-round RS arrivals per [shard][worker]; pairs with the
  /// rs_shards_arrived_ counter so a promotion can un-count the arrivals
  /// the dead host was holding.
  std::vector<std::vector<std::uint8_t>> rs_arrived_;
  std::vector<PendingRsResp> pending_rs_resp_;
  std::uint64_t next_resp_id_ = 0;
};

}  // namespace osp::core
