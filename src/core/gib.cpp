#include "core/gib.hpp"

#include "util/check.hpp"
#include "util/simd.hpp"

namespace osp::core {

Gib Gib::all_important(std::size_t num_layers) {
  return Gib(num_layers, 1);
}

Gib Gib::all_unimportant(std::size_t num_layers) {
  return Gib(num_layers, 0);
}

Gib Gib::from_ranking(std::span<const std::size_t> ascending_order,
                      std::span<const double> block_bytes,
                      double unimportant_budget_bytes) {
  OSP_CHECK(ascending_order.size() == block_bytes.size(),
            "ranking/block count mismatch");
  Gib gib = all_important(block_bytes.size());
  double used = 0.0;
  for (std::size_t idx : ascending_order) {
    OSP_CHECK(idx < block_bytes.size(), "ranking index out of range");
    if (used + block_bytes[idx] > unimportant_budget_bytes) continue;
    used += block_bytes[idx];
    gib.set_important(idx, false);
  }
  return gib;
}

void Gib::set_important(std::size_t i, bool v) {
  OSP_CHECK(i < bits_.size(), "GIB index out of range");
  bits_[i] = v ? 1 : 0;
}

std::size_t Gib::count_important() const {
  std::size_t n = 0;
  for (std::uint8_t b : bits_) n += b;
  return n;
}

double Gib::important_bytes(std::span<const double> block_bytes) const {
  OSP_CHECK(block_bytes.size() == bits_.size(), "block count mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0) total += block_bytes[i];
  }
  return total;
}

double Gib::unimportant_bytes(std::span<const double> block_bytes) const {
  OSP_CHECK(block_bytes.size() == bits_.size(), "block count mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] == 0) total += block_bytes[i];
  }
  return total;
}

std::vector<std::uint8_t> Gib::serialize() const {
  const auto n = static_cast<std::uint32_t>(bits_.size());
  std::vector<std::uint8_t> out(4 + (bits_.size() + 7) / 8, 0);
  out[0] = static_cast<std::uint8_t>(n & 0xff);
  out[1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
  out[2] = static_cast<std::uint8_t>((n >> 16) & 0xff);
  out[3] = static_cast<std::uint8_t>((n >> 24) & 0xff);
  util::simd::kernels().pack_bits(bits_.data(), out.data() + 4, bits_.size());
  return out;
}

Gib Gib::deserialize(std::span<const std::uint8_t> bytes) {
  OSP_CHECK(bytes.size() >= 4, "GIB blob too small");
  const std::uint32_t n = static_cast<std::uint32_t>(bytes[0]) |
                          (static_cast<std::uint32_t>(bytes[1]) << 8) |
                          (static_cast<std::uint32_t>(bytes[2]) << 16) |
                          (static_cast<std::uint32_t>(bytes[3]) << 24);
  OSP_CHECK(bytes.size() == 4 + (n + 7) / 8, "GIB blob size mismatch");
  Gib gib = all_unimportant(n);
  util::simd::kernels().unpack_bits(bytes.data() + 4, gib.bits_.data(), n);
  return gib;
}

}  // namespace osp::core
