// Gradient Importance Bitmap (GIB) — one bit per layer, true = important.
//
// The PS computes the GIB asynchronously from the previous iteration's PGP
// ranking and pushes it to the workers; the worker-side Gradient Splitter
// then routes each layer's gradient to RS (important) or ICS (unimportant).
// For models under 1K layers the serialized bitmap is ≤ 1 KB, which is why
// the paper's Eq. 5 neglects T_PushGIB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace osp::core {

class Gib {
 public:
  /// All layers important — OSP degenerates to BSP (§4.3).
  [[nodiscard]] static Gib all_important(std::size_t num_layers);

  /// All layers unimportant — OSP degenerates to ASP (§4.3).
  [[nodiscard]] static Gib all_unimportant(std::size_t num_layers);

  /// Greedy fill: walk blocks in `ascending_order` (least important first)
  /// and mark them unimportant while their cumulative size fits in
  /// `unimportant_budget_bytes`. `block_bytes[i]` is block i's wire size.
  [[nodiscard]] static Gib from_ranking(
      std::span<const std::size_t> ascending_order,
      std::span<const double> block_bytes, double unimportant_budget_bytes);

  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] bool important(std::size_t i) const { return bits_.at(i) != 0; }
  void set_important(std::size_t i, bool v);

  [[nodiscard]] std::size_t count_important() const;
  [[nodiscard]] std::size_t count_unimportant() const {
    return size() - count_important();
  }

  /// Total wire bytes of the important / unimportant sets.
  [[nodiscard]] double important_bytes(std::span<const double> block_bytes) const;
  [[nodiscard]] double unimportant_bytes(std::span<const double> block_bytes) const;

  /// Serialized form: 4-byte little-endian layer count + packed bits.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Gib deserialize(std::span<const std::uint8_t> bytes);

  /// Wire size of the serialized bitmap.
  [[nodiscard]] std::size_t wire_bytes() const { return 4 + (size() + 7) / 8; }

  [[nodiscard]] bool operator==(const Gib& other) const {
    return bits_ == other.bits_;
  }

 private:
  explicit Gib(std::size_t n, std::uint8_t fill) : bits_(n, fill) {}
  std::vector<std::uint8_t> bits_;  // 1 = important
};

}  // namespace osp::core
