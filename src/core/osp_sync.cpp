#include "core/osp_sync.hpp"

#include <algorithm>

#include "core/pgp.hpp"
#include "runtime/engine.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::core {

namespace {
std::vector<bool> mask_from_gib(const Gib& gib, bool important_set) {
  std::vector<bool> mask(gib.size());
  for (std::size_t i = 0; i < gib.size(); ++i) {
    mask[i] = gib.important(i) == important_set;
  }
  return mask;
}
}  // namespace

OspSync::OspSync(OspOptions options)
    : options_(options), rng_(options.seed), gib_(Gib::all_important(0)) {}

std::string OspSync::name() const {
  std::string n = options_.colocated_ps ? "OSP-C" : "OSP";
  if (!options_.enable_lgp) n += "(no-LGP)";
  if (options_.use_ema_lgp) n += "(EMA)";
  if (options_.ranking == OspOptions::Ranking::kPgpSum) n += "(sum)";
  if (options_.ranking == OspOptions::Ranking::kMagnitude) n += "(mag)";
  if (options_.ranking == OspOptions::Ranking::kRandom) n += "(rand)";
  if (options_.fixed_budget_fraction >= 0.0) {
    n += "(fixed=" +
         std::to_string(
             static_cast<int>(options_.fixed_budget_fraction * 100)) +
         "%)";
  }
  if (num_ps_ > 1) n += "(x" + std::to_string(num_ps_) + "PS)";
  return n;
}

void OspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  gib_ = Gib::all_important(eng.num_blocks());
  num_ps_ = eng.cluster().num_ps();
  part_ = kv::byte_balanced_partition(eng.all_block_bytes(), num_ps_);
  tx_.bind(eng);
  {
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> numels;
    for (const auto& b : eng.blocks()) {
      offsets.push_back(b.offset);
      numels.push_back(b.numel);
    }
    store_.init(offsets, numels);
  }

  IcsBudgetParams p;
  // §6.1: with P parameter servers the ICS drains through P independent
  // ingress links, so the Eq. 5 capacity term scales by P.
  p.bandwidth_bytes_per_s =
      sim::gbps_to_bytes_per_sec(eng.cluster().config().link_gbps) *
      static_cast<double>(num_ps_);
  p.loss_rate = eng.cluster().config().loss_rate;
  p.incast_alpha = eng.cluster().config().incast_alpha;
  p.compute_time_s = eng.base_compute_time();
  p.num_workers = eng.num_workers();
  p.model_bytes = eng.model_bytes();
  p.cap_fraction = options_.cap_fraction;
  tuner_ = std::make_unique<SguTuner>(ics_upper_bound(p));

  if (options_.fixed_budget_fraction >= 0.0) {
    ics_budget_ = std::min(options_.fixed_budget_fraction,
                           options_.cap_fraction) *
                  eng.model_bytes();
  } else {
    ics_budget_ = 0.0;  // Algorithm 1 line 9
  }

  if (options_.use_ema_lgp) {
    ema_lgp_ = std::make_unique<EmaLgp>(eng.global_params().size(),
                                        options_.ema_beta,
                                        options_.ema_alpha);
  }
  if (options_.colocated_ps) {
    OSP_CHECK(eng.cluster().config().colocated_ps,
              "OSP-C needs a co-located cluster configuration");
    eng.set_worker_compute_overhead(0, eng.spec().gib_overhead_fraction);
  }
  replica_.init(part_, eng.all_block_bytes());
  serving_.resize(num_ps_);
  for (std::size_t p = 0; p < num_ps_; ++p) serving_[p] = p;
  shard_epoch_.assign(num_ps_, 0);
  rs_arrived_.assign(num_ps_,
                     std::vector<std::uint8_t>(eng.num_workers(), 0));
  pending_rs_resp_.clear();
  next_resp_id_ = 0;

  const std::size_t n = eng.num_workers();
  round_ = 0;
  rs_shards_arrived_.assign(n, 0);
  rs_contributed_.assign(n, false);
  rs_contributed_count_ = 0;
  rs_awaiting_.assign(n, false);
  rs_awaiting_round_.assign(n, 0);
  rs_pending_.assign(n, 0);
  rs_timer_armed_ = false;
  // Same gate as BSP: skip-done-workers is survival-contract behavior and
  // must not change clean-run barrier semantics.
  survival_ = timeouts().rs_timeout_s > 0.0 ||
              !eng.config().faults.events().empty();
  unhealthy_ = 0;
  ics_inflight_.clear();
  last_ics_applied_.assign(n, 0);
  ics_rounds_completed_ = 0;
  ics_trace_.clear();
  if (eng.tracing()) {
    // Seed the §5.3 budget curve; on_epoch_complete extends it.
    eng.trace_mutable().add_counter(eng.sim().now(), "ics_budget_bytes",
                                    ics_budget_);
  }
}

double OspSync::u_max() const { return tuner_->u_max(); }

double OspSync::ps_bytes(const Gib& gib, std::size_t ps,
                         bool important) const {
  // Ascending-key accumulation via the KV selection helper — the same
  // float order the pre-KV implementation used (the goldens pin it).
  const auto& bytes = eng().all_block_bytes();
  std::vector<std::uint8_t> keep(bytes.size(), 0);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    keep[b] = part_.owner[b] == ps && gib.important(b) == important ? 1 : 0;
  }
  return kv::selected_bytes(keep, bytes);
}

kv::KvMessage OspSync::shard_message(kv::Op op, std::uint32_t sender,
                                     std::uint64_t round, std::size_t ps,
                                     const Gib& gib, bool important) const {
  kv::KvMessage m;
  m.begin(op, sender, round, {});
  const auto& bytes = eng().all_block_bytes();
  double total = 0.0;
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    if (part_.owner[b] == ps && gib.important(b) == important) {
      m.keys.push_back(static_cast<kv::Key>(b));
      total += bytes[b];
    }
  }
  m.set_accounting(total);
  return m;
}

Gib OspSync::restrict_to_ps(const Gib& gib, std::size_t ps,
                            bool want_important,
                            bool encode_as_important) const {
  Gib out = encode_as_important ? Gib::all_unimportant(gib.size())
                                : Gib::all_important(gib.size());
  for (std::size_t b = 0; b < gib.size(); ++b) {
    const bool selected =
        part_.owner[b] == ps && gib.important(b) == want_important;
    if (selected) out.set_important(b, encode_as_important);
  }
  return out;
}

void OspSync::on_gradient_ready(std::size_t worker) {
  const std::uint64_t r = round_ + 1;
  rs_awaiting_[worker] = true;
  rs_awaiting_round_[worker] = r;
  for (std::size_t p = 0; p < num_ps_; ++p) {
    push_rs_shard(worker, r, p);
  }
  arm_rs_timer();
}

void OspSync::push_rs_shard(std::size_t worker, std::uint64_t round,
                            std::size_t p) {
  // Whole chain down: the push is re-issued when a restart repoints the
  // shard (repoint_shard re-pushes for every worker still awaiting).
  const std::size_t host = serving_[p];
  if (host == kv::ReplicaTable::npos) return;
  const kv::KvMessage m =
      shard_message(kv::Op::kPush, static_cast<std::uint32_t>(worker), round,
                    p, gib_, /*important=*/true);
  // The epoch fences deliveries against a failover: a flow addressed to a
  // host that lost the shard in the meantime is void on arrival.
  const std::uint64_t epoch = shard_epoch_[p];
  tx_.push(worker, host, m, /*owned=*/true, [this, round, p, worker, epoch] {
    on_rs_push_arrived(round, p, worker, epoch);
  });
}

void OspSync::arm_rs_timer() {
  const double deadline = timeouts().rs_timeout_s;
  if (deadline <= 0.0 || rs_timer_armed_) return;
  rs_timer_armed_ = true;
  const std::uint64_t r = round_ + 1;
  eng().sim().schedule(deadline, [this, r] {
    if (r != round_ + 1) return;  // the round closed naturally
    rs_timer_armed_ = false;
    // Quiescent expiry (e.g. the watchdog armed at the last close of the
    // run): nothing arrived and nobody is stuck — not a timeout.
    runtime::Engine& e = eng();
    bool pending = rs_contributed_count_ > 0;
    for (std::size_t w = 0; w < e.num_workers() && !pending; ++w) {
      pending = rs_awaiting_[w] && e.worker_alive(w);
    }
    if (!pending) return;
    e.record_round_timeout();
    close_rs();
    ++e.telemetry_round(round_).timeouts;  // round_ is the round just closed
  });
}

void OspSync::on_rs_push_arrived(std::uint64_t round, std::size_t p,
                                 std::size_t worker, std::uint64_t epoch) {
  if (epoch != shard_epoch_[p]) return;  // landed at a deposed host
  if (round != round_ + 1) {
    // Late shard from a round that already closed: the gradient is stale —
    // discard it and resync the worker so it can rejoin.
    if (rs_awaiting_[worker] && eng().worker_alive(worker))
      catch_up(worker);
    return;
  }
  if (rs_arrived_[p][worker] != 0) return;  // re-push raced its original
  rs_arrived_[p][worker] = 1;
  if (++rs_shards_arrived_[worker] < num_ps_) return;
  rs_contributed_[worker] = true;
  ++rs_contributed_count_;
  maybe_close_rs();
}

void OspSync::on_worker_crashed(std::size_t worker) {
  ++unhealthy_;
  rs_awaiting_[worker] = false;  // its flows are cancelled
  rs_pending_[worker] = 0;
  // Partial shard pushes can no longer complete; a finished contribution
  // is kept (the gradient already reached every shard).
  if (!rs_contributed_[worker]) {
    rs_shards_arrived_[worker] = 0;
    for (std::size_t p = 0; p < num_ps_; ++p) rs_arrived_[p][worker] = 0;
  }
  // Drop it from every in-flight ICS round; some shards may now complete
  // with the remaining members.
  std::vector<std::uint64_t> affected;
  for (IcsRound& r : ics_inflight_) {
    if (r.members[worker]) {
      r.members[worker] = false;
      affected.push_back(r.round);
    }
  }
  for (std::uint64_t rnd : affected) check_ics_round(rnd);
  // Its open ICS spans die with it (the downtime span covers the gap).
  for (auto it = ics_trace_.begin(); it != ics_trace_.end();) {
    it->second.pending.erase(worker);
    it = it->second.pending.empty() ? ics_trace_.erase(it) : std::next(it);
  }
  maybe_close_rs();  // the RS barrier may now be satisfiable
}

void OspSync::on_worker_restarted(std::size_t worker) {
  (void)worker;
  OSP_CHECK(unhealthy_ > 0, "restart without a preceding crash");
  --unhealthy_;
}

void OspSync::on_ps_crashed(std::size_t ps) {
  replica_.set_alive(ps, false);
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (serving_[p] == ps) repoint_shard(p);
  }
}

void OspSync::on_ps_restarted(std::size_t ps) {
  replica_.set_alive(ps, true);
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (replica_.serving(p) != serving_[p]) repoint_shard(p);
  }
}

void OspSync::repoint_shard(std::size_t p) {
  runtime::Engine& e = eng();
  const std::size_t target = replica_.serving(p);
  if (target == serving_[p]) return;
  serving_[p] = target;
  ++shard_epoch_[p];  // arrivals addressed to the deposed host are void
  // Arrivals the dead host was holding for the collecting round never
  // made it into an aggregate: un-count them so the barrier waits for the
  // re-pushes (a worker that lost a shard loses its "contributed" mark).
  const std::uint64_t collecting = round_ + 1;
  for (std::size_t w = 0; w < e.num_workers(); ++w) {
    if (rs_arrived_[p][w] == 0) continue;
    rs_arrived_[p][w] = 0;
    OSP_CHECK(rs_shards_arrived_[w] > 0, "RS arrival accounting underflow");
    --rs_shards_arrived_[w];
    if (rs_contributed_[w]) {
      rs_contributed_[w] = false;
      --rs_contributed_count_;
    }
  }
  if (target == kv::ReplicaTable::npos) return;  // wait for a restart
  // Version-predicate catch-up: ship exactly the segments whose tail
  // update had not reached the replica, and charge the new host's queue.
  const double shipped = replica_.catch_up(p, store_);
  e.record_ps_promotion(shipped);
  {
    runtime::SyncTelemetry& rec = e.telemetry_round(collecting);
    ++rec.promotions;
    rec.catch_up_bytes += shipped;
  }
  if (shipped > 0.0) {
    e.ps_submit(e.ps_apply_delay(shipped, 1.0), [] {}, target);
  }
  // RS responses whose job died with the old host's queue are re-submitted
  // on the promoted replica — re-answered, never re-applied (the optimizer
  // step ran once at close_rs; the version stamps stay monotone).
  for (PendingRsResp& pr : pending_rs_resp_) {
    if (pr.ps != p) continue;
    if (pr.host != kv::ReplicaTable::npos && e.ps_alive(pr.host)) continue;
    pr.host = target;
    submit_rs_response(pr.id);
  }
  // Workers still awaiting the collecting round re-push this shard to the
  // new host (their original flows, if in flight, are epoch-fenced).
  for (std::size_t w = 0; w < e.num_workers(); ++w) {
    if (!e.worker_alive(w)) continue;
    if (!rs_awaiting_[w] || rs_awaiting_round_[w] != collecting) continue;
    push_rs_shard(w, collecting, p);
  }
  // In-flight ICS rounds whose shard-p step has not run yet lost whatever
  // the dead host had collected: alive members re-push shard p. Shards
  // already applied stay applied — their step is never re-run.
  for (IcsRound& r : ics_inflight_) {
    if (r.applied[p]) continue;
    kv::KvMessage m = shard_message(kv::Op::kPush, 0, r.round, p, r.gib,
                                    /*important=*/false);
    if (m.value_bytes <= 0.0) continue;
    const std::uint64_t epoch = shard_epoch_[p];
    for (std::size_t w = 0; w < e.num_workers(); ++w) {
      if (!r.members[w] || !e.worker_alive(w)) continue;
      r.arrived_from[p][w] = false;
      m.sender = static_cast<std::uint32_t>(w);
      const std::uint64_t rnd = r.round;
      tx_.push(w, target, m, /*owned=*/true, [this, rnd, p, w, epoch] {
        on_ics_push_arrived(rnd, p, w, epoch);
      });
    }
  }
}

void OspSync::maybe_close_rs() {
  if (rs_contributed_count_ == 0) return;
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  for (std::size_t w = 0; w < n; ++w) {
    if (rs_contributed_[w] || !e.worker_alive(w)) continue;
    if (survival_ && e.worker_done(w)) continue;
    // A stuck worker (awaiting a response from an older round, e.g. one
    // whose RS response was dropped) will never push again — the timeout
    // path resyncs it; everyone else we genuinely wait for.
    if (rs_awaiting_[w] && rs_awaiting_round_[w] <= round_) continue;
    return;
  }
  close_rs();
}

void OspSync::close_rs() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  const std::vector<bool> contributors = rs_contributed_;
  const std::size_t contributed = rs_contributed_count_;
  const std::uint64_t this_round = ++round_;
  rs_timer_armed_ = false;
  rs_shards_arrived_.assign(n, 0);
  rs_contributed_.assign(n, false);
  rs_contributed_count_ = 0;
  for (auto& row : rs_arrived_) {
    std::fill(row.begin(), row.end(), std::uint8_t{0});
  }

  // Telemetry record for this round — created before the empty-round early
  // return so timed-out rounds with zero contributors stay visible, and
  // before the resync loop so catch_up's retry counts land on it.
  {
    runtime::SyncTelemetry& rec = e.telemetry_round(this_round);
    rec.contributors = contributed;
    rec.ics_budget_bytes = ics_budget_;
  }

  // Resync healthy workers whose push missed the round. A worker stays
  // `rs_awaiting_` until some response is delivered, so a lost catch-up
  // pull is retried at the next close; duplicate deliveries no-op.
  bool resyncing = false;
  for (std::size_t w = 0; w < n; ++w) {
    if (rs_awaiting_[w] && e.worker_alive(w)) {
      resyncing = true;
      if (!contributors[w]) catch_up(w);
    }
  }
  // Watchdog: while any healthy worker still waits on a response, keep a
  // timer armed so a dropped response or catch-up pull is retried at the
  // next expiry instead of deadlocking the cluster.
  if (resyncing && !e.stopping()) arm_rs_timer();
  if (contributed == 0) return;  // nothing arrived: no step this round

  // Aggregate the round's *full* gradients once; the unimportant part is
  // exactly what the workers' ICS pushes will deliver, so the snapshot
  // keeps the numerics identical while the bytes flow on the virtual wire.
  // §2.1.1: weight by sample share; a partial round renormalizes over the
  // contributors while the full-round path keeps the exact historical
  // arithmetic.
  agg_.assign(e.global_params().size(), 0.0f);
  if (contributed == n) {
    for (std::size_t w = 0; w < n; ++w) {
      util::axpy(static_cast<float>(e.worker_weight(w)),
                 e.worker_gradient(w), agg_);
    }
  } else {
    double weight_sum = 0.0;
    for (std::size_t w = 0; w < n; ++w) {
      if (contributors[w]) weight_sum += e.worker_weight(w);
    }
    // Defensive twin of the contributed == 0 gate above: a contributor set
    // whose weights sum to zero must close as a no-op, not divide by zero.
    if (weight_sum <= 0.0) return;
    for (std::size_t w = 0; w < n; ++w) {
      if (!contributors[w]) continue;
      util::axpy(static_cast<float>(e.worker_weight(w) / weight_sum),
                 e.worker_gradient(w), agg_);
    }
  }
  if (ema_lgp_ != nullptr) ema_lgp_->observe_global(agg_);

  // (b) Step the important blocks of the global model.
  e.apply_global_step_blocks(agg_, mask_from_gib(gib_, true));
  {
    std::vector<std::uint8_t> stepped(gib_.size(), 0);
    for (std::size_t b = 0; b < gib_.size(); ++b) {
      stepped[b] = gib_.important(b) ? 1 : 0;
    }
    store_.bump_selected(stepped);
    for (std::size_t b = 0; b < gib_.size(); ++b) {
      if (stepped[b] != 0) {
        // Async replication trails the apply by one update per segment.
        replica_.note_update(static_cast<kv::Key>(b),
                             store_.version(static_cast<kv::Key>(b)));
      }
    }
  }

  // (c) Asynchronous GIB calculation for the next round.
  const Gib round_gib = gib_;
  gib_ = compute_next_gib();

  {
    // The GIB split this round's bytes travelled under (§4.1).
    runtime::SyncTelemetry& rec = e.telemetry_round(this_round);
    rec.gib_important = round_gib.count_important();
    rec.gib_unimportant = round_gib.count_unimportant();
    rec.important_bytes = round_gib.important_bytes(e.all_block_bytes());
    rec.unimportant_bytes = round_gib.unimportant_bytes(e.all_block_bytes());
    rec.replica_lag = replica_.lag(store_);
  }

  const double lr = e.current_lr();
  // RS responses go to the contributors that are still up and waiting; the
  // same set carries the round's ICS pushes.
  std::vector<bool> recipients(n, false);
  for (std::size_t w = 0; w < n; ++w) {
    recipients[w] =
        contributors[w] && e.worker_alive(w) && rs_awaiting_[w];
    rs_pending_[w] = recipients[w] ? num_ps_ : 0;
  }

  // (d) Per PS shard: the optimizer application over that shard's RS bytes
  // (one job on the shard's serial queue — accumulation streams with the
  // incast arrivals, PGP/sort is the asynchronous GIB calculation of §4.4),
  // then the RS responses carrying the shard's updated important blocks +
  // the new GIB.
  for (std::size_t p = 0; p < num_ps_; ++p) {
    // The response carries the shard's updated important blocks, with the
    // next round's GIB piggybacked in the meta channel (§4.1's PushGIB).
    kv::KvMessage resp =
        shard_message(kv::Op::kPullResponse, static_cast<std::uint32_t>(p),
                      this_round, p, round_gib, /*important=*/true);
    store_.stamp_versions(resp);
    resp.meta_bytes += static_cast<double>(gib_.wire_bytes());
    PendingRsResp pending;
    pending.id = next_resp_id_++;
    pending.ps = p;
    pending.host = serving_[p];
    pending.resp = std::move(resp);
    pending.round_gib = round_gib;
    pending.lr = lr;
    pending.recipients = recipients;
    pending_rs_resp_.push_back(std::move(pending));
    submit_rs_response(pending_rs_resp_.back().id);
  }
  start_ics_round(this_round, round_gib, recipients);
}

void OspSync::submit_rs_response(std::uint64_t id) {
  runtime::Engine& e = eng();
  const auto it = std::find_if(
      pending_rs_resp_.begin(), pending_rs_resp_.end(),
      [id](const PendingRsResp& r) { return r.id == id; });
  OSP_CHECK(it != pending_rs_resp_.end(), "unknown pending RS response");
  // Shard's whole chain down: repoint_shard re-submits at the restart.
  if (it->host == kv::ReplicaTable::npos) return;
  e.ps_submit(
      e.ps_apply_delay(it->resp.value_bytes, 3.0),
      [this, id] {
        const auto fit = std::find_if(
            pending_rs_resp_.begin(), pending_rs_resp_.end(),
            [id](const PendingRsResp& r) { return r.id == id; });
        if (fit == pending_rs_resp_.end()) return;
        // Detach: once the responses are on the wire (worker-owned flows,
        // which survive PS crashes) there is nothing left to re-drive.
        const PendingRsResp pr = std::move(*fit);
        pending_rs_resp_.erase(fit);
        const std::size_t p = pr.ps;
        const Gib round_gib = pr.round_gib;
        const double lr = pr.lr;
        for (std::size_t w = 0; w < eng().num_workers(); ++w) {
          if (!pr.recipients[w]) continue;
          tx_.respond(
              w, pr.host, pr.resp, /*owned=*/true,
              [this, w, p, round_gib, lr] {
                runtime::Engine& e2 = eng();
                if (!e2.worker_alive(w) || rs_pending_[w] == 0) return;
                // Install this shard's important blocks (the restricted
                // view encodes the selection as its important set).
                copy_important_blocks(
                    e2.worker_params(w), e2.global_params(), e2.blocks(),
                    restrict_to_ps(round_gib, p, /*want_important=*/true,
                                   /*encode_as_important=*/true));
                if (--rs_pending_[w] > 0) return;
                // Last shard delivered: LGP prediction + next iteration.
                rs_awaiting_[w] = false;
                if (options_.enable_lgp) {
                  if (ema_lgp_ != nullptr) {
                    ema_lgp_->apply_local_step(e2.worker_params(w),
                                               e2.worker_gradient(w), lr,
                                               e2.blocks(), round_gib);
                  } else {
                    lgp_apply_local_step(e2.worker_params(w),
                                         e2.worker_gradient(w), lr,
                                         e2.blocks(), round_gib);
                  }
                }
                e2.finish_sync(w);
              });
        }
      },
      it->host);
}

void OspSync::catch_up(std::size_t worker) {
  runtime::Engine& e = eng();
  // The pull is served by whichever host currently serves shard 0; with
  // the whole chain down it is skipped — the RS watchdog retries at the
  // next expiry (the worker stays rs_awaiting_).
  const std::size_t src = serving_[0];
  if (src == kv::ReplicaTable::npos) return;
  e.record_catch_up_pull();
  ++e.telemetry_round(round_).retries;
  // Full-model resync pull: every segment, current versions.
  kv::KvMessage pull;
  pull.begin(kv::Op::kPullResponse, static_cast<std::uint32_t>(src), round_,
             store_.key_range());
  store_.stamp_versions(pull);
  pull.set_accounting(e.model_bytes());
  tx_.respond(worker, src, pull, /*owned=*/true, [this, worker] {
                      runtime::Engine& e2 = eng();
                      if (!e2.worker_alive(worker) || !rs_awaiting_[worker])
                        return;
                      rs_awaiting_[worker] = false;
                      rs_pending_[worker] = 0;
                      util::copy(e2.global_params(),
                                 e2.worker_params(worker));
                      e2.finish_sync(worker);
                    });
}

Gib OspSync::compute_next_gib() {
  runtime::Engine& e = eng();
  // §4.3 under faults: while any worker or PS host is down, degrade to
  // RS-only (all blocks important, no ICS) — Algorithm 1's budget resumes
  // on recovery.
  if (unhealthy_ > 0) return Gib::all_important(e.num_blocks());
  if (e.num_ps_crashed() > 0) return Gib::all_important(e.num_blocks());
  if (ics_budget_ <= 0.0) return Gib::all_important(e.num_blocks());
  std::vector<double> importance;
  switch (options_.ranking) {
    case OspOptions::Ranking::kPgp:
      importance = density_normalize(
          pgp_importance(e.global_params(), agg_, e.blocks()), e.blocks());
      break;
    case OspOptions::Ranking::kPgpSum:
      importance = pgp_importance(e.global_params(), agg_, e.blocks());
      break;
    case OspOptions::Ranking::kMagnitude:
      importance = magnitude_importance(agg_, e.blocks());
      break;
    case OspOptions::Ranking::kRandom:
      importance.resize(e.num_blocks());
      for (double& v : importance) v = rng_.uniform();
      break;
  }
  return Gib::from_ranking(rank_ascending(importance), e.all_block_bytes(),
                           ics_budget_);
}

void OspSync::start_ics_round(std::uint64_t round, const Gib& gib,
                              const std::vector<bool>& members) {
  runtime::Engine& e = eng();
  if (gib.count_unimportant() == 0) return;
  std::size_t member_count = 0;
  for (std::size_t w = 0; w < members.size(); ++w) {
    if (members[w]) ++member_count;
  }
  if (member_count == 0) return;
  IcsRound state;
  state.round = round;
  state.gib = gib;
  state.grad = agg_;  // snapshot: workers' buffers get reused next round
  state.members = members;
  state.arrived_from.assign(
      num_ps_, std::vector<bool>(e.num_workers(), false));
  state.applied.assign(num_ps_, false);
  // Shards that carry no unimportant bytes have nothing to wait for.
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (ps_bytes(gib, p, /*important=*/false) <= 0.0) {
      state.applied[p] = true;
    }
  }
  ics_inflight_.push_back(std::move(state));
  if (e.tracing()) {
    // One ICS span per member, open from the first unimportant push until
    // the member's last shard correction lands (ics_trace_note_correction).
    std::size_t carrying = 0;
    for (std::size_t p = 0; p < num_ps_; ++p) {
      if (ps_bytes(gib, p, /*important=*/false) > 0.0) ++carrying;
    }
    if (carrying > 0) {
      IcsTrace t;
      t.begin_s = e.sim().now();
      for (std::size_t w = 0; w < members.size(); ++w) {
        if (members[w]) t.pending[w] = carrying;
      }
      ics_trace_[round] = std::move(t);
    }
  }
  for (std::size_t p = 0; p < num_ps_; ++p) {
    kv::KvMessage m = shard_message(kv::Op::kPush, 0, round, p, gib,
                                    /*important=*/false);
    if (m.value_bytes <= 0.0) continue;
    // Whole chain down: skipped now, re-pushed when a restart repoints
    // the shard (repoint_shard re-drives unapplied ICS shards).
    const std::size_t host = serving_[p];
    if (host == kv::ReplicaTable::npos) continue;
    const std::uint64_t epoch = shard_epoch_[p];
    for (std::size_t w = 0; w < e.num_workers(); ++w) {
      if (!members[w]) continue;
      m.sender = static_cast<std::uint32_t>(w);
      tx_.push(w, host, m, /*owned=*/true, [this, round, p, w, epoch] {
        on_ics_push_arrived(round, p, w, epoch);
      });
    }
  }
  if (timeouts().ics_timeout_s > 0.0) {
    e.sim().schedule(timeouts().ics_timeout_s, [this, round] {
      auto it = std::find_if(
          ics_inflight_.begin(), ics_inflight_.end(),
          [round](const IcsRound& r) { return r.round == round; });
      if (it == ics_inflight_.end()) return;  // completed in time
      eng().record_ics_abandoned();
      ics_inflight_.erase(it);
      ics_trace_abandon(round);
    });
  }
}

void OspSync::on_ics_push_arrived(std::uint64_t round, std::size_t ps,
                                  std::size_t worker, std::uint64_t epoch) {
  if (epoch != shard_epoch_[ps]) return;  // landed at a deposed host
  auto it = std::find_if(
      ics_inflight_.begin(), ics_inflight_.end(),
      [round](const IcsRound& r) { return r.round == round; });
  if (it == ics_inflight_.end()) return;  // round abandoned or timed out
  it->arrived_from[ps][worker] = true;
  check_ics_round(round);
}

void OspSync::check_ics_round(std::uint64_t round) {
  runtime::Engine& e = eng();
  auto it = std::find_if(
      ics_inflight_.begin(), ics_inflight_.end(),
      [round](const IcsRound& r) { return r.round == round; });
  if (it == ics_inflight_.end()) return;

  bool any_member = false;
  for (std::size_t w = 0; w < it->members.size(); ++w) {
    if (it->members[w]) any_member = true;
  }
  if (!any_member) {
    // Everyone who owed pushes crashed: the remaining shards will never
    // arrive. Drop the round (already-applied shards keep their step).
    e.record_ics_abandoned();
    ics_inflight_.erase(it);
    ics_trace_abandon(round);
    return;
  }

  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (it->applied[p]) continue;
    bool complete = true;
    for (std::size_t w = 0; w < it->members.size(); ++w) {
      if (it->members[w] && !it->arrived_from[p][w]) complete = false;
    }
    if (!complete) continue;
    it->applied[p] = true;

    // All of this shard's unimportant gradients arrived: step its blocks
    // and send the corrected values back (Eq. 7 on the worker side).
    const Gib shard_view =
        restrict_to_ps(it->gib, p, /*want_important=*/false,
                       /*encode_as_important=*/false);
    e.apply_global_step_blocks(it->grad, mask_from_gib(shard_view, false));
    {
      // The correction stepped this shard's unimportant blocks.
      std::vector<std::uint8_t> stepped(shard_view.size(), 0);
      for (std::size_t b = 0; b < shard_view.size(); ++b) {
        stepped[b] = shard_view.important(b) ? 0 : 1;
      }
      store_.bump_selected(stepped);
      for (std::size_t b = 0; b < shard_view.size(); ++b) {
        if (stepped[b] != 0) {
          // Async replication trails the apply by one update per segment.
          replica_.note_update(static_cast<kv::Key>(b),
                               store_.version(static_cast<kv::Key>(b)));
        }
      }
    }

    kv::KvMessage resp =
        shard_message(kv::Op::kPullResponse, static_cast<std::uint32_t>(p),
                      round, p, it->gib, /*important=*/false);
    store_.stamp_versions(resp);
    const std::vector<bool> members = it->members;
    // Correction answers queue on the shard's serving host (the one the
    // completing push just landed on). A correction that dies with a
    // crashed queue is NOT re-driven: the member keeps its LGP prediction
    // — exactly the no-correction degradation OSP already tolerates.
    const std::size_t host = serving_[p];
    e.ps_submit(
        e.ps_apply_delay(resp.value_bytes, 3.0),
        [this, round, shard_view, resp, members, host] {
          runtime::Engine& en = eng();
          for (std::size_t w = 0; w < en.num_workers(); ++w) {
            if (!members[w] || !en.worker_alive(w)) continue;
            tx_.respond(w, host, resp, /*owned=*/true,
                               [this, w, round, shard_view] {
                                 runtime::Engine& e2 = eng();
                                 if (!e2.worker_alive(w)) return;
                                 // The bytes arrived either way — the span
                                 // closes even when a newer round already
                                 // superseded this correction.
                                 if (e2.tracing()) {
                                   ics_trace_note_correction(round, w);
                                 }
                                 if (round < last_ics_applied_[w]) return;
                                 if (e2.config().record_telemetry) {
                                   // Eq. 7 magnitude: how far the LGP
                                   // prediction drifted from the global
                                   // result over the corrected blocks.
                                   double sq = 0.0;
                                   const std::span<const float> gp =
                                       e2.global_params();
                                   const std::span<const float> wp =
                                       e2.worker_params(w);
                                   const auto& blocks = e2.blocks();
                                   for (std::size_t b = 0;
                                        b < shard_view.size(); ++b) {
                                     if (shard_view.important(b)) continue;
                                     const auto& info = blocks[b];
                                     for (std::size_t i = info.offset;
                                          i < info.offset + info.numel; ++i) {
                                       const double d =
                                           static_cast<double>(gp[i]) -
                                           static_cast<double>(wp[i]);
                                       sq += d * d;
                                     }
                                   }
                                   e2.telemetry_round(round)
                                       .lgp_correction_sq += sq;
                                 }
                                 lgp_correct_blocks(e2.worker_params(w),
                                                    e2.global_params(),
                                                    e2.blocks(), shard_view);
                                 last_ics_applied_[w] = round;
                               });
          }
        },
        host);
  }

  bool all_applied = true;
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (!it->applied[p]) all_applied = false;
  }
  if (all_applied) {
    ++ics_rounds_completed_;
    ics_inflight_.erase(it);
  }
}

void OspSync::ics_trace_note_correction(std::uint64_t round, std::size_t w) {
  const auto it = ics_trace_.find(round);
  if (it == ics_trace_.end()) return;
  const auto pit = it->second.pending.find(w);
  if (pit == it->second.pending.end()) return;
  if (--pit->second > 0) return;
  runtime::Engine& e = eng();
  e.trace_mutable().add({it->second.begin_s, e.sim().now(), w,
                         e.worker_iteration(w), runtime::TracePhase::kIcs});
  it->second.pending.erase(pit);
  if (it->second.pending.empty()) ics_trace_.erase(it);
}

void OspSync::ics_trace_abandon(std::uint64_t round) {
  const auto it = ics_trace_.find(round);
  if (it == ics_trace_.end()) return;
  runtime::Engine& e = eng();
  for (const auto& [w, left] : it->second.pending) {
    if (!e.worker_alive(w)) continue;
    e.trace_mutable().add({it->second.begin_s, e.sim().now(), w,
                           e.worker_iteration(w), runtime::TracePhase::kIcs});
  }
  ics_trace_.erase(it);
}

void OspSync::on_epoch_complete(std::size_t epoch, double mean_loss) {
  if (options_.fixed_budget_fraction >= 0.0) return;  // ablation: fixed
  ics_budget_ = tuner_->on_epoch_loss(epoch, mean_loss);
  runtime::Engine& e = eng();
  if (e.tracing()) {
    e.trace_mutable().add_counter(e.sim().now(), "ics_budget_bytes",
                                  ics_budget_);
  }
}

void OspSync::save_state(util::serde::Writer& w) const {
  w.u8(3);  // OSP state version (3: PS replication)
  w.u64(round_);
  const std::vector<std::uint8_t> gib_bytes = gib_.serialize();
  w.bytes(gib_bytes);
  w.f64(ics_budget_);
  // Algorithm 1 state: u_max is reconstructed from the cluster config in
  // attach(); the loss-driven part must travel.
  w.f64(tuner_->reference_loss());
  w.f64(tuner_->current_budget());
  w.boolean(tuner_->initialized());
  const util::RngState rng = rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.boolean(rng.have_spare_normal);
  w.f64(rng.spare_normal);
  w.boolean(ema_lgp_ != nullptr);
  if (ema_lgp_ != nullptr) {
    w.f32_vec(ema_lgp_->ema());
    w.boolean(ema_lgp_->has_history());
  }
  w.u64_vec(last_ics_applied_);
  w.u64(ics_rounds_completed_);
  w.u64(unhealthy_);
  w.size_vec(rs_shards_arrived_);
  w.bool_vec(rs_contributed_);
  w.u64(rs_contributed_count_);
  w.bool_vec(rs_awaiting_);
  w.u64_vec(rs_awaiting_round_);
  w.size_vec(rs_pending_);
  w.size_vec(serving_);
  w.u64_vec(shard_epoch_);
  replica_.save_state(w);
  store_.save_state(w);
}

void OspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 3, "unsupported OSP state version");
  round_ = r.u64();
  gib_ = Gib::deserialize(r.bytes());
  OSP_CHECK(gib_.size() == eng().num_blocks(),
            "OSP checkpoint GIB block count mismatch");
  ics_budget_ = r.f64();
  const double ref_loss = r.f64();
  const double budget = r.f64();
  const bool initialized = r.boolean();
  tuner_->restore(ref_loss, budget, initialized);
  util::RngState rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.have_spare_normal = r.boolean();
  rng.spare_normal = r.f64();
  rng_.set_state(rng);
  const bool has_ema = r.boolean();
  OSP_CHECK(has_ema == (ema_lgp_ != nullptr),
            "OSP checkpoint EMA-LGP configuration mismatch");
  if (has_ema) {
    std::vector<float> ema(eng().global_params().size());
    r.f32_into(ema);
    const bool has_history = r.boolean();
    ema_lgp_->restore(ema, has_history);
  }
  last_ics_applied_ = r.u64_vec();
  ics_rounds_completed_ = static_cast<std::size_t>(r.u64());
  unhealthy_ = static_cast<std::size_t>(r.u64());
  rs_shards_arrived_ = r.size_vec();
  rs_contributed_ = r.bool_vec();
  rs_contributed_count_ = static_cast<std::size_t>(r.u64());
  rs_awaiting_ = r.bool_vec();
  rs_awaiting_round_ = r.u64_vec();
  rs_pending_ = r.size_vec();
  const std::size_t n = eng().num_workers();
  OSP_CHECK(last_ics_applied_.size() == n && rs_shards_arrived_.size() == n &&
                rs_contributed_.size() == n && rs_awaiting_.size() == n &&
                rs_awaiting_round_.size() == n && rs_pending_.size() == n,
            "OSP checkpoint worker count mismatch");
  serving_ = r.size_vec();
  shard_epoch_ = r.u64_vec();
  OSP_CHECK(serving_.size() == num_ps_ && shard_epoch_.size() == num_ps_,
            "OSP checkpoint failover state mismatch");
  replica_.load_state(r);
  store_.load_state(r);
  rs_timer_armed_ = false;  // re-armed by the next push
  ics_inflight_.clear();    // drained before every snapshot
  // Collecting-round bookkeeping is empty at the drain barrier.
  rs_arrived_.assign(num_ps_, std::vector<std::uint8_t>(n, 0));
  pending_rs_resp_.clear();
}

bool OspSync::drained() const {
  return ics_inflight_.empty() && !rs_timer_armed_ &&
         rs_contributed_count_ == 0 &&
         std::none_of(rs_awaiting_.begin(), rs_awaiting_.end(),
                      [](bool b) { return b; }) &&
         std::all_of(rs_pending_.begin(), rs_pending_.end(),
                     [](std::size_t v) { return v == 0; });
}

}  // namespace osp::core
