#include "core/osp_sync.hpp"

#include <algorithm>

#include "core/pgp.hpp"
#include "sync/sharding.hpp"
#include "sync/transfer.hpp"
#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::core {

namespace {
std::vector<bool> mask_from_gib(const Gib& gib, bool important_set) {
  std::vector<bool> mask(gib.size());
  for (std::size_t i = 0; i < gib.size(); ++i) {
    mask[i] = gib.important(i) == important_set;
  }
  return mask;
}
}  // namespace

OspSync::OspSync(OspOptions options)
    : options_(options), rng_(options.seed), gib_(Gib::all_important(0)) {}

std::string OspSync::name() const {
  std::string n = options_.colocated_ps ? "OSP-C" : "OSP";
  if (!options_.enable_lgp) n += "(no-LGP)";
  if (options_.use_ema_lgp) n += "(EMA)";
  if (options_.ranking == OspOptions::Ranking::kPgpSum) n += "(sum)";
  if (options_.ranking == OspOptions::Ranking::kMagnitude) n += "(mag)";
  if (options_.ranking == OspOptions::Ranking::kRandom) n += "(rand)";
  if (options_.fixed_budget_fraction >= 0.0) {
    n += "(fixed=" +
         std::to_string(
             static_cast<int>(options_.fixed_budget_fraction * 100)) +
         "%)";
  }
  if (num_ps_ > 1) n += "(x" + std::to_string(num_ps_) + "PS)";
  return n;
}

void OspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  gib_ = Gib::all_important(eng.num_blocks());
  num_ps_ = eng.cluster().num_ps();
  block_to_ps_ =
      sync::assign_blocks_to_shards(eng.all_block_bytes(), num_ps_);

  IcsBudgetParams p;
  // §6.1: with P parameter servers the ICS drains through P independent
  // ingress links, so the Eq. 5 capacity term scales by P.
  p.bandwidth_bytes_per_s =
      sim::gbps_to_bytes_per_sec(eng.cluster().config().link_gbps) *
      static_cast<double>(num_ps_);
  p.loss_rate = eng.cluster().config().loss_rate;
  p.incast_alpha = eng.cluster().config().incast_alpha;
  p.compute_time_s = eng.base_compute_time();
  p.num_workers = eng.num_workers();
  p.model_bytes = eng.model_bytes();
  p.cap_fraction = options_.cap_fraction;
  tuner_ = std::make_unique<SguTuner>(ics_upper_bound(p));

  if (options_.fixed_budget_fraction >= 0.0) {
    ics_budget_ = std::min(options_.fixed_budget_fraction,
                           options_.cap_fraction) *
                  eng.model_bytes();
  } else {
    ics_budget_ = 0.0;  // Algorithm 1 line 9
  }

  if (options_.use_ema_lgp) {
    ema_lgp_ = std::make_unique<EmaLgp>(eng.global_params().size(),
                                        options_.ema_beta,
                                        options_.ema_alpha);
  }
  if (options_.colocated_ps) {
    OSP_CHECK(eng.cluster().config().colocated_ps,
              "OSP-C needs a co-located cluster configuration");
    eng.set_worker_compute_overhead(0, eng.spec().gib_overhead_fraction);
  }
  rs_arrived_ = 0;
  round_ = 0;
  rs_pending_.assign(eng.num_workers(), 0);
  ics_inflight_.clear();
  last_ics_applied_.assign(eng.num_workers(), 0);
  ics_rounds_completed_ = 0;
}

double OspSync::u_max() const { return tuner_->u_max(); }

double OspSync::ps_bytes(const Gib& gib, std::size_t ps,
                         bool important) const {
  const auto& bytes = eng().all_block_bytes();
  double total = 0.0;
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    if (block_to_ps_[b] == ps && gib.important(b) == important) {
      total += bytes[b];
    }
  }
  return total;
}

Gib OspSync::restrict_to_ps(const Gib& gib, std::size_t ps,
                            bool want_important,
                            bool encode_as_important) const {
  Gib out = encode_as_important ? Gib::all_unimportant(gib.size())
                                : Gib::all_important(gib.size());
  for (std::size_t b = 0; b < gib.size(); ++b) {
    const bool selected =
        block_to_ps_[b] == ps && gib.important(b) == want_important;
    if (selected) out.set_important(b, encode_as_important);
  }
  return out;
}

void OspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  for (std::size_t p = 0; p < num_ps_; ++p) {
    const double bytes = ps_bytes(gib_, p, /*important=*/true);
    sync::transfer(e, e.cluster().route_to_ps(worker, p), bytes,
                   [this] { on_rs_push_arrived(); });
  }
}

void OspSync::on_rs_push_arrived() {
  ++rs_arrived_;
  if (rs_arrived_ == eng().num_workers() * num_ps_) {
    rs_arrived_ = 0;
    rs_aggregate();
  }
}

void OspSync::rs_aggregate() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();

  // Aggregate the round's *full* gradients once; the unimportant part is
  // exactly what the workers' ICS pushes will deliver, so the snapshot
  // keeps the numerics identical while the bytes flow on the virtual wire.
  agg_.assign(e.global_params().size(), 0.0f);
  for (std::size_t w = 0; w < n; ++w) {
    util::axpy(static_cast<float>(e.worker_weight(w)),
               e.worker_gradient(w), agg_);
  }
  if (ema_lgp_ != nullptr) ema_lgp_->observe_global(agg_);

  // (b) Step the important blocks of the global model.
  e.apply_global_step_blocks(agg_, mask_from_gib(gib_, true));

  // (c) Asynchronous GIB calculation for the next round.
  const Gib round_gib = gib_;
  gib_ = compute_next_gib();

  const double lr = e.current_lr();
  const std::uint64_t this_round = ++round_;
  for (std::size_t w = 0; w < n; ++w) rs_pending_[w] = num_ps_;

  // (d) Per PS shard: the optimizer application over that shard's RS bytes
  // (one job on the shard's serial queue — accumulation streams with the
  // incast arrivals, PGP/sort is the asynchronous GIB calculation of §4.4),
  // then the RS responses carrying the shard's updated important blocks +
  // the new GIB.
  for (std::size_t p = 0; p < num_ps_; ++p) {
    const double important = ps_bytes(round_gib, p, /*important=*/true);
    const double response_bytes =
        important + static_cast<double>(gib_.wire_bytes());
    e.ps_submit(
        e.ps_apply_delay(important, 3.0),
        [this, p, response_bytes, round_gib, lr] {
          runtime::Engine& en = eng();
          for (std::size_t w = 0; w < en.num_workers(); ++w) {
            sync::transfer(
                en, en.cluster().route_from_ps(w, p), response_bytes,
                [this, w, p, round_gib, lr] {
                  runtime::Engine& e2 = eng();
                  // Install this shard's important blocks (the restricted
                  // view encodes the selection as its important set).
                  copy_important_blocks(
                      e2.worker_params(w), e2.global_params(), e2.blocks(),
                      restrict_to_ps(round_gib, p, /*want_important=*/true,
                                     /*encode_as_important=*/true));
                  OSP_CHECK(rs_pending_[w] > 0, "unexpected RS response");
                  if (--rs_pending_[w] > 0) return;
                  // Last shard delivered: LGP prediction + next iteration.
                  if (options_.enable_lgp) {
                    if (ema_lgp_ != nullptr) {
                      ema_lgp_->apply_local_step(e2.worker_params(w),
                                                 e2.worker_gradient(w), lr,
                                                 e2.blocks(), round_gib);
                    } else {
                      lgp_apply_local_step(e2.worker_params(w),
                                           e2.worker_gradient(w), lr,
                                           e2.blocks(), round_gib);
                    }
                  }
                  e2.finish_sync(w);
                });
          }
        },
        p);
  }
  start_ics_round(this_round, round_gib);
}

Gib OspSync::compute_next_gib() {
  runtime::Engine& e = eng();
  if (ics_budget_ <= 0.0) return Gib::all_important(e.num_blocks());
  std::vector<double> importance;
  switch (options_.ranking) {
    case OspOptions::Ranking::kPgp:
      importance = density_normalize(
          pgp_importance(e.global_params(), agg_, e.blocks()), e.blocks());
      break;
    case OspOptions::Ranking::kPgpSum:
      importance = pgp_importance(e.global_params(), agg_, e.blocks());
      break;
    case OspOptions::Ranking::kMagnitude:
      importance = magnitude_importance(agg_, e.blocks());
      break;
    case OspOptions::Ranking::kRandom:
      importance.resize(e.num_blocks());
      for (double& v : importance) v = rng_.uniform();
      break;
  }
  return Gib::from_ranking(rank_ascending(importance), e.all_block_bytes(),
                           ics_budget_);
}

void OspSync::start_ics_round(std::uint64_t round, const Gib& gib) {
  runtime::Engine& e = eng();
  if (gib.count_unimportant() == 0) return;
  IcsRound state;
  state.round = round;
  state.gib = gib;
  state.grad = agg_;  // snapshot: workers' buffers get reused next round
  state.arrived.assign(num_ps_, 0);
  ics_inflight_.push_back(std::move(state));
  for (std::size_t p = 0; p < num_ps_; ++p) {
    const double push_bytes = ps_bytes(gib, p, /*important=*/false);
    if (push_bytes <= 0.0) continue;
    for (std::size_t w = 0; w < e.num_workers(); ++w) {
      sync::transfer(e, e.cluster().route_to_ps(w, p), push_bytes,
                     [this, round, p] { on_ics_push_arrived(round, p); });
    }
  }
}

void OspSync::on_ics_push_arrived(std::uint64_t round, std::size_t ps) {
  runtime::Engine& e = eng();
  auto it = std::find_if(
      ics_inflight_.begin(), ics_inflight_.end(),
      [round](const IcsRound& r) { return r.round == round; });
  OSP_CHECK(it != ics_inflight_.end(), "ICS push for unknown round");
  if (++it->arrived[ps] < e.num_workers()) return;

  // All of this shard's unimportant gradients arrived: step its blocks and
  // send the corrected values back (Eq. 7 on the worker side).
  const Gib shard_view =
      restrict_to_ps(it->gib, ps, /*want_important=*/false,
                     /*encode_as_important=*/false);
  e.apply_global_step_blocks(it->grad, mask_from_gib(shard_view, false));

  const double response_bytes = ps_bytes(it->gib, ps, /*important=*/false);
  // A round completes when every shard that carries ICS bytes has arrived.
  bool all_done = true;
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (ps_bytes(it->gib, p, false) > 0.0 &&
        it->arrived[p] < e.num_workers()) {
      all_done = false;
    }
  }
  if (all_done) {
    ++ics_rounds_completed_;
    ics_inflight_.erase(it);
  }

  e.ps_submit(
      e.ps_apply_delay(response_bytes, 3.0),
      [this, round, ps, shard_view, response_bytes] {
        runtime::Engine& en = eng();
        for (std::size_t w = 0; w < en.num_workers(); ++w) {
          sync::transfer(en, en.cluster().route_from_ps(w, ps),
                         response_bytes, [this, w, round, shard_view] {
                           if (round < last_ics_applied_[w]) return;  // stale
                           runtime::Engine& e2 = eng();
                           lgp_correct_blocks(e2.worker_params(w),
                                              e2.global_params(),
                                              e2.blocks(), shard_view);
                           last_ics_applied_[w] = round;
                         });
        }
      },
      ps);
}

void OspSync::on_epoch_complete(std::size_t epoch, double mean_loss) {
  if (options_.fixed_budget_fraction >= 0.0) return;  // ablation: fixed
  ics_budget_ = tuner_->on_epoch_loss(epoch, mean_loss);
}

}  // namespace osp::core
