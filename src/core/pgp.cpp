#include "core/pgp.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::core {

std::vector<double> pgp_importance(
    std::span<const float> params, std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  OSP_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  std::vector<double> out;
  out.reserve(blocks.size());
  for (const nn::LayerBlockInfo& b : blocks) {
    OSP_CHECK(b.offset + b.numel <= params.size(), "block out of range");
    out.push_back(util::abs_prod_sum(params.subspan(b.offset, b.numel),
                                     grads.subspan(b.offset, b.numel)));
  }
  return out;
}

std::vector<std::size_t> rank_ascending(std::span<const double> importance) {
  // Sort (importance, index) pairs instead of indices with an indirect
  // comparator: the sort's compares then read adjacent pairs rather than
  // gathering through the index, and stable_sort on the pre-paired keys
  // preserves the same ascending-index tie order the indirect form had.
  std::vector<std::pair<double, std::size_t>> keyed(importance.size());
  for (std::size_t i = 0; i < importance.size(); ++i) {
    keyed[i] = {importance[i], i};
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const std::pair<double, std::size_t>& a,
                      const std::pair<double, std::size_t>& b) {
                     return a.first < b.first;
                   });
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
  return order;
}

std::vector<double> density_normalize(
    std::span<const double> importance,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  OSP_CHECK(importance.size() == blocks.size(),
            "importance/block count mismatch");
  std::vector<double> out(importance.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    OSP_CHECK(blocks[i].numel > 0, "empty block");
    out[i] = importance[i] / static_cast<double>(blocks[i].numel);
  }
  return out;
}

std::vector<double> magnitude_importance(
    std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  std::vector<double> out;
  out.reserve(blocks.size());
  for (const nn::LayerBlockInfo& b : blocks) {
    OSP_CHECK(b.offset + b.numel <= grads.size(), "block out of range");
    out.push_back(util::l1_norm(grads.subspan(b.offset, b.numel)));
  }
  return out;
}

}  // namespace osp::core
