#include "core/pgp.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::core {

std::vector<double> pgp_importance(
    std::span<const float> params, std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  OSP_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  std::vector<double> out;
  out.reserve(blocks.size());
  for (const nn::LayerBlockInfo& b : blocks) {
    OSP_CHECK(b.offset + b.numel <= params.size(), "block out of range");
    out.push_back(util::abs_prod_sum(params.subspan(b.offset, b.numel),
                                     grads.subspan(b.offset, b.numel)));
  }
  return out;
}

std::vector<std::size_t> rank_ascending(std::span<const double> importance) {
  std::vector<std::size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return importance[a] < importance[b];
                   });
  return order;
}

std::vector<double> density_normalize(
    std::span<const double> importance,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  OSP_CHECK(importance.size() == blocks.size(),
            "importance/block count mismatch");
  std::vector<double> out(importance.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    OSP_CHECK(blocks[i].numel > 0, "empty block");
    out[i] = importance[i] / static_cast<double>(blocks[i].numel);
  }
  return out;
}

std::vector<double> magnitude_importance(
    std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks) {
  std::vector<double> out;
  out.reserve(blocks.size());
  for (const nn::LayerBlockInfo& b : blocks) {
    OSP_CHECK(b.offset + b.numel <= grads.size(), "block out of range");
    out.push_back(util::l1_norm(grads.subspan(b.offset, b.numel)));
  }
  return out;
}

}  // namespace osp::core
