#include "core/lgp.hpp"

#include "util/check.hpp"
#include "util/vec_math.hpp"

namespace osp::core {

namespace {
void check_sizes(std::span<const float> a, std::span<const float> b,
                 const std::vector<nn::LayerBlockInfo>& blocks,
                 const Gib& gib) {
  OSP_CHECK(a.size() == b.size(), "flat vector size mismatch");
  OSP_CHECK(gib.size() == blocks.size(), "GIB/block count mismatch");
}
}  // namespace

void lgp_apply_local_step(std::span<float> params,
                          std::span<const float> local_grad, double lr,
                          const std::vector<nn::LayerBlockInfo>& blocks,
                          const Gib& gib) {
  check_sizes(params, local_grad, blocks, gib);
  const auto step = static_cast<float>(-lr);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (gib.important(i)) continue;
    const nn::LayerBlockInfo& b = blocks[i];
    util::axpy(step, local_grad.subspan(b.offset, b.numel),
               params.subspan(b.offset, b.numel));
  }
}

void lgp_correct_blocks(std::span<float> params,
                        std::span<const float> authoritative,
                        const std::vector<nn::LayerBlockInfo>& blocks,
                        const Gib& gib) {
  check_sizes(params, authoritative, blocks, gib);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (gib.important(i)) continue;
    const nn::LayerBlockInfo& b = blocks[i];
    util::copy(authoritative.subspan(b.offset, b.numel),
               params.subspan(b.offset, b.numel));
  }
}

void copy_important_blocks(std::span<float> params,
                           std::span<const float> authoritative,
                           const std::vector<nn::LayerBlockInfo>& blocks,
                           const Gib& gib) {
  check_sizes(params, authoritative, blocks, gib);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!gib.important(i)) continue;
    const nn::LayerBlockInfo& b = blocks[i];
    util::copy(authoritative.subspan(b.offset, b.numel),
               params.subspan(b.offset, b.numel));
  }
}

EmaLgp::EmaLgp(std::size_t num_params, double beta, double ema_alpha)
    : beta_(beta), ema_alpha_(ema_alpha), ema_(num_params, 0.0f) {
  OSP_CHECK(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  OSP_CHECK(ema_alpha > 0.0 && ema_alpha <= 1.0, "alpha must be in (0, 1]");
}

void EmaLgp::observe_global(std::span<const float> global_grad) {
  OSP_CHECK(global_grad.size() == ema_.size(), "gradient size mismatch");
  if (!has_history_) {
    util::copy(global_grad, ema_);
    has_history_ = true;
    return;
  }
  const auto a = static_cast<float>(ema_alpha_);
  for (std::size_t i = 0; i < ema_.size(); ++i) {
    ema_[i] = a * global_grad[i] + (1.0f - a) * ema_[i];
  }
}

void EmaLgp::apply_local_step(std::span<float> params,
                              std::span<const float> local_grad, double lr,
                              const std::vector<nn::LayerBlockInfo>& blocks,
                              const Gib& gib) const {
  OSP_CHECK(params.size() == ema_.size(), "params size mismatch");
  OSP_CHECK(local_grad.size() == ema_.size(), "gradient size mismatch");
  OSP_CHECK(gib.size() == blocks.size(), "GIB/block count mismatch");
  // Without history the blend collapses to the plain local step.
  const float beta = has_history_ ? static_cast<float>(beta_) : 0.0f;
  const auto step = static_cast<float>(-lr);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (gib.important(i)) continue;
    const nn::LayerBlockInfo& b = blocks[i];
    float* p = params.data() + b.offset;
    const float* g = local_grad.data() + b.offset;
    const float* e = ema_.data() + b.offset;
    for (std::size_t j = 0; j < b.numel; ++j) {
      p[j] += step * (beta * e[j] + (1.0f - beta) * g[j]);
    }
  }
}

}  // namespace osp::core
