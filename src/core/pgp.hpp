// Parameter-Gradient Production (PGP) — the paper's gradient-importance
// measure (§4.1.1).
//
// From Eq. 1–3, the importance of parameter k is D_k = (g_k·P_k)², which the
// paper simplifies to I_k = |g_k·P_k| and aggregates per layer (Eq. 4):
//   I^l = Σ_{j∈l} |g_j·P_j|
// The PS computes this ranking from the previous iteration's global
// parameters and aggregated gradients, so the workers incur no extra
// computation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/registry.hpp"

namespace osp::core {

/// Per-block PGP importance I^l over flat parameter/gradient vectors
/// partitioned by `blocks`. params and grads must both cover the full flat
/// vector (blocks' offsets/sizes index into them).
[[nodiscard]] std::vector<double> pgp_importance(
    std::span<const float> params, std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks);

/// Block indices sorted by ascending importance (least important first —
/// the order in which blocks are moved into the ICS set). Ties break by
/// block index for determinism.
[[nodiscard]] std::vector<std::size_t> rank_ascending(
    std::span<const double> importance);

/// Alternative rankings used by the ablation benches.
/// Gradient-magnitude ranking: I^l = Σ|g_j| (ignores parameter values).
[[nodiscard]] std::vector<double> magnitude_importance(
    std::span<const float> grads,
    const std::vector<nn::LayerBlockInfo>& blocks);

/// Per-parameter (density) normalization: I^l / |l|. Eq. 4's plain sum is
/// size-biased — a large layer outranks a small one even when its
/// individual parameters matter less — which strands large layers in RS
/// and caps how much of the ICS budget can actually be packed. Ranking by
/// importance-per-parameter (the greedy knapsack density heuristic) fixes
/// the packing while preserving the PGP signal; OSP uses it by default and
/// bench_ablation_ranking quantifies the difference.
[[nodiscard]] std::vector<double> density_normalize(
    std::span<const double> importance,
    const std::vector<nn::LayerBlockInfo>& blocks);

}  // namespace osp::core
