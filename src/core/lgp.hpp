// Local-Gradient-based Parameter correction (LGP) — §4.2, Eq. 6–7.
//
// After RS, a worker's unimportant layers have not yet seen the global
// gradient. Eq. 6: the worker *predicts* them by applying its own local
// gradient (P_partial), so the next iteration at least trains on the local
// result instead of stale values. Eq. 7: when the ICS delivers the global
// result, the locally-predicted contribution is replaced by the global one.
// With plain SGD steps the Eq. 7 correction is exactly "overwrite the
// unimportant blocks with the PS's authoritative post-update values", which
// is how correct_blocks implements it (and which stays exact when the PS
// optimizer carries momentum the worker cannot reproduce locally).
//
// EMA-LGP (§4.2, evaluated and rejected by the paper, kept here for the
// ablation bench) predicts with a blend of the exponential moving average
// of past global gradients and the current local gradient.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/gib.hpp"
#include "nn/registry.hpp"

namespace osp::core {

/// Eq. 6: apply a plain SGD step with the *local* gradient to every
/// unimportant block: P -= lr·g_local over blocks with gib.important == false.
void lgp_apply_local_step(std::span<float> params,
                          std::span<const float> local_grad, double lr,
                          const std::vector<nn::LayerBlockInfo>& blocks,
                          const Gib& gib);

/// Eq. 7 (net effect): overwrite every unimportant block of `params` with
/// the authoritative global values delivered by the ICS.
void lgp_correct_blocks(std::span<float> params,
                        std::span<const float> authoritative,
                        const std::vector<nn::LayerBlockInfo>& blocks,
                        const Gib& gib);

/// Copy *important* blocks from `authoritative` (the RS response).
void copy_important_blocks(std::span<float> params,
                           std::span<const float> authoritative,
                           const std::vector<nn::LayerBlockInfo>& blocks,
                           const Gib& gib);

/// EMA-LGP: predict unimportant blocks with β·EMA(global grads) +
/// (1−β)·g_local instead of g_local alone.
class EmaLgp {
 public:
  /// `num_params` is the flat vector length; `beta` the blend toward the
  /// global-gradient EMA; `ema_alpha` the EMA smoothing factor.
  EmaLgp(std::size_t num_params, double beta, double ema_alpha);

  /// Fold a freshly-aggregated global gradient into the EMA.
  void observe_global(std::span<const float> global_grad);

  /// Eq. 6 with the blended gradient estimate.
  void apply_local_step(std::span<float> params,
                        std::span<const float> local_grad, double lr,
                        const std::vector<nn::LayerBlockInfo>& blocks,
                        const Gib& gib) const;

  [[nodiscard]] std::span<const float> ema() const { return ema_; }
  [[nodiscard]] bool has_history() const { return has_history_; }

  /// Restore EMA state from a checkpoint.
  void restore(std::span<const float> ema, bool has_history) {
    ema_.assign(ema.begin(), ema.end());
    has_history_ = has_history;
  }

 private:
  double beta_;
  double ema_alpha_;
  std::vector<float> ema_;
  bool has_history_ = false;
};

}  // namespace osp::core
