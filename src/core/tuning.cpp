#include "core/tuning.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace osp::core {

double ics_upper_bound(const IcsBudgetParams& params) {
  OSP_CHECK(params.bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
  OSP_CHECK(params.loss_rate >= 0.0 && params.loss_rate < 1.0,
            "loss rate must be in [0, 1)");
  OSP_CHECK(params.compute_time_s > 0.0, "compute time must be positive");
  OSP_CHECK(params.num_workers > 0, "need at least one worker");
  OSP_CHECK(params.model_bytes > 0.0, "model size must be positive");
  OSP_CHECK(params.cap_fraction > 0.0 && params.cap_fraction <= 1.0,
            "cap fraction must be in (0, 1]");
  OSP_CHECK(params.incast_alpha >= 0.0, "negative incast alpha");
  // Achieved ingress bandwidth under N synchronized senders.
  const auto n = static_cast<double>(params.num_workers);
  const double collapse =
      n > 1.0 ? 1.0 + params.incast_alpha * (n - 1.0) : 1.0;
  const double achieved = params.bandwidth_bytes_per_s / collapse;
  const double bound = achieved * params.compute_time_s /
                       (n * (1.0 + params.loss_rate));
  return std::min(bound, params.cap_fraction * params.model_bytes);
}

SguTuner::SguTuner(double u_max) : u_max_(u_max) {
  OSP_CHECK(u_max >= 0.0, "U_max must be non-negative");
}

double SguTuner::on_epoch_loss(std::size_t epoch, double loss) {
  OSP_CHECK(epoch >= 1, "epochs are 1-based in Algorithm 1");
  OSP_CHECK(loss >= 0.0, "negative loss");
  if (epoch == 1 || !initialized_) {
    reference_loss_ = loss;
    initialized_ = true;
    budget_ = 0.0;  // Algorithm 1 line 9: S(Gᵘ)_1 = 0
    return budget_;
  }
  if (reference_loss_ <= 0.0) {
    // Degenerate reference (already converged at epoch 1): full budget.
    budget_ = u_max_;
    return budget_;
  }
  const double frac = 1.0 - loss / reference_loss_;
  budget_ = std::clamp(frac, 0.0, 1.0) * u_max_;
  return budget_;
}

}  // namespace osp::core
