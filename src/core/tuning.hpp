// S(Gᵘ) tuning — Eq. 5's upper bound and Algorithm 1's loss-driven ramp.
//
// Eq. 5 derives the ICS budget from the constraint that the overlapped
// synchronization must finish within the compute window:
//   T_C ≥ T_ICS = N·S(Gᵘ)·(1+lr)/b'  ⇒  S(Gᵘ) ≤ b'·T_C / (N·(1+lr)) = U_max
// with b' the achieved (incast-collapsed) ingress bandwidth
// (the paper prints the (1+lr) factor in the numerator — a typo, since loss
// retransmissions shrink, not grow, usable capacity; we place it in the
// denominator and note the deviation in EXPERIMENTS.md). U_max is further
// capped at 80 % of the model size so OSP never degenerates into ASP.
//
// Algorithm 1 then ramps the actual budget from 0 toward U_max as training
// converges: S(Gᵘ)_i = (1 − loss_i / L) · U_max with L the first epoch's
// loss, clamped to [0, U_max].
#pragma once

#include <cstddef>

namespace osp::core {

struct IcsBudgetParams {
  double bandwidth_bytes_per_s = 0.0;  ///< access-link bandwidth b
  double loss_rate = 0.0;              ///< network loss rate lr
  double compute_time_s = 0.0;         ///< per-iteration compute time T_C
  std::size_t num_workers = 0;         ///< N
  double model_bytes = 0.0;            ///< total model wire size
  double cap_fraction = 0.8;           ///< the 80 % degeneration guard
  /// Incast goodput-collapse coefficient of the PS ingress. Eq. 5's b is
  /// the link's nominal "quality"; with N synchronized ICS senders the
  /// *achieved* ingress bandwidth is b/(1+α(N−1)), and sizing the budget
  /// against the nominal rate makes the ICS overrun the compute window and
  /// congest the next RS. We therefore size against the achieved rate.
  double incast_alpha = 0.0;
};

/// U_max of Eq. 5 with the 80 % model-size cap applied.
[[nodiscard]] double ics_upper_bound(const IcsBudgetParams& params);

/// Algorithm 1: the per-epoch S(Gᵘ) schedule.
class SguTuner {
 public:
  explicit SguTuner(double u_max);

  /// Report epoch `epoch`'s (1-based) training loss; returns the ICS budget
  /// S(Gᵘ) in bytes for that epoch. Epoch 1 fixes the reference loss L and
  /// returns 0 (all gradients synchronized in RS).
  double on_epoch_loss(std::size_t epoch, double loss);

  [[nodiscard]] double u_max() const { return u_max_; }
  [[nodiscard]] double current_budget() const { return budget_; }
  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double reference_loss() const { return reference_loss_; }

  /// Restore tuner state from a checkpoint (u_max is reconstructed from
  /// the cluster config, not serialized).
  void restore(double reference_loss, double budget, bool initialized) {
    reference_loss_ = reference_loss;
    budget_ = budget;
    initialized_ = initialized;
  }

 private:
  double u_max_;
  double reference_loss_ = 0.0;  ///< L = loss_1
  double budget_ = 0.0;
  bool initialized_ = false;
};

}  // namespace osp::core
