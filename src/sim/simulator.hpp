// Discrete-event simulation core.
//
// Virtual time is a double in seconds. Events scheduled at equal times fire
// in schedule order (a monotonically increasing sequence number breaks
// ties), which keeps every run fully deterministic.
//
// The event queue is a hand-rolled binary heap over a vector rather than
// std::priority_queue: priority_queue only exposes a const top(), which
// forces a copy of the callback out of the queue on every pop. With a
// move-only small-buffer callback (util::SmallFunction) the hot loop moves
// events out of the heap and never touches the allocator for captures up
// to the inline buffer size. The (time, seq) comparator is a strict total
// order, so the pop sequence — and therefore determinism — is independent
// of the heap's internal layout.
#pragma once

#include <cstdint>
#include <vector>

#include "util/small_function.hpp"

namespace osp::sim {

using SimTime = double;

/// Event callback: 32 inline bytes covers every capture the simulator's
/// clients create on the hot path (network completions capture 24 bytes;
/// a moved-in std::function is exactly 32), and keeps the whole Event
/// record — time, seq, callback — at one 64-byte cache line so heap
/// sifts stay cheap. Larger captures spill to the heap.
using EventFn = util::SmallFunction<void(), 32>;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(SimTime delay, EventFn fn);

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, EventFn fn);

  /// Run until the event queue drains. Returns events processed.
  std::size_t run();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// Events after the deadline remain queued; now() is clamped to deadline.
  std::size_t run_until(SimTime deadline);

  /// Drop all pending events (used between experiment repetitions).
  void clear();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };

  /// True when `a` must fire before `b`.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Remove and return the earliest event.
  Event pop_min();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Event> heap_;  ///< min-heap ordered by earlier()
};

}  // namespace osp::sim
