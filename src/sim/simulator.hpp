// Discrete-event simulation core.
//
// Virtual time is a double in seconds. Events scheduled at equal times fire
// in schedule order (a monotonically increasing sequence number breaks
// ties), which keeps every run fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace osp::sim {

using SimTime = double;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the event queue drains. Returns events processed.
  std::size_t run();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// Events after the deadline remain queued; now() is clamped to deadline.
  std::size_t run_until(SimTime deadline);

  /// Drop all pending events (used between experiment repetitions).
  void clear();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace osp::sim
