// Deterministic, seeded fault injection for the cluster simulator.
//
// A FaultSchedule is a declarative list of timed events: worker pauses and
// crash/restart cycles, link down/up flaps, transient per-link degradation
// windows (bandwidth factor + extra loss), and message-level delay/drop
// windows. The Engine installs the schedule into the discrete-event
// Simulator at run start, so every fault executes at a deterministic
// virtual time; the only randomness (message-drop sampling) flows from the
// schedule's seed through a dedicated xoshiro stream. Two runs with the
// same schedule and seed are therefore bit-identical.
//
// FaultStats is the accounting side: the Engine and Network count what
// actually happened (crashes, cancelled flows, timed-out rounds, …) and
// the totals are reported in RunResult::faults so benches can plot
// robustness curves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace osp::sim {

enum class FaultKind : std::uint8_t {
  kWorkerPause,   ///< target = worker; compute stalls for `duration`
  kWorkerCrash,   ///< target = worker; in-flight compute and flows are
                  ///< cancelled; restarts after `duration` (< 0 = never)
  kLinkDown,      ///< target = link; flows through it stall for `duration`
  kLinkDegrade,   ///< target = link; bandwidth_factor/extra_loss window
  kMessageDelay,  ///< flows starting inside the window gain delay_s latency
  kMessageDrop,   ///< flows starting inside the window vanish w.p. drop_prob
  kPsCrash,       ///< target = PS shard; its serial queue is lost and its
                  ///< key range fails over to the replica chain; restarts
                  ///< after `duration` (< 0 = never)
};

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerPause;
  double time = 0.0;      ///< virtual start time (seconds)
  double duration = 0.0;  ///< window length; crash: downtime (< 0 = forever)
  /// Worker id (worker faults) or link id (link/message faults);
  /// kAllLinks targets every link for message windows.
  std::size_t target = kAllLinks;
  double bandwidth_factor = 1.0;  ///< kLinkDegrade
  double extra_loss_rate = 0.0;   ///< kLinkDegrade
  double delay_s = 0.0;           ///< kMessageDelay
  double drop_prob = 0.0;         ///< kMessageDrop
};

/// Builder for a timed fault scenario. All mutators validate eagerly and
/// return *this for chaining. An empty schedule injects nothing and leaves
/// every healthy-path code path untouched.
class FaultSchedule {
 public:
  FaultSchedule& pause_worker(double at, std::size_t worker, double duration);
  /// `restart_after < 0` crashes the worker permanently.
  FaultSchedule& crash_worker(double at, std::size_t worker,
                              double restart_after = -1.0);
  /// `restart_after < 0` crashes the PS shard permanently.
  FaultSchedule& crash_ps(double at, std::size_t ps,
                          double restart_after = -1.0);
  FaultSchedule& link_down(double at, LinkId link, double duration);
  FaultSchedule& degrade_link(double at, LinkId link, double duration,
                              double bandwidth_factor,
                              double extra_loss_rate = 0.0);
  FaultSchedule& delay_messages(double at, double duration, double delay_s,
                                std::size_t link = kAllLinks);
  FaultSchedule& drop_messages(double at, double duration, double drop_prob,
                               std::size_t link = kAllLinks);
  FaultSchedule& set_seed(std::uint64_t seed);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 0xFA17ULL;
};

/// What actually happened during a run (see RunResult::faults).
struct FaultStats {
  std::size_t worker_crashes = 0;
  std::size_t worker_restarts = 0;
  std::size_t worker_pauses = 0;
  std::size_t link_down_events = 0;
  std::size_t link_degrade_events = 0;
  std::size_t flows_cancelled = 0;    ///< in-flight flows of crashed workers
  std::size_t messages_dropped = 0;   ///< drop-window casualties
  std::size_t messages_delayed = 0;   ///< delay-window hits
  std::size_t timed_out_rounds = 0;   ///< RS/BSP rounds closed by deadline
  std::size_t ics_rounds_abandoned = 0;
  std::size_t catch_up_pulls = 0;     ///< late workers resynced by full pull
  std::size_t checkpoint_restores = 0;  ///< crashed workers restored from a
                                        ///< run checkpoint instead of a pull
  std::size_t ps_crashes = 0;         ///< PS shards lost mid-run
  std::size_t ps_restarts = 0;        ///< PS shards that came back
  std::size_t ps_promotions = 0;      ///< key ranges repointed to a replica
  double replica_catchup_bytes = 0.0;  ///< stale segments shipped at failover
  double worker_downtime_s = 0.0;     ///< crash downtime + pause durations

  [[nodiscard]] bool any() const;
};

}  // namespace osp::sim
