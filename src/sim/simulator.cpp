#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace osp::sim {

void Simulator::schedule(SimTime delay, EventFn fn) {
  OSP_CHECK(delay >= 0.0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime when, EventFn fn) {
  OSP_CHECK(when >= now_, "cannot schedule into the past");
  OSP_CHECK(static_cast<bool>(fn), "null event");
  heap_.push_back(Event{when, next_seq_++, std::move(fn)});
  sift_up(heap_.size() - 1);
}

void Simulator::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < n && earlier(heap_[right], heap_[left])) best = right;
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Simulator::Event Simulator::pop_min() {
  Event ev = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return ev;
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!heap_.empty()) {
    // Move out, pop, then fire: the handler may schedule new events.
    Event ev = pop_min();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::run_until(SimTime deadline) {
  OSP_CHECK(deadline >= now_, "deadline in the past");
  std::size_t count = 0;
  while (!heap_.empty() && heap_.front().time <= deadline) {
    Event ev = pop_min();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++processed_;
  }
  // Only jump to the deadline when it actually cut the run short; a
  // drained queue means the simulation ended at its last event.
  if (!heap_.empty()) now_ = deadline;
  return count;
}

void Simulator::clear() { heap_.clear(); }

}  // namespace osp::sim
