#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace osp::sim {

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  OSP_CHECK(delay >= 0.0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  OSP_CHECK(when >= now_, "cannot schedule into the past");
  OSP_CHECK(fn != nullptr, "null event");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Copy out, pop, then fire: the handler may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::run_until(SimTime deadline) {
  OSP_CHECK(deadline >= now_, "deadline in the past");
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++processed_;
  }
  // Only jump to the deadline when it actually cut the run short; a
  // drained queue means the simulation ended at its last event.
  if (!queue_.empty()) now_ = deadline;
  return count;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace osp::sim
