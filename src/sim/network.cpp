#include "sim/network.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp::sim {

LinkId Network::add_link(double bandwidth_bytes_per_s, double latency_s,
                         double loss_rate, double incast_alpha) {
  OSP_CHECK(bandwidth_bytes_per_s > 0.0, "link bandwidth must be positive");
  OSP_CHECK(latency_s >= 0.0, "negative latency");
  OSP_CHECK(loss_rate >= 0.0 && loss_rate < 1.0, "loss rate must be in [0,1)");
  OSP_CHECK(incast_alpha >= 0.0, "incast alpha must be non-negative");
  links_.push_back({bandwidth_bytes_per_s, latency_s, loss_rate, incast_alpha});
  link_state_.push_back({});
  link_flows_.emplace_back();
  residual_.push_back(0.0);
  crossing_.push_back(0);
  link_mark_.push_back(0);
  return links_.size() - 1;
}

const LinkSpec& Network::link(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  return links_[id];
}

std::uint32_t Network::alloc_slot() {
  if (free_slots_.empty()) {
    slots_.emplace_back();
    flow_mark_.push_back(0);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  Flow& f = slots_[slot];
  f.rate = 0.0;
  f.down_links = 0;
  f.active_pos = kNpos;
  return slot;
}

void Network::set_rate(std::uint32_t slot, double rate) {
  Flow& f = slots_[slot];
  const bool was_active = f.rate > 0.0;
  const bool is_active = rate > 0.0;
  f.rate = rate;
  if (is_active && !was_active) {
    f.active_pos = static_cast<std::uint32_t>(active_.size());
    active_.push_back(slot);
  } else if (!is_active && was_active) {
    const std::uint32_t last = active_.back();
    active_[f.active_pos] = last;
    slots_[last].active_pos = f.active_pos;
    active_.pop_back();
    f.active_pos = kNpos;
  }
}

void Network::remove_flow(std::uint32_t slot) {
  Flow& f = slots_[slot];
  set_rate(slot, 0.0);
  for (std::size_t i = 0; i < f.route.size(); ++i) {
    std::vector<LinkFlowRef>& refs = link_flows_[f.route[i]];
    const std::uint32_t pos = f.link_pos[i];
    refs[pos] = refs.back();
    // refs[pos] now holds the moved-in occurrence; repoint its owner (which
    // may be this same flow when its route crosses the link twice).
    slots_[refs[pos].slot].link_pos[refs[pos].route_pos] = pos;
    refs.pop_back();
  }
  id_to_slot_.erase(f.id);
  f.on_complete = nullptr;
  f.in_use = false;
  free_slots_.push_back(slot);
  --num_flows_;
}

FlowId Network::start_flow(std::vector<LinkId> route, double bytes,
                           std::function<void()> on_complete,
                           double extra_latency_s) {
  OSP_CHECK(!route.empty(), "flow needs a route");
  OSP_CHECK(bytes >= 0.0, "negative flow size");
  OSP_CHECK(extra_latency_s >= 0.0, "negative transfer overhead");
  double latency = extra_latency_s;
  double loss_factor = 1.0;
  for (LinkId id : route) {
    const LinkSpec& l = link(id);
    latency += l.latency_s;
    loss_factor *= 1.0 + l.loss_rate + link_state_[id].extra_loss_rate;
  }
  // Message-level injection: windows covering this instant and route.
  if (!injections_.empty()) {
    const SimTime now = sim_->now();
    for (const InjectionWindow& win : injections_) {
      if (now < win.start_s || now >= win.end_s) continue;
      const bool on_route =
          win.link == kAllLinks ||
          std::find(route.begin(), route.end(), win.link) != route.end();
      if (!on_route) continue;
      if (win.drop_prob > 0.0 && inject_rng_.bernoulli(win.drop_prob)) {
        ++messages_dropped_;
        return next_flow_id_++;  // the message simply never arrives
      }
      if (win.delay_s > 0.0) {
        latency += win.delay_s;
        ++messages_delayed_;
      }
    }
  }
  advance_to_now();
  const FlowId id = next_flow_id_++;
  if (bytes <= 0.0) {
    // Pure-latency flow: consumes no bandwidth, does not disturb rates.
    if (on_complete != nullptr) sim_->schedule(latency, std::move(on_complete));
    return id;
  }
  const std::uint32_t slot = alloc_slot();
  Flow& f = slots_[slot];
  f.id = id;
  f.route = std::move(route);
  f.payload_bytes = bytes;
  f.wire_bytes_remaining = bytes * loss_factor;
  f.latency = latency;
  f.on_complete = std::move(on_complete);
  f.in_use = true;
  f.link_pos.resize(f.route.size());
  f.down_links = 0;
  for (std::size_t i = 0; i < f.route.size(); ++i) {
    const LinkId l = f.route[i];
    f.link_pos[i] = static_cast<std::uint32_t>(link_flows_[l].size());
    link_flows_[l].push_back({slot, static_cast<std::uint32_t>(i)});
    if (!link_state_[l].up) ++f.down_links;
  }
  id_to_slot_[id] = slot;
  ++num_flows_;
  payload_in_flight_ += bytes;
  if (hooks_.started) hooks_.started(id, f.route, sim_->now(), bytes);
  seed_flows_.assign(1, slot);
  recompute_incremental(seed_flows_, {});
  schedule_next_completion();
  return id;
}

double Network::flow_rate(FlowId id) const {
  const auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? 0.0 : slots_[it->second].rate;
}

bool Network::cancel_flow(FlowId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const std::uint32_t slot = it->second;
  advance_to_now();
  payload_in_flight_ -= slots_[slot].payload_bytes;
  if (hooks_.ended) hooks_.ended(id, sim_->now(), /*cancelled=*/true);
  seed_links_.assign(slots_[slot].route.begin(), slots_[slot].route.end());
  remove_flow(slot);
  ++flows_cancelled_;
  recompute_incremental({}, seed_links_);
  schedule_next_completion();
  return true;
}

void Network::set_link_up(LinkId id, bool up) {
  OSP_CHECK(id < links_.size(), "link id out of range");
  if (link_state_[id].up == up) return;
  link_state_[id].up = up;
  // Maintain the per-flow down-hop counters on the edge itself so the
  // solver never rescans routes: one increment/decrement per occurrence of
  // this link on a crossing flow's route.
  seed_flows_.clear();
  for (const LinkFlowRef& ref : link_flows_[id]) {
    Flow& f = slots_[ref.slot];
    if (up) {
      OSP_CHECK(f.down_links > 0, "down-link counter underflow");
      --f.down_links;
    } else {
      ++f.down_links;
    }
    seed_flows_.push_back(ref.slot);
  }
  advance_to_now();
  seed_links_.assign(1, id);
  recompute_incremental(seed_flows_, seed_links_);
  schedule_next_completion();
}

bool Network::link_up(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  return link_state_[id].up;
}

void Network::set_link_degradation(LinkId id, double bandwidth_factor,
                                   double extra_loss_rate) {
  OSP_CHECK(id < links_.size(), "link id out of range");
  OSP_CHECK(bandwidth_factor > 0.0, "bandwidth factor must be positive");
  OSP_CHECK(extra_loss_rate >= 0.0, "extra loss rate must be non-negative");
  link_state_[id].bandwidth_factor = bandwidth_factor;
  link_state_[id].extra_loss_rate = extra_loss_rate;
  advance_to_now();
  seed_links_.assign(1, id);
  recompute_incremental({}, seed_links_);
  schedule_next_completion();
}

double Network::link_capacity(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  const LinkState& s = link_state_[id];
  return s.up ? links_[id].bandwidth_bps * s.bandwidth_factor : 0.0;
}

void Network::add_injection_window(double start_s, double end_s,
                                   std::size_t link, double delay_s,
                                   double drop_prob) {
  OSP_CHECK(start_s >= 0.0 && end_s > start_s, "bad injection window");
  OSP_CHECK(delay_s >= 0.0, "negative injection delay");
  OSP_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0, "bad drop probability");
  OSP_CHECK(link == kAllLinks || link < links_.size(),
            "injection link out of range");
  injections_.push_back({start_s, end_s, link, delay_s, drop_prob});
}

double Network::ideal_transfer_time(const std::vector<LinkId>& route,
                                    double bytes) const {
  OSP_CHECK(!route.empty(), "route must be non-empty");
  double latency = 0.0;
  double loss_factor = 1.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId id : route) {
    const LinkSpec& l = link(id);
    latency += l.latency_s;
    loss_factor *= 1.0 + l.loss_rate;
    bottleneck = std::min(bottleneck, l.bandwidth_bps);
  }
  return latency + bytes * loss_factor / bottleneck;
}

void Network::advance_to_now() {
  const SimTime now = sim_->now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) return;
  // Zero-rate flows do not move, so only the active list is touched.
  for (const std::uint32_t slot : active_) {
    Flow& f = slots_[slot];
    f.wire_bytes_remaining =
        std::max(0.0, f.wire_bytes_remaining - f.rate * dt);
  }
}

void Network::recompute_incremental(std::span<const std::uint32_t> seed_flows,
                                    std::span<const LinkId> seed_links) {
  ++epoch_;
  if (num_flows_ == 0) return;
  ++stats_.solves;
  if (use_reference_solver_) {
    solve_reference();
    return;
  }
  // Closure over the flow↔link bipartite graph: a link pulls in every
  // participating (non-stalled) flow crossing it; a flow pulls in every
  // link on its route. Stalled flows claim no capacity, so they do not
  // couple links and the BFS does not expand through them — but seeded
  // flows always expand (a flow that just stalled frees capacity on its
  // healthy links, and a new or just-unstalled flow claims some).
  ++mark_stamp_;
  affected_.clear();
  touched_links_.clear();
  auto mark_link = [this](LinkId l) {
    if (link_mark_[l] != mark_stamp_) {
      link_mark_[l] = mark_stamp_;
      touched_links_.push_back(l);
    }
  };
  for (const std::uint32_t slot : seed_flows) {
    if (flow_mark_[slot] == mark_stamp_) continue;
    flow_mark_[slot] = mark_stamp_;
    affected_.push_back(slot);
    for (const LinkId l : slots_[slot].route) mark_link(l);
  }
  for (const LinkId l : seed_links) mark_link(l);
  for (std::size_t i = 0; i < touched_links_.size(); ++i) {
    for (const LinkFlowRef& ref : link_flows_[touched_links_[i]]) {
      if (flow_mark_[ref.slot] == mark_stamp_) continue;
      flow_mark_[ref.slot] = mark_stamp_;
      const Flow& f = slots_[ref.slot];
      if (f.down_links != 0) continue;  // stalled: stays at rate 0
      affected_.push_back(ref.slot);
      for (const LinkId l : f.route) mark_link(l);
    }
  }
  if (affected_.size() == num_flows_) ++stats_.full_solves;
  solve_over(affected_, touched_links_);
  if (check_reference_) verify_against_reference();
}

void Network::solve_over(const std::vector<std::uint32_t>& flow_set,
                         const std::vector<LinkId>& links) {
  // Progressive water-filling restricted to the affected sub-problem. The
  // arithmetic mirrors solve_reference() exactly: because the sub-problem
  // is closed (no outside flow crosses a touched link), every residual,
  // crossing count, and min-share below takes the same values the full
  // solve would produce for these flows — rates stay bit-identical.
  stats_.flow_visits += flow_set.size();
  unfixed_.clear();
  for (const std::uint32_t slot : flow_set) {
    set_rate(slot, 0.0);
    // Flows routed through a down link stall: rate 0, excluded from
    // water-filling so they don't claim shares on their healthy links.
    if (slots_[slot].down_links == 0) unfixed_.push_back(slot);
  }
  if (unfixed_.empty()) return;
  for (const LinkId l : links) crossing_[l] = 0;
  for (const std::uint32_t slot : unfixed_) {
    for (const LinkId l : slots_[slot].route) ++crossing_[l];
  }
  for (const LinkId l : links) {
    const double k = static_cast<double>(crossing_[l]);
    // A link's usable capacity shrinks under incast collapse when many
    // flows converge on it.
    const double collapse =
        k > 1.0 ? 1.0 + links_[l].incast_alpha * (k - 1.0) : 1.0;
    residual_[l] =
        links_[l].bandwidth_bps * link_state_[l].bandwidth_factor / collapse;
  }
  // Deterministic order: ascending flow id == start order.
  std::sort(unfixed_.begin(), unfixed_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return slots_[a].id < slots_[b].id;
            });

  while (!unfixed_.empty()) {
    // Find the most constrained link among those carrying unfixed flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (const LinkId l : links) {
      if (crossing_[l] == 0) continue;
      min_share = std::min(min_share,
                           residual_[l] / static_cast<double>(crossing_[l]));
    }
    OSP_CHECK(min_share < std::numeric_limits<double>::infinity(),
              "water-filling found no constrained link");
    // Fix every unfixed flow that crosses a link achieving min_share.
    still_unfixed_.clear();
    for (const std::uint32_t slot : unfixed_) {
      ++stats_.flow_visits;
      Flow& flow = slots_[slot];
      bool bottlenecked = false;
      for (const LinkId l : flow.route) {
        const double share =
            residual_[l] / static_cast<double>(crossing_[l]);
        if (share <= min_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        set_rate(slot, min_share);
        for (const LinkId l : flow.route) {
          residual_[l] -= min_share;
          --crossing_[l];
        }
      } else {
        still_unfixed_.push_back(slot);
      }
    }
    // Guard against numerical stalls: if nothing was fixed, fix everything
    // remaining at the current min share.
    if (still_unfixed_.size() == unfixed_.size()) {
      for (const std::uint32_t slot : unfixed_) {
        set_rate(slot, min_share);
        for (const LinkId l : slots_[slot].route) {
          residual_[l] -= min_share;
          --crossing_[l];
        }
      }
      still_unfixed_.clear();
    }
    unfixed_.swap(still_unfixed_);
  }
}

void Network::solve_reference() {
  // The pre-incremental algorithm: water-fill from scratch over every flow
  // and every link. Kept as the ground truth the incremental solver is
  // asserted against, and as the "before" configuration for benches.
  affected_.clear();
  touched_links_.clear();
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].in_use) affected_.push_back(slot);
  }
  for (LinkId l = 0; l < links_.size(); ++l) touched_links_.push_back(l);
  ++stats_.full_solves;
  solve_over(affected_, touched_links_);
}

void Network::verify_against_reference() {
  rate_snapshot_.clear();
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].in_use) rate_snapshot_.emplace_back(slot, slots_[slot].rate);
  }
  // The reference run is verification overhead, not solver work: keep it
  // out of the counters the benches report.
  const SolveStats saved = stats_;
  solve_reference();
  stats_ = saved;
  for (const auto& [slot, rate] : rate_snapshot_) {
    OSP_CHECK(slots_[slot].rate == rate,
              "incremental rate solver diverged from reference");
  }
}

void Network::schedule_next_completion() {
  if (num_flows_ == 0) return;
  // Find the earliest-finishing flow under current rates. Only flows with
  // a nonzero rate can finish, so the scan touches the active list alone.
  double best_dt = std::numeric_limits<double>::infinity();
  FlowId best_id = 0;
  std::uint32_t best_slot = kNpos;
  for (const std::uint32_t slot : active_) {
    const Flow& flow = slots_[slot];
    const double dt = flow.wire_bytes_remaining / flow.rate;
    if (dt < best_dt || (dt == best_dt && flow.id < best_id)) {
      best_dt = dt;
      best_id = flow.id;
      best_slot = slot;
    }
  }
  if (best_slot == kNpos) {
    // Every flow is stalled. Legitimate only under a link outage — the up
    // edge will recompute rates and reschedule; anything else is a bug.
    for (const Flow& flow : slots_) {
      OSP_CHECK(!flow.in_use || flow.down_links > 0,
                "active flows but none progressing");
    }
    return;
  }
  const std::uint64_t epoch = epoch_;
  const std::uint32_t slot = best_slot;
  sim_->schedule(best_dt, [this, epoch, slot] {
    if (epoch != epoch_) return;  // stale: rates changed since scheduling
    complete_flow(slot);
  });
}

void Network::complete_flow(std::uint32_t slot) {
  advance_to_now();
  Flow& f = slots_[slot];
  OSP_CHECK(f.in_use, "completing unknown flow");
  const double latency = f.latency;
  std::function<void()> cb = std::move(f.on_complete);
  bytes_delivered_ += f.payload_bytes;
  payload_in_flight_ -= f.payload_bytes;
  // The flow leaves the wire when its last byte *arrives*, after the
  // route's propagation delay — match what the completion callback sees.
  if (hooks_.ended) hooks_.ended(f.id, sim_->now() + latency, false);
  seed_links_.assign(f.route.begin(), f.route.end());
  remove_flow(slot);
  // Last byte leaves now; it arrives after the route's propagation delay.
  if (cb != nullptr) {
    sim_->schedule(latency, std::move(cb));
  }
  recompute_incremental({}, seed_links_);
  schedule_next_completion();
}

void Network::save_state(util::serde::Writer& w) const {
  OSP_CHECK(num_flows_ == 0,
            "network checkpoint requires a quiescent network (flows in "
            "flight)");
  w.u8(1);  // network state version
  w.u64(link_state_.size());
  for (const LinkState& ls : link_state_) {
    w.boolean(ls.up);
    w.f64(ls.bandwidth_factor);
    w.f64(ls.extra_loss_rate);
  }
  const util::RngState rng = inject_rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.boolean(rng.have_spare_normal);
  w.f64(rng.spare_normal);
  w.u64(next_flow_id_);
  w.f64(bytes_delivered_);
  w.u64(flows_cancelled_);
  w.u64(messages_dropped_);
  w.u64(messages_delayed_);
}

void Network::load_state(util::serde::Reader& r) {
  OSP_CHECK(num_flows_ == 0, "network restore requires no flows in flight");
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported network state version");
  const std::uint64_t n = r.u64();
  OSP_CHECK(n == link_state_.size(),
            "checkpoint link count does not match topology");
  for (LinkState& ls : link_state_) {
    ls.up = r.boolean();
    ls.bandwidth_factor = r.f64();
    ls.extra_loss_rate = r.f64();
  }
  util::RngState rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.have_spare_normal = r.boolean();
  rng.spare_normal = r.f64();
  inject_rng_.set_state(rng);
  next_flow_id_ = r.u64();
  bytes_delivered_ = r.f64();
  flows_cancelled_ = static_cast<std::size_t>(r.u64());
  messages_dropped_ = static_cast<std::size_t>(r.u64());
  messages_delayed_ = static_cast<std::size_t>(r.u64());
}

}  // namespace osp::sim
