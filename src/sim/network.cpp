#include "sim/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace osp::sim {

LinkId Network::add_link(double bandwidth_bytes_per_s, double latency_s,
                         double loss_rate, double incast_alpha) {
  OSP_CHECK(bandwidth_bytes_per_s > 0.0, "link bandwidth must be positive");
  OSP_CHECK(latency_s >= 0.0, "negative latency");
  OSP_CHECK(loss_rate >= 0.0 && loss_rate < 1.0, "loss rate must be in [0,1)");
  OSP_CHECK(incast_alpha >= 0.0, "incast alpha must be non-negative");
  links_.push_back({bandwidth_bytes_per_s, latency_s, loss_rate, incast_alpha});
  link_state_.push_back({});
  return links_.size() - 1;
}

const LinkSpec& Network::link(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  return links_[id];
}

FlowId Network::start_flow(std::vector<LinkId> route, double bytes,
                           std::function<void()> on_complete,
                           double extra_latency_s) {
  OSP_CHECK(!route.empty(), "flow needs a route");
  OSP_CHECK(bytes >= 0.0, "negative flow size");
  OSP_CHECK(extra_latency_s >= 0.0, "negative transfer overhead");
  double latency = extra_latency_s;
  double loss_factor = 1.0;
  for (LinkId id : route) {
    const LinkSpec& l = link(id);
    latency += l.latency_s;
    loss_factor *= 1.0 + l.loss_rate + link_state_[id].extra_loss_rate;
  }
  // Message-level injection: windows covering this instant and route.
  if (!injections_.empty()) {
    const SimTime now = sim_->now();
    for (const InjectionWindow& win : injections_) {
      if (now < win.start_s || now >= win.end_s) continue;
      const bool on_route =
          win.link == kAllLinks ||
          std::find(route.begin(), route.end(), win.link) != route.end();
      if (!on_route) continue;
      if (win.drop_prob > 0.0 && inject_rng_.bernoulli(win.drop_prob)) {
        ++messages_dropped_;
        return next_flow_id_++;  // the message simply never arrives
      }
      if (win.delay_s > 0.0) {
        latency += win.delay_s;
        ++messages_delayed_;
      }
    }
  }
  advance_to_now();
  const FlowId id = next_flow_id_++;
  if (bytes <= 0.0) {
    // Pure-latency flow: consumes no bandwidth, does not disturb rates.
    if (on_complete != nullptr) sim_->schedule(latency, std::move(on_complete));
    return id;
  }
  Flow flow;
  flow.route = std::move(route);
  flow.payload_bytes = bytes;
  flow.wire_bytes_remaining = bytes * loss_factor;
  flow.latency = latency;
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  recompute_rates();
  schedule_next_completion();
  return id;
}

double Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

bool Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_to_now();
  flows_.erase(it);
  ++flows_cancelled_;
  recompute_rates();
  schedule_next_completion();
  return true;
}

void Network::set_link_up(LinkId id, bool up) {
  OSP_CHECK(id < links_.size(), "link id out of range");
  if (link_state_[id].up == up) return;
  link_state_[id].up = up;
  topology_changed();
}

bool Network::link_up(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  return link_state_[id].up;
}

void Network::set_link_degradation(LinkId id, double bandwidth_factor,
                                   double extra_loss_rate) {
  OSP_CHECK(id < links_.size(), "link id out of range");
  OSP_CHECK(bandwidth_factor > 0.0, "bandwidth factor must be positive");
  OSP_CHECK(extra_loss_rate >= 0.0, "extra loss rate must be non-negative");
  link_state_[id].bandwidth_factor = bandwidth_factor;
  link_state_[id].extra_loss_rate = extra_loss_rate;
  topology_changed();
}

double Network::link_capacity(LinkId id) const {
  OSP_CHECK(id < links_.size(), "link id out of range");
  const LinkState& s = link_state_[id];
  return s.up ? links_[id].bandwidth_bps * s.bandwidth_factor : 0.0;
}

void Network::add_injection_window(double start_s, double end_s,
                                   std::size_t link, double delay_s,
                                   double drop_prob) {
  OSP_CHECK(start_s >= 0.0 && end_s > start_s, "bad injection window");
  OSP_CHECK(delay_s >= 0.0, "negative injection delay");
  OSP_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0, "bad drop probability");
  OSP_CHECK(link == kAllLinks || link < links_.size(),
            "injection link out of range");
  injections_.push_back({start_s, end_s, link, delay_s, drop_prob});
}

void Network::topology_changed() {
  advance_to_now();
  recompute_rates();
  schedule_next_completion();
}

bool Network::route_has_down_link(const Flow& flow) const {
  for (LinkId l : flow.route) {
    if (!link_state_[l].up) return true;
  }
  return false;
}

double Network::ideal_transfer_time(const std::vector<LinkId>& route,
                                    double bytes) const {
  OSP_CHECK(!route.empty(), "route must be non-empty");
  double latency = 0.0;
  double loss_factor = 1.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId id : route) {
    const LinkSpec& l = link(id);
    latency += l.latency_s;
    loss_factor *= 1.0 + l.loss_rate;
    bottleneck = std::min(bottleneck, l.bandwidth_bps);
  }
  return latency + bytes * loss_factor / bottleneck;
}

void Network::advance_to_now() {
  const SimTime now = sim_->now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    flow.wire_bytes_remaining =
        std::max(0.0, flow.wire_bytes_remaining - flow.rate * dt);
  }
}

void Network::recompute_rates() {
  ++epoch_;
  if (flows_.empty()) return;
  // Progressive water-filling. Track per-link residual capacity and the
  // number of still-unfixed flows crossing it. A link's usable capacity
  // shrinks under incast collapse when many flows converge on it.
  std::vector<double> residual(links_.size());
  std::vector<std::size_t> crossing(links_.size(), 0);
  std::vector<FlowId> unfixed;
  unfixed.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate = 0.0;
    // Flows routed through a down link stall: rate 0, excluded from
    // water-filling so they don't claim shares on their healthy links.
    if (route_has_down_link(flow)) continue;
    unfixed.push_back(id);
    for (LinkId l : flow.route) ++crossing[l];
  }
  if (unfixed.empty()) return;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double k = static_cast<double>(crossing[i]);
    const double collapse =
        k > 1.0 ? 1.0 + links_[i].incast_alpha * (k - 1.0) : 1.0;
    residual[i] =
        links_[i].bandwidth_bps * link_state_[i].bandwidth_factor / collapse;
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(unfixed.begin(), unfixed.end());

  while (!unfixed.empty()) {
    // Find the most constrained link among those carrying unfixed flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (crossing[l] == 0) continue;
      min_share = std::min(min_share,
                           residual[l] / static_cast<double>(crossing[l]));
    }
    OSP_CHECK(min_share < std::numeric_limits<double>::infinity(),
              "water-filling found no constrained link");
    // Fix every unfixed flow that crosses a link achieving min_share.
    std::vector<FlowId> still_unfixed;
    still_unfixed.reserve(unfixed.size());
    for (FlowId id : unfixed) {
      Flow& flow = flows_.at(id);
      bool bottlenecked = false;
      for (LinkId l : flow.route) {
        const double share =
            residual[l] / static_cast<double>(crossing[l]);
        if (share <= min_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        flow.rate = min_share;
        for (LinkId l : flow.route) {
          residual[l] -= min_share;
          --crossing[l];
        }
      } else {
        still_unfixed.push_back(id);
      }
    }
    // Guard against numerical stalls: if nothing was fixed, fix everything
    // remaining at the current min share.
    if (still_unfixed.size() == unfixed.size()) {
      for (FlowId id : unfixed) {
        Flow& flow = flows_.at(id);
        flow.rate = min_share;
        for (LinkId l : flow.route) {
          residual[l] -= min_share;
          --crossing[l];
        }
      }
      still_unfixed.clear();
    }
    unfixed = std::move(still_unfixed);
  }
}

void Network::schedule_next_completion() {
  if (flows_.empty()) return;
  // Find the earliest-finishing flow under current rates.
  double best_dt = std::numeric_limits<double>::infinity();
  FlowId best_id = 0;
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    const double dt = flow.wire_bytes_remaining / flow.rate;
    if (dt < best_dt || (dt == best_dt && id < best_id)) {
      best_dt = dt;
      best_id = id;
    }
  }
  if (best_dt == std::numeric_limits<double>::infinity()) {
    // Every flow is stalled. Legitimate only under a link outage — the up
    // edge will recompute rates and reschedule; anything else is a bug.
    for (const auto& [id, flow] : flows_) {
      OSP_CHECK(route_has_down_link(flow),
                "active flows but none progressing");
    }
    return;
  }
  const std::uint64_t epoch = epoch_;
  const FlowId id = best_id;
  sim_->schedule(best_dt, [this, epoch, id] {
    if (epoch != epoch_) return;  // stale: rates changed since scheduling
    complete_flow(id);
  });
}

void Network::complete_flow(FlowId id) {
  advance_to_now();
  auto it = flows_.find(id);
  OSP_CHECK(it != flows_.end(), "completing unknown flow");
  const double latency = it->second.latency;
  auto cb = std::move(it->second.on_complete);
  bytes_delivered_ += it->second.payload_bytes;
  flows_.erase(it);
  // Last byte leaves now; it arrives after the route's propagation delay.
  if (cb != nullptr) {
    sim_->schedule(latency, std::move(cb));
  }
  recompute_rates();
  schedule_next_completion();
}

}  // namespace osp::sim
