#include "sim/faults.hpp"

#include "util/check.hpp"

namespace osp::sim {

namespace {
void check_window(double at, double duration) {
  OSP_CHECK(at >= 0.0, "fault time must be non-negative");
  OSP_CHECK(duration > 0.0, "fault window needs a positive duration");
}
}  // namespace

FaultSchedule& FaultSchedule::pause_worker(double at, std::size_t worker,
                                           double duration) {
  check_window(at, duration);
  FaultEvent ev;
  ev.kind = FaultKind::kWorkerPause;
  ev.time = at;
  ev.duration = duration;
  ev.target = worker;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::crash_worker(double at, std::size_t worker,
                                           double restart_after) {
  OSP_CHECK(at >= 0.0, "fault time must be non-negative");
  FaultEvent ev;
  ev.kind = FaultKind::kWorkerCrash;
  ev.time = at;
  ev.duration = restart_after;
  ev.target = worker;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::crash_ps(double at, std::size_t ps,
                                       double restart_after) {
  OSP_CHECK(at >= 0.0, "fault time must be non-negative");
  FaultEvent ev;
  ev.kind = FaultKind::kPsCrash;
  ev.time = at;
  ev.duration = restart_after;
  ev.target = ps;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::link_down(double at, LinkId link,
                                        double duration) {
  check_window(at, duration);
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDown;
  ev.time = at;
  ev.duration = duration;
  ev.target = link;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::degrade_link(double at, LinkId link,
                                           double duration,
                                           double bandwidth_factor,
                                           double extra_loss_rate) {
  check_window(at, duration);
  OSP_CHECK(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth factor must be in (0, 1]");
  OSP_CHECK(extra_loss_rate >= 0.0, "extra loss rate must be non-negative");
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.time = at;
  ev.duration = duration;
  ev.target = link;
  ev.bandwidth_factor = bandwidth_factor;
  ev.extra_loss_rate = extra_loss_rate;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::delay_messages(double at, double duration,
                                             double delay_s,
                                             std::size_t link) {
  check_window(at, duration);
  OSP_CHECK(delay_s >= 0.0, "message delay must be non-negative");
  FaultEvent ev;
  ev.kind = FaultKind::kMessageDelay;
  ev.time = at;
  ev.duration = duration;
  ev.target = link;
  ev.delay_s = delay_s;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::drop_messages(double at, double duration,
                                            double drop_prob,
                                            std::size_t link) {
  check_window(at, duration);
  OSP_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0,
            "drop probability must be in [0, 1]");
  FaultEvent ev;
  ev.kind = FaultKind::kMessageDrop;
  ev.time = at;
  ev.duration = duration;
  ev.target = link;
  ev.drop_prob = drop_prob;
  events_.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::set_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

bool FaultStats::any() const {
  return worker_crashes > 0 || worker_restarts > 0 || worker_pauses > 0 ||
         link_down_events > 0 || link_degrade_events > 0 ||
         flows_cancelled > 0 || messages_dropped > 0 ||
         messages_delayed > 0 || timed_out_rounds > 0 ||
         ics_rounds_abandoned > 0 || catch_up_pulls > 0 ||
         ps_crashes > 0 || ps_restarts > 0 || ps_promotions > 0 ||
         replica_catchup_bytes > 0.0 || worker_downtime_s > 0.0;
}

}  // namespace osp::sim
