// Cluster topology and compute-time model.
//
// Reproduces the paper's testbed shape (§5.1.1): N single-GPU workers and
// one PS behind a non-blocking ToR switch, every node attached by a
// full-duplex access link (10 Gbit/s default). Each node contributes an
// uplink and a downlink; a worker→PS transfer crosses {worker uplink,
// PS downlink}, so simultaneous pushes from all workers share the PS
// downlink — the incast bottleneck.
//
// The compute model converts per-sample FLOPs into virtual seconds using a
// device peak rate and an achieved-efficiency factor, with optional
// one-sided straggler jitter and per-worker heterogeneity multipliers.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace osp::sim {

struct NodeSpec {
  /// Peak device throughput in FLOP/s. Default: Tesla T4 fp32 (§5.1.1).
  double device_flops = 8.1e12;
  /// Fraction of peak actually achieved by real training kernels.
  /// 0.15 calibrates to ~100 ResNet50 images/s on a T4, matching public
  /// fp32 training benchmarks.
  double efficiency = 0.15;
};

struct ClusterConfig {
  std::size_t num_workers = 8;
  double link_gbps = 10.0;
  double link_latency_s = 20e-6;
  double loss_rate = 0.0;
  /// Incast goodput collapse coefficient (see LinkSpec::incast_alpha).
  double incast_alpha = 0.03;
  /// Per-transfer software overhead: serialization, framing, the prototype's
  /// process-pool handoff (§4.5). Added to every flow's latency.
  double transfer_overhead_s = 0.008;
  /// PS-side memory bandwidth for touching gradients/parameters (bytes/s);
  /// used to price aggregation and optimizer application. 0 disables.
  double ps_apply_bytes_per_s = 2.0e9;
  NodeSpec node;
  /// Co-located PS: the PS shares worker 0's node and links (§4.4).
  /// Incompatible with num_ps > 1.
  bool colocated_ps = false;
  /// Number of parameter servers (§6.1 scaling). Each standalone PS gets
  /// its own node and access links; parameters are sharded across them.
  std::size_t num_ps = 1;
  /// Optional per-worker relative speeds (1.0 = nominal). Empty = all 1.0.
  std::vector<double> speed_factors;
};

class Cluster {
 public:
  Cluster(Simulator& sim, const ClusterConfig& config);

  [[nodiscard]] std::size_t num_workers() const { return config_.num_workers; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] const Network& network() const { return net_; }

  [[nodiscard]] std::size_t num_ps() const { return config_.num_ps; }

  /// Route of the push (worker → PS `ps`). Empty when the PS is co-located
  /// on the same node (loopback: no network traversal).
  [[nodiscard]] std::vector<LinkId> route_to_ps(std::size_t worker,
                                                std::size_t ps = 0) const;

  /// Route of the pull (PS `ps` → worker); empty for the co-located worker.
  [[nodiscard]] std::vector<LinkId> route_from_ps(std::size_t worker,
                                                  std::size_t ps = 0) const;

  /// Relative speed of a worker (heterogeneity).
  [[nodiscard]] double speed_factor(std::size_t worker) const;

  /// True when `worker` hosts the co-located PS.
  [[nodiscard]] bool hosts_ps(std::size_t worker) const {
    return config_.colocated_ps && worker == 0;
  }

  // Link handles for targeting fault schedules (see sim/faults.hpp).
  /// Access links of worker `w`'s node.
  [[nodiscard]] LinkId worker_uplink(std::size_t worker) const;
  [[nodiscard]] LinkId worker_downlink(std::size_t worker) const;
  /// Access links of PS `ps`'s node (the co-located PS shares worker 0's).
  [[nodiscard]] LinkId ps_uplink(std::size_t ps = 0) const;
  [[nodiscard]] LinkId ps_downlink(std::size_t ps = 0) const;

  /// Name of the node owning access link `id` ("worker3", "ps0", …) —
  /// labels flow spans in the trace. "link<N>" for an unknown id.
  [[nodiscard]] std::string link_node_name(LinkId id) const;

 private:
  ClusterConfig config_;
  Network net_;
  std::vector<LinkId> uplink_;    // per node; PS nodes follow worker nodes
  std::vector<LinkId> downlink_;
  std::vector<std::size_t> ps_nodes_;
};

/// Converts workload FLOPs into virtual compute seconds.
struct ComputeModel {
  double flops_per_sample = 0.0;
  NodeSpec node;
  /// Coefficient of the one-sided exponential jitter; 0 disables jitter.
  double straggler_jitter = 0.0;

  /// Base (jitter-free) FP+BP time for one batch on a nominal worker.
  [[nodiscard]] double base_batch_time(std::size_t batch_size) const;

  /// Jittered batch time for a worker with the given speed factor.
  [[nodiscard]] double batch_time(std::size_t batch_size, double speed_factor,
                                  util::Rng& rng) const;
};

}  // namespace osp::sim
