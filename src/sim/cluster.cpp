#include "sim/cluster.hpp"

#include "util/check.hpp"

namespace osp::sim {

Cluster::Cluster(Simulator& sim, const ClusterConfig& config)
    : config_(config), net_(sim) {
  OSP_CHECK(config.num_workers > 0, "cluster needs workers");
  OSP_CHECK(config.link_gbps > 0.0, "link bandwidth must be positive");
  OSP_CHECK(config.speed_factors.empty() ||
                config.speed_factors.size() == config.num_workers,
            "speed_factors must be empty or one per worker");
  OSP_CHECK(config.num_ps >= 1, "need at least one PS");
  OSP_CHECK(!config.colocated_ps || config.num_ps == 1,
            "co-located PS supports a single PS only");
  const double bw = gbps_to_bytes_per_sec(config.link_gbps);
  // One uplink+downlink per worker node, plus one pair per standalone PS.
  const std::size_t nodes =
      config.num_workers + (config.colocated_ps ? 0 : config.num_ps);
  uplink_.reserve(nodes);
  downlink_.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    uplink_.push_back(net_.add_link(bw, config.link_latency_s,
                                    config.loss_rate, config.incast_alpha));
    downlink_.push_back(net_.add_link(bw, config.link_latency_s,
                                      config.loss_rate,
                                      config.incast_alpha));
  }
  if (config.colocated_ps) {
    ps_nodes_ = {0};
  } else {
    for (std::size_t p = 0; p < config.num_ps; ++p) {
      ps_nodes_.push_back(config.num_workers + p);
    }
  }
}

std::vector<LinkId> Cluster::route_to_ps(std::size_t worker,
                                         std::size_t ps) const {
  OSP_CHECK(worker < config_.num_workers, "worker id out of range");
  OSP_CHECK(ps < ps_nodes_.size(), "ps id out of range");
  if (hosts_ps(worker)) return {};  // loopback
  return {uplink_[worker], downlink_[ps_nodes_[ps]]};
}

std::vector<LinkId> Cluster::route_from_ps(std::size_t worker,
                                           std::size_t ps) const {
  OSP_CHECK(worker < config_.num_workers, "worker id out of range");
  OSP_CHECK(ps < ps_nodes_.size(), "ps id out of range");
  if (hosts_ps(worker)) return {};  // loopback
  return {uplink_[ps_nodes_[ps]], downlink_[worker]};
}

LinkId Cluster::worker_uplink(std::size_t worker) const {
  OSP_CHECK(worker < config_.num_workers, "worker id out of range");
  return uplink_[worker];
}

LinkId Cluster::worker_downlink(std::size_t worker) const {
  OSP_CHECK(worker < config_.num_workers, "worker id out of range");
  return downlink_[worker];
}

LinkId Cluster::ps_uplink(std::size_t ps) const {
  OSP_CHECK(ps < ps_nodes_.size(), "ps id out of range");
  return uplink_[ps_nodes_[ps]];
}

LinkId Cluster::ps_downlink(std::size_t ps) const {
  OSP_CHECK(ps < ps_nodes_.size(), "ps id out of range");
  return downlink_[ps_nodes_[ps]];
}

std::string Cluster::link_node_name(LinkId id) const {
  for (std::size_t n = 0; n < uplink_.size(); ++n) {
    if (uplink_[n] != id && downlink_[n] != id) continue;
    if (n < config_.num_workers) return "worker" + std::to_string(n);
    return "ps" + std::to_string(n - config_.num_workers);
  }
  return "link" + std::to_string(id);
}

double Cluster::speed_factor(std::size_t worker) const {
  OSP_CHECK(worker < config_.num_workers, "worker id out of range");
  if (config_.speed_factors.empty()) return 1.0;
  return config_.speed_factors[worker];
}

double ComputeModel::base_batch_time(std::size_t batch_size) const {
  OSP_CHECK(flops_per_sample > 0.0, "compute model not configured");
  OSP_CHECK(node.device_flops > 0.0 && node.efficiency > 0.0,
            "invalid device spec");
  return flops_per_sample * static_cast<double>(batch_size) /
         (node.device_flops * node.efficiency);
}

double ComputeModel::batch_time(std::size_t batch_size, double speed_factor,
                                util::Rng& rng) const {
  OSP_CHECK(speed_factor > 0.0, "speed factor must be positive");
  double t = base_batch_time(batch_size) / speed_factor;
  if (straggler_jitter > 0.0) {
    t *= 1.0 + rng.exponential(1.0 / straggler_jitter);
  }
  return t;
}

}  // namespace osp::sim
