// Flow-level network model with max-min fair bandwidth sharing.
//
// Links have capacity (bytes/s), propagation latency, and a loss rate that
// inflates the bytes on the wire by (1+lr) — the retransmission-overhead
// treatment matching the capacity term of the paper's Eq. 5. A flow follows
// a route of links; concurrent flows sharing a link split its capacity by
// progressive water-filling (max-min fairness). This is what produces the
// incast effect at the PS ingress link when all workers push simultaneously
// (BSP), and its absence when pushes are staggered (ASP/R²SP) or overlapped
// (OSP's ICS).
//
// Every topology change (flow start/finish) advances all in-flight flows to
// the current instant, recomputes rates, and reschedules the next
// completion. Completion events are invalidated by an epoch counter.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace osp::sim {

using LinkId = std::size_t;
using FlowId = std::uint64_t;

struct LinkSpec {
  double bandwidth_bps = 1.25e9;  ///< bytes/s (default: 10 Gbit/s)
  double latency_s = 0.0;
  double loss_rate = 0.0;
  /// TCP-incast goodput collapse: with K simultaneous flows the link's
  /// usable capacity degrades to b / (1 + incast_alpha·(K−1)), modeling
  /// buffer overflow + retransmission timeouts when synchronized senders
  /// converge on one port (the paper's §2 incast problem). 0 disables.
  double incast_alpha = 0.0;
};

/// Convert a link rate in Gbit/s to bytes/s.
[[nodiscard]] constexpr double gbps_to_bytes_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(&sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a link; bandwidth in bytes/s.
  LinkId add_link(double bandwidth_bytes_per_s, double latency_s = 0.0,
                  double loss_rate = 0.0, double incast_alpha = 0.0);

  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const;

  /// Start a flow of `bytes` along `route`; `on_complete` fires (through the
  /// simulator) when the last byte arrives. Zero-byte flows complete after
  /// the route latency alone. `extra_latency_s` models per-transfer software
  /// overhead (serialization, framing, process-pool handoff). Returns a
  /// flow id.
  FlowId start_flow(std::vector<LinkId> route, double bytes,
                    std::function<void()> on_complete,
                    double extra_latency_s = 0.0);

  /// Number of flows still in flight.
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Current fair-share rate of a flow (bytes/s); 0 if unknown/finished.
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Total bytes delivered since construction (post-loss-inflation wire
  /// bytes are NOT counted; this is payload).
  [[nodiscard]] double bytes_delivered() const { return bytes_delivered_; }

  /// Ideal (uncontended) transfer time of `bytes` over a route: the route
  /// latency plus bytes*(1+lr) at the bottleneck bandwidth.
  [[nodiscard]] double ideal_transfer_time(const std::vector<LinkId>& route,
                                           double bytes) const;

 private:
  struct Flow {
    std::vector<LinkId> route;
    double payload_bytes = 0.0;         ///< size as requested by the caller
    double wire_bytes_remaining = 0.0;  ///< includes (1+lr) inflation
    double rate = 0.0;                  ///< bytes/s, set by water-filling
    double latency = 0.0;               ///< route latency to add at the end
    std::function<void()> on_complete;
  };

  void advance_to_now();
  void recompute_rates();
  void schedule_next_completion();
  void complete_flow(FlowId id);

  Simulator* sim_;
  std::vector<LinkSpec> links_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  std::uint64_t epoch_ = 0;  ///< invalidates stale completion events
  SimTime last_advance_ = 0.0;
  double bytes_delivered_ = 0.0;
};

}  // namespace osp::sim
