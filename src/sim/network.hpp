// Flow-level network model with max-min fair bandwidth sharing.
//
// Links have capacity (bytes/s), propagation latency, and a loss rate that
// inflates the bytes on the wire by (1+lr) — the retransmission-overhead
// treatment matching the capacity term of the paper's Eq. 5. A flow follows
// a route of links; concurrent flows sharing a link split its capacity by
// progressive water-filling (max-min fairness). This is what produces the
// incast effect at the PS ingress link when all workers push simultaneously
// (BSP), and its absence when pushes are staggered (ASP/R²SP) or overlapped
// (OSP's ICS).
//
// Every topology change (flow start/finish, link flap, degradation edge,
// flow cancellation) advances all in-flight flows to the current instant,
// recomputes rates, and reschedules the next completion. Completion events
// are invalidated by an epoch counter.
//
// Scalability: the solver is *incremental*. A link→flows adjacency index
// lets each topology change re-run water-filling only over the connected
// component of flows/links reachable from the changed flow or link —
// disjoint components share no links, so their allocations are independent
// and untouched rates stay valid bit-for-bit. Flows live in a slot-indexed
// table (stable indices, free-list reuse) with an active-flow list so
// advancing in-flight bytes and rescheduling completions touch only flows
// whose rate is nonzero. A from-scratch reference solver is kept behind
// set_use_reference_solver() / set_check_against_reference() and asserted
// bitwise-equal in the property tests.
//
// Fault injection (see sim/faults.hpp): links carry dynamic state — an
// up/down bit and a degradation (bandwidth factor + extra loss). A flow
// routed through a down link stalls at rate 0 and resumes when the link
// comes back; rates recompute on every flap edge. Per-flow down-link
// counters are maintained on the flap edges themselves, so recomputes
// never rescan routes for link health. Message-level injection windows add
// latency to, or drop outright, flows that *start* inside the window; drop
// sampling draws from a dedicated seeded stream so runs stay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace osp::util::serde {
class Writer;
class Reader;
}  // namespace osp::util::serde

namespace osp::sim {

using LinkId = std::size_t;
using FlowId = std::uint64_t;

/// Sentinel for "every link" in message-injection windows.
inline constexpr std::size_t kAllLinks = static_cast<std::size_t>(-1);

struct LinkSpec {
  double bandwidth_bps = 1.25e9;  ///< bytes/s (default: 10 Gbit/s)
  double latency_s = 0.0;
  double loss_rate = 0.0;
  /// TCP-incast goodput collapse: with K simultaneous flows the link's
  /// usable capacity degrades to b / (1 + incast_alpha·(K−1)), modeling
  /// buffer overflow + retransmission timeouts when synchronized senders
  /// converge on one port (the paper's §2 incast problem). 0 disables.
  double incast_alpha = 0.0;
};

/// Convert a link rate in Gbit/s to bytes/s.
[[nodiscard]] constexpr double gbps_to_bytes_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(&sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a link; bandwidth in bytes/s.
  LinkId add_link(double bandwidth_bytes_per_s, double latency_s = 0.0,
                  double loss_rate = 0.0, double incast_alpha = 0.0);

  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const;

  /// Start a flow of `bytes` along `route`; `on_complete` fires (through the
  /// simulator) when the last byte arrives. Zero-byte flows complete after
  /// the route latency alone. `extra_latency_s` models per-transfer software
  /// overhead (serialization, framing, process-pool handoff). Returns a
  /// flow id.
  FlowId start_flow(std::vector<LinkId> route, double bytes,
                    std::function<void()> on_complete,
                    double extra_latency_s = 0.0);

  /// Cancel an in-flight flow: it is removed without firing its completion
  /// callback (used when a crashed worker's transfers are torn down).
  /// Returns false when the id is unknown or already finished.
  bool cancel_flow(FlowId id);

  // ---- dynamic link state (fault injection) ----

  /// Take a link down or bring it back up. Flows routed through a down
  /// link stall (rate 0) and resume on the up edge; rates recompute on
  /// both edges.
  void set_link_up(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const;

  /// Transient degradation: effective bandwidth becomes
  /// `bandwidth * bandwidth_factor` and flows *starting* while degraded see
  /// `loss_rate + extra_loss_rate`. Factor 1 / extra loss 0 restores the
  /// nominal link.
  void set_link_degradation(LinkId id, double bandwidth_factor,
                            double extra_loss_rate = 0.0);

  /// Effective capacity in bytes/s right now (0 when down; excludes the
  /// incast-collapse term, which depends on the instantaneous flow count).
  [[nodiscard]] double link_capacity(LinkId id) const;

  /// Message-level injection: flows starting in [start_s, end_s) whose
  /// route crosses `link` (or any link when kAllLinks) gain `delay_s`
  /// latency and are dropped (no delivery, no callback) with probability
  /// `drop_prob`, sampled from the seeded injection stream.
  void add_injection_window(double start_s, double end_s, std::size_t link,
                            double delay_s, double drop_prob);
  void set_injection_seed(std::uint64_t seed) { inject_rng_.reseed(seed); }

  [[nodiscard]] std::size_t flows_cancelled() const {
    return flows_cancelled_;
  }
  [[nodiscard]] std::size_t messages_dropped() const {
    return messages_dropped_;
  }
  [[nodiscard]] std::size_t messages_delayed() const {
    return messages_delayed_;
  }

  /// Number of flows still in flight.
  [[nodiscard]] std::size_t active_flows() const { return num_flows_; }

  /// Current fair-share rate of a flow (bytes/s); 0 if unknown/finished.
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Total bytes delivered since construction (post-loss-inflation wire
  /// bytes are NOT counted; this is payload).
  [[nodiscard]] double bytes_delivered() const { return bytes_delivered_; }

  /// Payload bytes of flows currently on the wire (real flows only —
  /// zero-byte latency stubs and dropped messages never count). Sampled
  /// into the "in_flight_bytes" counter track when tracing.
  [[nodiscard]] double bytes_in_flight() const { return payload_in_flight_; }

  /// Observer callbacks for trace recording. `started` fires when a real
  /// (bytes > 0, not dropped) flow enters the wire, with its id, route,
  /// start time, and payload bytes; `ended` fires at the instant the flow
  /// leaves the wire — delivery time (including route latency) on
  /// completion, cancellation time on cancel. Either hook may be empty.
  /// Hooks observe only; they must not call back into the network.
  struct FlowTraceHooks {
    std::function<void(FlowId, const std::vector<LinkId>&, double, double)>
        started;
    std::function<void(FlowId, double end_s, bool cancelled)> ended;
  };
  void set_trace_hooks(FlowTraceHooks hooks) { hooks_ = std::move(hooks); }

  /// Ideal (uncontended) transfer time of `bytes` over a route: the route
  /// latency plus bytes*(1+lr) at the bottleneck bandwidth.
  [[nodiscard]] double ideal_transfer_time(const std::vector<LinkId>& route,
                                           double bytes) const;

  // ---- solver instrumentation & debugging ----

  /// Work counters for the rate solver (reset-free, monotonic).
  struct SolveStats {
    std::uint64_t solves = 0;       ///< rate recomputations executed
    std::uint64_t full_solves = 0;  ///< recomputations that spanned all flows
    /// Flow entries examined across all solves: one per flow in the setup
    /// pass plus one per (flow, water-filling round). The incremental
    /// solver's headline win is reducing this count.
    std::uint64_t flow_visits = 0;
  };
  [[nodiscard]] const SolveStats& solve_stats() const { return stats_; }

  /// Debug: route every recomputation through the from-scratch reference
  /// water-filling over all flows × links (the pre-incremental algorithm).
  void set_use_reference_solver(bool on) { use_reference_solver_ = on; }

  /// Debug: after every incremental solve, re-run the reference solver and
  /// assert every flow's rate is bitwise identical (slow; for tests).
  void set_check_against_reference(bool on) { check_reference_ = on; }

  // ---- checkpointing ----

  /// Serialize dynamic state: per-link fault state, the injection RNG
  /// stream, flow-id counter, and accounting counters. Requires a
  /// quiescent network (no in-flight flows) — in-flight flows are drained
  /// by the engine before a snapshot, never serialized.
  void save_state(util::serde::Writer& w) const;

  /// Restore state saved by save_state onto a freshly built network with
  /// the same link topology.
  void load_state(util::serde::Reader& r);

 private:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  struct Flow {
    FlowId id = 0;
    std::vector<LinkId> route;
    double payload_bytes = 0.0;         ///< size as requested by the caller
    double wire_bytes_remaining = 0.0;  ///< includes (1+lr) inflation
    double rate = 0.0;                  ///< bytes/s, set by water-filling
    double latency = 0.0;               ///< route latency to add at the end
    std::function<void()> on_complete;
    /// Position of this flow's entry in link_flows_[route[i]], per hop.
    std::vector<std::uint32_t> link_pos;
    std::uint32_t down_links = 0;    ///< route hops currently down
    std::uint32_t active_pos = kNpos;  ///< index in active_, kNpos if rate 0
    bool in_use = false;
  };

  /// One flow occurrence on a link: slot index + which hop of its route.
  struct LinkFlowRef {
    std::uint32_t slot;
    std::uint32_t route_pos;
  };

  /// Mutable fault-injection state, parallel to links_.
  struct LinkState {
    bool up = true;
    double bandwidth_factor = 1.0;
    double extra_loss_rate = 0.0;
  };

  struct InjectionWindow {
    double start_s = 0.0;
    double end_s = 0.0;
    std::size_t link = kAllLinks;
    double delay_s = 0.0;
    double drop_prob = 0.0;
  };

  void advance_to_now();
  void schedule_next_completion();
  void complete_flow(std::uint32_t slot);

  std::uint32_t alloc_slot();
  /// Unlink from the adjacency index, drop from the active list, free the
  /// slot. Does not recompute rates.
  void remove_flow(std::uint32_t slot);
  /// Set a flow's rate, maintaining the active list.
  void set_rate(std::uint32_t slot, double rate);

  /// Recompute rates over the connected component(s) reachable from the
  /// seed flows/links; bumps the completion epoch. Falls through to the
  /// reference solver when requested.
  void recompute_incremental(std::span<const std::uint32_t> seed_flows,
                             std::span<const LinkId> seed_links);
  /// Progressive water-filling restricted to `flow_set` / `links` (the
  /// closed sub-problem collected by recompute_incremental).
  void solve_over(const std::vector<std::uint32_t>& flow_set,
                  const std::vector<LinkId>& links);
  /// From-scratch water-filling over every flow and link.
  void solve_reference();
  /// Assert the reference solver reproduces the current rates bitwise.
  void verify_against_reference();

  Simulator* sim_;
  std::vector<LinkSpec> links_;
  std::vector<LinkState> link_state_;
  std::vector<InjectionWindow> injections_;
  util::Rng inject_rng_{0xFA17ULL};

  // Slot-indexed flow table + adjacency.
  std::vector<Flow> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowId, std::uint32_t> id_to_slot_;
  std::vector<std::vector<LinkFlowRef>> link_flows_;  ///< parallel to links_
  std::vector<std::uint32_t> active_;  ///< slots with rate > 0
  std::size_t num_flows_ = 0;

  // Solver scratch (persistent to avoid per-solve allocation). residual_/
  // crossing_ values are only meaningful for the links touched by the
  // current solve; *_mark_ stamps identify membership per BFS.
  std::vector<double> residual_;
  std::vector<std::size_t> crossing_;
  std::vector<std::uint64_t> link_mark_;
  std::vector<std::uint64_t> flow_mark_;
  std::uint64_t mark_stamp_ = 0;
  std::vector<std::uint32_t> affected_;
  std::vector<LinkId> touched_links_;
  std::vector<std::uint32_t> unfixed_;
  std::vector<std::uint32_t> still_unfixed_;
  std::vector<LinkId> seed_links_;
  std::vector<std::uint32_t> seed_flows_;
  std::vector<std::pair<std::uint32_t, double>> rate_snapshot_;

  SolveStats stats_;
  bool use_reference_solver_ = false;
  bool check_reference_ = false;

  FlowTraceHooks hooks_;

  FlowId next_flow_id_ = 1;
  std::uint64_t epoch_ = 0;  ///< invalidates stale completion events
  SimTime last_advance_ = 0.0;
  double bytes_delivered_ = 0.0;
  double payload_in_flight_ = 0.0;
  std::size_t flows_cancelled_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t messages_delayed_ = 0;
};

}  // namespace osp::sim
