// Flow-level network model with max-min fair bandwidth sharing.
//
// Links have capacity (bytes/s), propagation latency, and a loss rate that
// inflates the bytes on the wire by (1+lr) — the retransmission-overhead
// treatment matching the capacity term of the paper's Eq. 5. A flow follows
// a route of links; concurrent flows sharing a link split its capacity by
// progressive water-filling (max-min fairness). This is what produces the
// incast effect at the PS ingress link when all workers push simultaneously
// (BSP), and its absence when pushes are staggered (ASP/R²SP) or overlapped
// (OSP's ICS).
//
// Every topology change (flow start/finish, link flap, degradation edge,
// flow cancellation) advances all in-flight flows to the current instant,
// recomputes rates, and reschedules the next completion. Completion events
// are invalidated by an epoch counter.
//
// Fault injection (see sim/faults.hpp): links carry dynamic state — an
// up/down bit and a degradation (bandwidth factor + extra loss). A flow
// routed through a down link stalls at rate 0 and resumes when the link
// comes back; rates recompute on every flap edge. Message-level injection
// windows add latency to, or drop outright, flows that *start* inside the
// window; drop sampling draws from a dedicated seeded stream so runs stay
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace osp::sim {

using LinkId = std::size_t;
using FlowId = std::uint64_t;

/// Sentinel for "every link" in message-injection windows.
inline constexpr std::size_t kAllLinks = static_cast<std::size_t>(-1);

struct LinkSpec {
  double bandwidth_bps = 1.25e9;  ///< bytes/s (default: 10 Gbit/s)
  double latency_s = 0.0;
  double loss_rate = 0.0;
  /// TCP-incast goodput collapse: with K simultaneous flows the link's
  /// usable capacity degrades to b / (1 + incast_alpha·(K−1)), modeling
  /// buffer overflow + retransmission timeouts when synchronized senders
  /// converge on one port (the paper's §2 incast problem). 0 disables.
  double incast_alpha = 0.0;
};

/// Convert a link rate in Gbit/s to bytes/s.
[[nodiscard]] constexpr double gbps_to_bytes_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(&sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a link; bandwidth in bytes/s.
  LinkId add_link(double bandwidth_bytes_per_s, double latency_s = 0.0,
                  double loss_rate = 0.0, double incast_alpha = 0.0);

  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const;

  /// Start a flow of `bytes` along `route`; `on_complete` fires (through the
  /// simulator) when the last byte arrives. Zero-byte flows complete after
  /// the route latency alone. `extra_latency_s` models per-transfer software
  /// overhead (serialization, framing, process-pool handoff). Returns a
  /// flow id.
  FlowId start_flow(std::vector<LinkId> route, double bytes,
                    std::function<void()> on_complete,
                    double extra_latency_s = 0.0);

  /// Cancel an in-flight flow: it is removed without firing its completion
  /// callback (used when a crashed worker's transfers are torn down).
  /// Returns false when the id is unknown or already finished.
  bool cancel_flow(FlowId id);

  // ---- dynamic link state (fault injection) ----

  /// Take a link down or bring it back up. Flows routed through a down
  /// link stall (rate 0) and resume on the up edge; rates recompute on
  /// both edges.
  void set_link_up(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const;

  /// Transient degradation: effective bandwidth becomes
  /// `bandwidth * bandwidth_factor` and flows *starting* while degraded see
  /// `loss_rate + extra_loss_rate`. Factor 1 / extra loss 0 restores the
  /// nominal link.
  void set_link_degradation(LinkId id, double bandwidth_factor,
                            double extra_loss_rate = 0.0);

  /// Effective capacity in bytes/s right now (0 when down; excludes the
  /// incast-collapse term, which depends on the instantaneous flow count).
  [[nodiscard]] double link_capacity(LinkId id) const;

  /// Message-level injection: flows starting in [start_s, end_s) whose
  /// route crosses `link` (or any link when kAllLinks) gain `delay_s`
  /// latency and are dropped (no delivery, no callback) with probability
  /// `drop_prob`, sampled from the seeded injection stream.
  void add_injection_window(double start_s, double end_s, std::size_t link,
                            double delay_s, double drop_prob);
  void set_injection_seed(std::uint64_t seed) { inject_rng_.reseed(seed); }

  [[nodiscard]] std::size_t flows_cancelled() const {
    return flows_cancelled_;
  }
  [[nodiscard]] std::size_t messages_dropped() const {
    return messages_dropped_;
  }
  [[nodiscard]] std::size_t messages_delayed() const {
    return messages_delayed_;
  }

  /// Number of flows still in flight.
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Current fair-share rate of a flow (bytes/s); 0 if unknown/finished.
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Total bytes delivered since construction (post-loss-inflation wire
  /// bytes are NOT counted; this is payload).
  [[nodiscard]] double bytes_delivered() const { return bytes_delivered_; }

  /// Ideal (uncontended) transfer time of `bytes` over a route: the route
  /// latency plus bytes*(1+lr) at the bottleneck bandwidth.
  [[nodiscard]] double ideal_transfer_time(const std::vector<LinkId>& route,
                                           double bytes) const;

 private:
  struct Flow {
    std::vector<LinkId> route;
    double payload_bytes = 0.0;         ///< size as requested by the caller
    double wire_bytes_remaining = 0.0;  ///< includes (1+lr) inflation
    double rate = 0.0;                  ///< bytes/s, set by water-filling
    double latency = 0.0;               ///< route latency to add at the end
    std::function<void()> on_complete;
  };

  /// Mutable fault-injection state, parallel to links_.
  struct LinkState {
    bool up = true;
    double bandwidth_factor = 1.0;
    double extra_loss_rate = 0.0;
  };

  struct InjectionWindow {
    double start_s = 0.0;
    double end_s = 0.0;
    std::size_t link = kAllLinks;
    double delay_s = 0.0;
    double drop_prob = 0.0;
  };

  void advance_to_now();
  void recompute_rates();
  void schedule_next_completion();
  void complete_flow(FlowId id);
  [[nodiscard]] bool route_has_down_link(const Flow& flow) const;
  /// Rates changed (flap/degrade/cancel): advance, recompute, reschedule.
  void topology_changed();

  Simulator* sim_;
  std::vector<LinkSpec> links_;
  std::vector<LinkState> link_state_;
  std::vector<InjectionWindow> injections_;
  util::Rng inject_rng_{0xFA17ULL};
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  std::uint64_t epoch_ = 0;  ///< invalidates stale completion events
  SimTime last_advance_ = 0.0;
  double bytes_delivered_ = 0.0;
  std::size_t flows_cancelled_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t messages_delayed_ = 0;
};

}  // namespace osp::sim
