// Sharded BSP for multi-PS clusters (§6.1, BytePS-style), on the KV core.
//
// Parameters are partitioned across P servers by the byte-balancing
// partitioner (kv/partition.hpp); each iteration a worker pushes shard
// p of its gradient to PS p as a KV push addressed by that shard's key
// list (P parallel flows), every PS aggregates its shard when all N
// workers' pieces arrive, applies its part of the optimizer step on its
// own serial queue, bumps its segments' versions, and broadcasts its
// shard of the updated parameters as a version-stamped pull response. A
// worker resumes when all P shard responses have landed. With P = 1
// this is exactly BspSync.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/message.hpp"
#include "kv/partition.hpp"
#include "kv/store.hpp"
#include "kv/transport.hpp"
#include "runtime/sync_model.hpp"

namespace osp::sync {

class ShardedBspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

 private:
  void on_shard_push_arrived(std::size_t ps);
  void shard_aggregate(std::size_t ps);
  /// Keys (= block ids) owned by PS `ps`, ascending.
  [[nodiscard]] std::vector<kv::Key> shard_keys(std::size_t ps) const;

  std::size_t num_ps_ = 1;
  kv::Partition part_;                         // block → PS
  std::vector<double> shard_bytes_;            // per-PS wire size
  kv::Transport tx_;
  kv::KvStore store_;
  std::vector<std::size_t> shard_arrived_;     // per PS
  std::vector<std::size_t> worker_pending_;    // responses awaited
  std::vector<float> agg_;
  std::uint64_t tel_shards_closed_ = 0;        // telemetry: P closes = 1 round
};

}  // namespace osp::sync
