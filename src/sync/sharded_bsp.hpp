// Sharded BSP for multi-PS clusters (§6.1, BytePS-style), on the KV core.
//
// Parameters are partitioned across P servers by the byte-balancing
// partitioner (kv/partition.hpp); each iteration a worker pushes shard
// p of its gradient to PS p as a KV push addressed by that shard's key
// list (P parallel flows), every PS aggregates its shard when all N
// workers' pieces arrive, applies its part of the optimizer step on its
// own serial queue, bumps its segments' versions, and broadcasts its
// shard of the updated parameters as a version-stamped pull response. A
// worker resumes when all P shard responses have landed. With P = 1
// this is exactly BspSync.
//
// PS replication (kv/replication.hpp): each logical shard's key range is
// primary on its own host with a ring-successor backup. On a healthy run
// the replica table is pure bookkeeping (no flows, no extra events). When
// the serving host crashes the shard is repointed at the first alive host
// in its chain: the version-predicate catch-up ships the stale segments
// onto the new host's queue, workers re-push the gradients the dead host
// was collecting (arrivals from the old host are fenced by a per-shard
// epoch), and an already-aggregated round whose broadcast died with the
// queue is re-broadcast — never re-applied, so segment versions stay
// monotone (+1 per shard round). A restart fails the shard back the same
// way.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/message.hpp"
#include "kv/partition.hpp"
#include "kv/replication.hpp"
#include "kv/store.hpp"
#include "kv/transport.hpp"
#include "runtime/sync_model.hpp"

namespace osp::sync {

class ShardedBspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_ps_crashed(std::size_t ps) override;
  void on_ps_restarted(std::size_t ps) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

  /// Introspection for tests: host currently serving logical shard `p`.
  [[nodiscard]] std::size_t serving_host(std::size_t p) const {
    return serving_[p];
  }
  [[nodiscard]] const kv::ReplicaTable& replicas() const { return replica_; }

 private:
  void push_shard(std::size_t worker, std::size_t p);
  void on_shard_push_arrived(std::size_t ps, std::size_t worker,
                             std::uint64_t epoch);
  void shard_aggregate(std::size_t ps);
  /// Schedule the shard's response broadcast on its serving host.
  void broadcast_shard(std::size_t ps);
  /// Serving host for shard `p` changed (crash or restart): catch the new
  /// host up and re-drive whatever the old host still owed.
  void repoint_shard(std::size_t p);
  /// Keys (= block ids) owned by PS `ps`, ascending.
  [[nodiscard]] std::vector<kv::Key> shard_keys(std::size_t ps) const;

  std::size_t num_ps_ = 1;
  kv::Partition part_;                         // block → PS
  std::vector<double> shard_bytes_;            // per-PS wire size
  kv::Transport tx_;
  kv::KvStore store_;
  kv::ReplicaTable replica_;
  std::vector<std::size_t> shard_arrived_;     // per PS, this round
  std::vector<std::size_t> worker_pending_;    // responses awaited
  std::vector<float> agg_;
  std::uint64_t tel_shards_closed_ = 0;        // telemetry: P closes = 1 round
  // ---- failover state (all-zero / identity on a healthy run) ----
  std::vector<std::size_t> serving_;           // logical shard → host
  std::vector<std::uint64_t> shard_epoch_;     // fences stale arrivals
  std::vector<std::vector<std::uint8_t>> pushed_;        // [p][w] this round
  std::vector<std::vector<std::uint8_t>> arrived_;       // [p][w] this round
  std::vector<std::vector<std::uint8_t>> resp_pending_;  // [p][w]
  std::vector<std::uint8_t> resp_outstanding_;  // aggregated, not broadcast
  std::vector<std::size_t> resp_host_;          // host the broadcast queued on
};

}  // namespace osp::sync
