// Sharded BSP for multi-PS clusters (§6.1, BytePS-style).
//
// Parameters are partitioned across P servers; each iteration a worker
// pushes shard p of its gradient to PS p (P parallel flows), every PS
// aggregates its shard when all N workers' pieces arrive, applies its part
// of the optimizer step on its own serial queue, and broadcasts its shard
// of the updated parameters. A worker resumes when all P shard responses
// have landed. With P = 1 this is exactly BspSync.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class ShardedBspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

 private:
  void on_shard_push_arrived(std::size_t ps);
  void shard_aggregate(std::size_t ps);

  std::size_t num_ps_ = 1;
  std::vector<std::size_t> block_to_ps_;
  std::vector<double> shard_bytes_;
  std::vector<std::size_t> shard_arrived_;     // per PS
  std::vector<std::size_t> worker_pending_;    // responses awaited
  std::vector<float> agg_;
  std::size_t agg_round_workers_ = 0;          // pushes folded into agg_
  std::uint64_t tel_shards_closed_ = 0;        // telemetry: P closes = 1 round
};

}  // namespace osp::sync
