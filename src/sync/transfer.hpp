// Shared helper: move `bytes` along `route` through the engine's network
// and invoke `done` on arrival. An empty route is a loopback (co-located
// PS on the same node) and completes immediately via the event queue, so
// callback ordering stays deterministic.
//
// For traffic owned by a specific worker, prefer
// Engine::worker_transfer(worker, route, bytes, done): it behaves
// identically on a healthy cluster but additionally applies the fault
// layer (delay/drop injection) and cancels the flow if the worker
// crashes mid-transfer, so the payload is not delivered posthumously.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"

namespace osp::sync {

inline void transfer(runtime::Engine& eng, std::vector<sim::LinkId> route,
                     double bytes, std::function<void()> done) {
  const double overhead = eng.cluster().config().transfer_overhead_s;
  if (route.empty()) {
    // Route through the engine so pending loopbacks are visible to the
    // checkpoint quiescence check.
    eng.loopback_transfer(overhead, std::move(done));
    return;
  }
  eng.cluster().network().start_flow(std::move(route), bytes,
                                     std::move(done), overhead);
}

}  // namespace osp::sync
