// Shared helper: move `bytes` along `route` through the engine's network
// and invoke `done` on arrival. An empty route is a loopback (co-located
// PS on the same node) and completes immediately via the event queue, so
// callback ordering stays deterministic.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"

namespace osp::sync {

inline void transfer(runtime::Engine& eng, std::vector<sim::LinkId> route,
                     double bytes, std::function<void()> done) {
  const double overhead = eng.cluster().config().transfer_overhead_s;
  if (route.empty()) {
    eng.sim().schedule(overhead, std::move(done));
    return;
  }
  eng.cluster().network().start_flow(std::move(route), bytes,
                                     std::move(done), overhead);
}

}  // namespace osp::sync
