// Lowest rung of the wire path: move `bytes` along `route` through the
// engine's network and invoke `done` on arrival. An empty route is a
// loopback (co-located PS on the same node) and completes via the event
// queue, so callback ordering stays deterministic.
//
// This helper is a raw byte-mover by design — it has no notion of keys,
// versions, or payload structure. Sync models should not call it with
// hand-computed byte counts anymore: the primary wire path is
// kv::Transport (src/kv/transport.hpp), which carries a kv::KvMessage
// over key ranges, derives the flow size from the message's own byte
// accounting (after the filter pipeline has run), and bottoms out here.
// transfer() remains public for traffic that genuinely is structureless
// (barrier tokens, control pings) and for models not yet ported to the
// KV core.
//
// For traffic owned by a specific worker, prefer
// Engine::worker_transfer(worker, route, bytes, done) — or
// kv::Transport's owned=true mode, which wraps it: identical on a
// healthy cluster, but it additionally applies the fault layer
// (delay/drop injection) and cancels the flow if the worker crashes
// mid-transfer, so the payload is not delivered posthumously.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"

namespace osp::sync {

inline void transfer(runtime::Engine& eng, std::vector<sim::LinkId> route,
                     double bytes, std::function<void()> done) {
  const double overhead = eng.cluster().config().transfer_overhead_s;
  if (route.empty()) {
    // Route through the engine so pending loopbacks are visible to the
    // checkpoint quiescence check.
    eng.loopback_transfer(overhead, std::move(done));
    return;
  }
  eng.cluster().network().start_flow(std::move(route), bytes,
                                     std::move(done), overhead);
}

}  // namespace osp::sync
