#include "sync/sharded_bsp.hpp"

#include <algorithm>

#include "runtime/engine.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::string ShardedBspSync::name() const {
  return "BSP(x" + std::to_string(num_ps_) + "PS)";
}

void ShardedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  num_ps_ = eng.cluster().num_ps();
  part_ = kv::byte_balanced_partition(eng.all_block_bytes(), num_ps_);
  shard_bytes_ = kv::partition_bytes(eng.all_block_bytes(), part_);
  {
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> numels;
    for (const auto& b : eng.blocks()) {
      offsets.push_back(b.offset);
      numels.push_back(b.numel);
    }
    store_.init(offsets, numels);
  }
  replica_.init(part_, eng.all_block_bytes());
  shard_arrived_.assign(num_ps_, 0);
  worker_pending_.assign(eng.num_workers(), 0);
  agg_.assign(eng.global_params().size(), 0.0f);
  tel_shards_closed_ = 0;
  serving_.resize(num_ps_);
  for (std::size_t p = 0; p < num_ps_; ++p) serving_[p] = p;
  shard_epoch_.assign(num_ps_, 0);
  pushed_.assign(num_ps_,
                 std::vector<std::uint8_t>(eng.num_workers(), 0));
  arrived_.assign(num_ps_,
                  std::vector<std::uint8_t>(eng.num_workers(), 0));
  resp_pending_.assign(num_ps_,
                       std::vector<std::uint8_t>(eng.num_workers(), 0));
  resp_outstanding_.assign(num_ps_, 0);
  resp_host_ = serving_;
}

std::vector<kv::Key> ShardedBspSync::shard_keys(std::size_t ps) const {
  std::vector<kv::Key> keys;
  for (std::size_t b = 0; b < part_.num_keys(); ++b) {
    if (part_.owner[b] == ps) keys.push_back(static_cast<kv::Key>(b));
  }
  return keys;
}

void ShardedBspSync::on_gradient_ready(std::size_t worker) {
  worker_pending_[worker] = num_ps_;
  for (std::size_t p = 0; p < num_ps_; ++p) {
    pushed_[p][worker] = 1;
    resp_pending_[p][worker] = 1;
    push_shard(worker, p);
  }
}

void ShardedBspSync::push_shard(std::size_t worker, std::size_t p) {
  const std::size_t host = serving_[p];
  // Whole chain down: the push stays recorded in pushed_ and is issued
  // when a restart repoints the shard.
  if (host == kv::ReplicaTable::npos) return;
  // The push addresses the shard's key list; the gradient itself stays
  // by-reference in the worker's buffer (the PS reads it at aggregate
  // time), so the message carries accounting + addressing only.
  kv::KvMessage m;
  m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker),
          tel_shards_closed_ / num_ps_ + 1, {});
  m.keys = shard_keys(p);
  m.set_accounting(shard_bytes_[p]);
  // The epoch fences deliveries against a failover: a flow addressed to a
  // host that lost the shard in the meantime is void on arrival.
  const std::uint64_t epoch = shard_epoch_[p];
  tx_.push(worker, host, m, /*owned=*/false, [this, p, worker, epoch] {
    on_shard_push_arrived(p, worker, epoch);
  });
}

void ShardedBspSync::on_shard_push_arrived(std::size_t ps, std::size_t worker,
                                           std::uint64_t epoch) {
  if (epoch != shard_epoch_[ps]) return;  // landed at a deposed host
  arrived_[ps][worker] = 1;
  if (++shard_arrived_[ps] < eng().num_workers()) return;
  shard_arrived_[ps] = 0;
  shard_aggregate(ps);
}

void ShardedBspSync::shard_aggregate(std::size_t ps) {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  // Mean of the workers' gradients over this PS's blocks only (disjoint
  // ranges, so shards aggregate independently).
  std::vector<bool> mask(e.num_blocks(), false);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < e.num_blocks(); ++b) {
    if (part_.owner[b] != ps) continue;
    mask[b] = true;
    const auto& info = e.blocks()[b];
    auto dst = std::span<float>(agg_).subspan(info.offset, info.numel);
    util::fill(dst, 0.0f);
    for (std::size_t w = 0; w < n; ++w) {
      util::axpy(scale, e.worker_gradient(w).subspan(info.offset, info.numel),
                 dst);
    }
  }
  e.apply_global_step_blocks(agg_, mask);
  for (std::size_t b = 0; b < e.num_blocks(); ++b) {
    if (part_.owner[b] != ps) continue;
    const auto k = static_cast<kv::Key>(b);
    store_.bump(k);
    // Async replication trails the apply by one update per segment.
    replica_.note_update(k, store_.version(k));
  }
  std::fill(pushed_[ps].begin(), pushed_[ps].end(), std::uint8_t{0});
  std::fill(arrived_[ps].begin(), arrived_[ps].end(), std::uint8_t{0});
  // The P shard closes of one logical barrier share a telemetry record;
  // the last shard's close stamps the final close time.
  ++tel_shards_closed_;
  runtime::SyncTelemetry& rec =
      record_full_round((tel_shards_closed_ + num_ps_ - 1) / num_ps_, n);
  rec.replica_lag = replica_.lag(store_);
  resp_outstanding_[ps] = 1;
  broadcast_shard(ps);
}

void ShardedBspSync::broadcast_shard(std::size_t ps) {
  runtime::Engine& e = eng();
  const std::size_t host = serving_[ps];
  if (host == kv::ReplicaTable::npos) return;  // re-driven at repoint
  resp_host_[ps] = host;
  e.ps_submit(
      e.ps_apply_delay(shard_bytes_[ps], 3.0),
      [this, ps, host] {
        runtime::Engine& en = eng();
        resp_outstanding_[ps] = 0;
        kv::KvMessage resp;
        resp.begin(kv::Op::kPullResponse, static_cast<std::uint32_t>(host),
                   tel_shards_closed_ / num_ps_, {});
        resp.keys = shard_keys(ps);
        store_.stamp_versions(resp);
        resp.set_accounting(shard_bytes_[ps]);
        for (std::size_t w = 0; w < en.num_workers(); ++w) {
          if (resp_pending_[ps][w] == 0) continue;
          tx_.respond(w, host, resp, /*owned=*/false, [this, w, ps] {
            runtime::Engine& e2 = eng();
            // Duplicate delivery after a failover re-broadcast: the first
            // copy already installed these (identical, version-stamped)
            // blocks.
            if (resp_pending_[ps][w] == 0) return;
            resp_pending_[ps][w] = 0;
            // Install this shard's fresh blocks.
            for (std::size_t b = 0; b < e2.num_blocks(); ++b) {
              if (part_.owner[b] != ps) continue;
              const auto& info = e2.blocks()[b];
              util::copy(e2.global_params().subspan(info.offset, info.numel),
                         e2.worker_params(w).subspan(info.offset,
                                                     info.numel));
            }
            OSP_CHECK(worker_pending_[w] > 0, "unexpected shard response");
            if (--worker_pending_[w] == 0) e2.finish_sync(w);
          });
        }
      },
      host);
}

void ShardedBspSync::on_ps_crashed(std::size_t ps) {
  replica_.set_alive(ps, false);
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (serving_[p] == ps) repoint_shard(p);
  }
}

void ShardedBspSync::on_ps_restarted(std::size_t ps) {
  replica_.set_alive(ps, true);
  for (std::size_t p = 0; p < num_ps_; ++p) {
    if (replica_.serving(p) != serving_[p]) repoint_shard(p);
  }
}

void ShardedBspSync::repoint_shard(std::size_t p) {
  runtime::Engine& e = eng();
  const std::size_t target = replica_.serving(p);
  if (target == serving_[p]) return;
  serving_[p] = target;
  ++shard_epoch_[p];  // arrivals addressed to the deposed host are void
  if (target == kv::ReplicaTable::npos) return;  // wait for a restart
  // Version-predicate catch-up: ship exactly the segments whose tail
  // update had not reached the replica, and charge the new host's queue.
  const double shipped = replica_.catch_up(p, store_);
  e.record_ps_promotion(shipped);
  {
    runtime::SyncTelemetry& rec =
        e.telemetry_round(tel_shards_closed_ / num_ps_ + 1);
    ++rec.promotions;
    rec.catch_up_bytes += shipped;
  }
  if (shipped > 0.0) {
    e.ps_submit(e.ps_apply_delay(shipped, 1.0), [] {}, target);
  }
  // An aggregated round whose broadcast died with the old host's queue is
  // re-broadcast from the new host — never re-applied (the segment
  // versions were already bumped by the one aggregation).
  if (resp_outstanding_[p] != 0 && !e.ps_alive(resp_host_[p])) {
    broadcast_shard(p);
  }
  // Whatever the old host had collected for the open round is gone:
  // workers that already pushed re-push to the new host (their original
  // flows, if still in flight, are fenced by the epoch bump).
  shard_arrived_[p] = 0;
  std::fill(arrived_[p].begin(), arrived_[p].end(), std::uint8_t{0});
  for (std::size_t w = 0; w < e.num_workers(); ++w) {
    if (pushed_[p][w] != 0) push_shard(w, p);
  }
}

void ShardedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(3);  // sharded-BSP state version (3: PS replication)
  w.u64(num_ps_);
  w.size_vec(shard_arrived_);
  w.size_vec(worker_pending_);
  w.u64(tel_shards_closed_);
  w.size_vec(serving_);
  w.u64_vec(shard_epoch_);
  w.size_vec(resp_host_);
  replica_.save_state(w);
  store_.save_state(w);
}

void ShardedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 3, "unsupported sharded-BSP state version");
  OSP_CHECK(r.u64() == num_ps_, "sharded-BSP checkpoint PS count mismatch");
  shard_arrived_ = r.size_vec();
  worker_pending_ = r.size_vec();
  OSP_CHECK(shard_arrived_.size() == num_ps_ &&
                worker_pending_.size() == eng().num_workers(),
            "sharded-BSP checkpoint shape mismatch");
  tel_shards_closed_ = r.u64();
  serving_ = r.size_vec();
  shard_epoch_ = r.u64_vec();
  resp_host_ = r.size_vec();
  OSP_CHECK(serving_.size() == num_ps_ && shard_epoch_.size() == num_ps_ &&
                resp_host_.size() == num_ps_,
            "sharded-BSP checkpoint failover state mismatch");
  replica_.load_state(r);
  store_.load_state(r);
  // In-flight round bookkeeping is empty by construction at the drain
  // barrier the snapshot was taken at.
  const std::size_t n = eng().num_workers();
  pushed_.assign(num_ps_, std::vector<std::uint8_t>(n, 0));
  arrived_.assign(num_ps_, std::vector<std::uint8_t>(n, 0));
  resp_pending_.assign(num_ps_, std::vector<std::uint8_t>(n, 0));
  resp_outstanding_.assign(num_ps_, 0);
}

bool ShardedBspSync::drained() const {
  auto zero = [](std::size_t v) { return v == 0; };
  return std::all_of(shard_arrived_.begin(), shard_arrived_.end(), zero) &&
         std::all_of(worker_pending_.begin(), worker_pending_.end(), zero);
}

}  // namespace osp::sync
