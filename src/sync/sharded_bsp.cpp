#include "sync/sharded_bsp.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::string ShardedBspSync::name() const {
  return "BSP(x" + std::to_string(num_ps_) + "PS)";
}

void ShardedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  num_ps_ = eng.cluster().num_ps();
  part_ = kv::byte_balanced_partition(eng.all_block_bytes(), num_ps_);
  shard_bytes_ = kv::partition_bytes(eng.all_block_bytes(), part_);
  {
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> numels;
    for (const auto& b : eng.blocks()) {
      offsets.push_back(b.offset);
      numels.push_back(b.numel);
    }
    store_.init(offsets, numels);
  }
  shard_arrived_.assign(num_ps_, 0);
  worker_pending_.assign(eng.num_workers(), 0);
  agg_.assign(eng.global_params().size(), 0.0f);
  tel_shards_closed_ = 0;
}

std::vector<kv::Key> ShardedBspSync::shard_keys(std::size_t ps) const {
  std::vector<kv::Key> keys;
  for (std::size_t b = 0; b < part_.num_keys(); ++b) {
    if (part_.owner[b] == ps) keys.push_back(static_cast<kv::Key>(b));
  }
  return keys;
}

void ShardedBspSync::on_gradient_ready(std::size_t worker) {
  worker_pending_[worker] = num_ps_;
  for (std::size_t p = 0; p < num_ps_; ++p) {
    // The push addresses the shard's key list; the gradient itself stays
    // by-reference in the worker's buffer (the PS reads it at aggregate
    // time), so the message carries accounting + addressing only.
    kv::KvMessage m;
    m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker),
            tel_shards_closed_ / num_ps_ + 1, {});
    m.keys = shard_keys(p);
    m.set_accounting(shard_bytes_[p]);
    tx_.push(worker, p, m, /*owned=*/false,
             [this, p] { on_shard_push_arrived(p); });
  }
}

void ShardedBspSync::on_shard_push_arrived(std::size_t ps) {
  if (++shard_arrived_[ps] < eng().num_workers()) return;
  shard_arrived_[ps] = 0;
  shard_aggregate(ps);
}

void ShardedBspSync::shard_aggregate(std::size_t ps) {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  // Mean of the workers' gradients over this PS's blocks only (disjoint
  // ranges, so shards aggregate independently).
  std::vector<bool> mask(e.num_blocks(), false);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < e.num_blocks(); ++b) {
    if (part_.owner[b] != ps) continue;
    mask[b] = true;
    const auto& info = e.blocks()[b];
    auto dst = std::span<float>(agg_).subspan(info.offset, info.numel);
    util::fill(dst, 0.0f);
    for (std::size_t w = 0; w < n; ++w) {
      util::axpy(scale, e.worker_gradient(w).subspan(info.offset, info.numel),
                 dst);
    }
  }
  e.apply_global_step_blocks(agg_, mask);
  for (std::size_t b = 0; b < e.num_blocks(); ++b) {
    if (part_.owner[b] == ps) store_.bump(static_cast<kv::Key>(b));
  }
  // The P shard closes of one logical barrier share a telemetry record;
  // the last shard's close stamps the final close time.
  ++tel_shards_closed_;
  record_full_round((tel_shards_closed_ + num_ps_ - 1) / num_ps_, n);
  e.ps_submit(
      e.ps_apply_delay(shard_bytes_[ps], 3.0),
      [this, ps] {
        runtime::Engine& en = eng();
        kv::KvMessage resp;
        resp.begin(kv::Op::kPullResponse, static_cast<std::uint32_t>(ps),
                   tel_shards_closed_ / num_ps_, {});
        resp.keys = shard_keys(ps);
        store_.stamp_versions(resp);
        resp.set_accounting(shard_bytes_[ps]);
        for (std::size_t w = 0; w < en.num_workers(); ++w) {
          tx_.respond(w, ps, resp, /*owned=*/false, [this, w, ps] {
            runtime::Engine& e2 = eng();
            // Install this shard's fresh blocks.
            for (std::size_t b = 0; b < e2.num_blocks(); ++b) {
              if (part_.owner[b] != ps) continue;
              const auto& info = e2.blocks()[b];
              util::copy(e2.global_params().subspan(info.offset, info.numel),
                         e2.worker_params(w).subspan(info.offset,
                                                     info.numel));
            }
            OSP_CHECK(worker_pending_[w] > 0, "unexpected shard response");
            if (--worker_pending_[w] == 0) e2.finish_sync(w);
          });
        }
      },
      ps);
}

void ShardedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(2);  // sharded-BSP state version (2: KV core)
  w.u64(num_ps_);
  w.size_vec(shard_arrived_);
  w.size_vec(worker_pending_);
  store_.save_state(w);
}

void ShardedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 2, "unsupported sharded-BSP state version");
  OSP_CHECK(r.u64() == num_ps_, "sharded-BSP checkpoint PS count mismatch");
  shard_arrived_ = r.size_vec();
  worker_pending_ = r.size_vec();
  OSP_CHECK(shard_arrived_.size() == num_ps_ &&
                worker_pending_.size() == eng().num_workers(),
            "sharded-BSP checkpoint shape mismatch");
  store_.load_state(r);
}

bool ShardedBspSync::drained() const {
  auto zero = [](std::size_t v) { return v == 0; };
  return std::all_of(shard_arrived_.begin(), shard_arrived_.end(), zero) &&
         std::all_of(worker_pending_.begin(), worker_pending_.end(), zero);
}

}  // namespace osp::sync
