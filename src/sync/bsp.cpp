#include "sync/bsp.hpp"

#include <algorithm>

#include "runtime/engine.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

void BspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  const std::size_t n = eng.num_workers();
  round_ = 0;
  arrived_.assign(n, false);
  arrived_count_ = 0;
  awaiting_.assign(n, false);
  awaiting_round_.assign(n, 0);
  timer_armed_ = false;
  // The survival contract (a worker that finished its epochs no longer
  // gates the barrier) only engages when faults or timeouts are in play.
  // On a clean run the historical semantics hold: the barrier waits for
  // every worker, so a straggler with leftover iterations stalls once the
  // others finish and the run ends at the drained event queue.
  survival_ = timeouts().rs_timeout_s > 0.0 ||
              !eng.config().faults.events().empty();
}

void BspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  const std::uint64_t r = round_ + 1;
  awaiting_[worker] = true;
  awaiting_round_[worker] = r;
  e.worker_transfer(worker, e.cluster().route_to_ps(worker), e.model_bytes(),
                    [this, r, worker] { on_push_arrived(r, worker); });
  arm_round_timer();
}

void BspSync::arm_round_timer() {
  const double deadline = timeouts().rs_timeout_s;
  if (deadline <= 0.0 || timer_armed_) return;
  timer_armed_ = true;
  const std::uint64_t r = round_ + 1;
  eng().sim().schedule(deadline, [this, r] {
    if (r != round_ + 1) return;  // the round closed naturally
    timer_armed_ = false;
    // Quiescent expiry (e.g. the watchdog armed at the last close of the
    // run): nothing arrived and nobody is stuck — not a timeout.
    runtime::Engine& e = eng();
    bool pending = arrived_count_ > 0;
    for (std::size_t w = 0; w < e.num_workers() && !pending; ++w) {
      pending = awaiting_[w] && e.worker_alive(w);
    }
    if (!pending) return;
    e.record_round_timeout();
    close_round();
    ++e.telemetry_round(round_).timeouts;
  });
}

void BspSync::on_push_arrived(std::uint64_t round, std::size_t worker) {
  if (round != round_ + 1) {
    // Late push from a round that already closed: the gradient is stale —
    // discard it and resync the worker so it can rejoin.
    if (awaiting_[worker] && eng().worker_alive(worker)) catch_up(worker);
    return;
  }
  arrived_[worker] = true;
  ++arrived_count_;
  maybe_close_round();
}

void BspSync::on_worker_crashed(std::size_t worker) {
  awaiting_[worker] = false;  // its flows are cancelled; nothing to answer
  maybe_close_round();        // the barrier may now be satisfiable
}

void BspSync::maybe_close_round() {
  if (arrived_count_ == 0) return;
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  for (std::size_t w = 0; w < n; ++w) {
    if (arrived_[w] || !e.worker_alive(w)) continue;
    if (survival_ && e.worker_done(w)) continue;
    // A stuck worker (awaiting a response from an older round, e.g. one
    // whose broadcast was dropped) will never push again — the timeout
    // path resyncs it; everyone else we genuinely wait for.
    if (awaiting_[w] && awaiting_round_[w] <= round_) continue;
    return;
  }
  close_round();
}

void BspSync::close_round() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  const std::vector<bool> contributors = arrived_;
  const std::size_t contributed = arrived_count_;
  ++round_;
  timer_armed_ = false;
  arrived_.assign(n, false);
  arrived_count_ = 0;
  record_full_round(round_, contributed);

  // Resync healthy workers whose push missed the round (still awaiting a
  // response but not among this round's contributors). A worker stays
  // `awaiting_` until some response is delivered, so a lost catch-up pull
  // is retried at the next round close; duplicate deliveries no-op.
  bool resyncing = false;
  for (std::size_t w = 0; w < n; ++w) {
    if (awaiting_[w] && e.worker_alive(w)) {
      resyncing = true;
      if (!contributors[w]) catch_up(w);
    }
  }
  // Watchdog: while any healthy worker still waits on a response, keep a
  // timer armed so a dropped broadcast or catch-up pull is retried at the
  // next expiry instead of deadlocking the cluster.
  if (resyncing && !e.stopping()) arm_round_timer();
  if (contributed == 0) return;  // nothing arrived: no step this round

  // §2.1.1: weight by the worker's sample share. With a partial round the
  // weights renormalize over the contributors; the full-round path keeps
  // the exact historical arithmetic.
  agg_.assign(e.global_params().size(), 0.0f);
  double weight_sum = 0.0;
  for (std::size_t w = 0; w < n; ++w) {
    if (contributors[w]) weight_sum += e.worker_weight(w);
  }
  // Defensive twin of the contributed == 0 gate above: a partial round
  // whose contributor weights sum to zero must close as a no-op, not
  // renormalize by zero (the full-round path never divides).
  if (contributed != n && weight_sum <= 0.0) return;
  for (std::size_t w = 0; w < n; ++w) {
    if (!contributors[w]) continue;
    const double weight = contributed == n
                              ? e.worker_weight(w)
                              : e.worker_weight(w) / weight_sum;
    util::axpy(static_cast<float>(weight), e.worker_gradient(w), agg_);
  }
  e.apply_global_step(agg_);
  // PS cost: the final optimizer application (read aggregate, read+write
  // params = 3 memory passes); per-push accumulation streams with the
  // incast arrivals and stays off the critical path.
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this, contributors] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      if (!contributors[w] || !en.worker_alive(w)) continue;
      en.worker_transfer(w, en.cluster().route_from_ps(w), en.model_bytes(),
                         [this, w] {
                           runtime::Engine& e2 = eng();
                           if (!e2.worker_alive(w) || !awaiting_[w]) return;
                           awaiting_[w] = false;
                           util::copy(e2.global_params(),
                                      e2.worker_params(w));
                           e2.finish_sync(w);
                         });
    }
  });
}

void BspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // BSP state version
  w.u64(round_);
  w.bool_vec(arrived_);
  w.u64(arrived_count_);
  w.bool_vec(awaiting_);
  w.u64_vec(awaiting_round_);
}

void BspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported BSP state version");
  round_ = r.u64();
  arrived_ = r.bool_vec();
  arrived_count_ = static_cast<std::size_t>(r.u64());
  awaiting_ = r.bool_vec();
  awaiting_round_ = r.u64_vec();
  OSP_CHECK(arrived_.size() == eng().num_workers() &&
                awaiting_.size() == eng().num_workers() &&
                awaiting_round_.size() == eng().num_workers(),
            "BSP checkpoint worker count mismatch");
  timer_armed_ = false;  // re-armed by the next push
}

bool BspSync::drained() const {
  return !timer_armed_ && arrived_count_ == 0 &&
         std::none_of(awaiting_.begin(), awaiting_.end(),
                      [](bool b) { return b; });
}

void BspSync::catch_up(std::size_t worker) {
  runtime::Engine& e = eng();
  e.record_catch_up_pull();
  ++e.telemetry_round(round_).retries;
  // `awaiting_` stays set until the pull is actually delivered: if this
  // pull is dropped, the next round close retries; if several pulls end up
  // in flight, the first delivery wins and the rest no-op.
  e.worker_transfer(worker, e.cluster().route_from_ps(worker),
                    e.model_bytes(), [this, worker] {
                      runtime::Engine& e2 = eng();
                      if (!e2.worker_alive(worker) || !awaiting_[worker])
                        return;
                      awaiting_[worker] = false;
                      util::copy(e2.global_params(),
                                 e2.worker_params(worker));
                      e2.finish_sync(worker);
                    });
}

}  // namespace osp::sync
