#include "sync/bsp.hpp"

#include "sync/transfer.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

void BspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_to_ps(worker), e.model_bytes(),
           [this] { on_push_arrived(); });
}

void BspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void BspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  for (std::size_t w = 0; w < n; ++w) {
    // §2.1.1: weight by the worker's sample share (uniform 1/N unless
    // batch balancing rescaled the batches).
    util::axpy(static_cast<float>(e.worker_weight(w)),
               e.worker_gradient(w), agg_);
  }
  e.apply_global_step(agg_);
  // PS cost: the final optimizer application (read aggregate, read+write
  // params = 3 memory passes); per-push accumulation streams with the
  // incast arrivals and stays off the critical path.
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      transfer(en, en.cluster().route_from_ps(w), en.model_bytes(),
               [this, w] {
                 runtime::Engine& e2 = eng();
                 util::copy(e2.global_params(), e2.worker_params(w));
                 e2.finish_sync(w);
               });
    }
  });
}

}  // namespace osp::sync
