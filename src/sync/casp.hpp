// CASP / Petrel-style cluster-aware hybrid synchronization (Zhou et al.,
// TPDS'20; §7).
//
// Workers are clustered by compute speed: members of the same speed group
// synchronize with BSP semantics (barrier + mean aggregation within the
// group), while the groups relate to each other asynchronously (each group
// pushes its aggregated gradient ASP-style). Fast groups never wait for
// slow ones, but within a group no stale values circulate.
//
// Grouping here is by the cluster's speed_factors (k-means would be
// overkill for the evaluation's two-speed scenarios): workers with equal
// speed factors share a group.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class CaspSync : public runtime::SyncModel {
 public:
  CaspSync() = default;

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;

  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }

  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

 private:
  void on_push_arrived(std::size_t group);
  void group_aggregate(std::size_t group);

  std::vector<std::vector<std::size_t>> groups_;  // group -> workers
  std::vector<std::size_t> group_of_;             // worker -> group
  std::vector<std::size_t> arrived_;              // per group
  std::vector<float> agg_;
  std::uint64_t tel_rounds_ = 0;  // group barriers closed (telemetry)
};

}  // namespace osp::sync
