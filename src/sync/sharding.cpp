#include "sync/sharding.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace osp::sync {

std::vector<std::size_t> assign_blocks_to_shards(
    std::span<const double> block_bytes, std::size_t num_shards) {
  OSP_CHECK(num_shards >= 1, "need at least one shard");
  std::vector<std::size_t> assignment(block_bytes.size(), 0);
  if (num_shards == 1) return assignment;
  // Largest-first greedy: stable and near-balanced for practical inputs.
  std::vector<std::size_t> order(block_bytes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return block_bytes[a] > block_bytes[b];
                   });
  std::vector<double> load(num_shards, 0.0);
  for (std::size_t idx : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[idx] = target;
    load[target] += block_bytes[idx];
  }
  return assignment;
}

std::vector<double> shard_bytes(std::span<const double> block_bytes,
                                std::span<const std::size_t> assignment,
                                std::size_t num_shards) {
  OSP_CHECK(assignment.size() == block_bytes.size(),
            "assignment arity mismatch");
  std::vector<double> out(num_shards, 0.0);
  for (std::size_t i = 0; i < block_bytes.size(); ++i) {
    OSP_CHECK(assignment[i] < num_shards, "assignment out of range");
    out[assignment[i]] += block_bytes[i];
  }
  return out;
}

}  // namespace osp::sync
