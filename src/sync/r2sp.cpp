#include "sync/r2sp.hpp"

#include "sync/transfer.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

void R2spSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  ready_.assign(eng.num_workers(), false);
  token_ = 0;
  serving_ = false;
}

void R2spSync::on_gradient_ready(std::size_t worker) {
  ready_.at(worker) = true;
  try_serve();
}

void R2spSync::try_serve() {
  if (serving_ || !ready_[token_]) return;
  serving_ = true;
  ready_[token_] = false;
  const std::size_t w = token_;
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_to_ps(w), e.model_bytes(), [this, w] {
    runtime::Engine& en = eng();
    en.apply_global_step(en.worker_gradient(w), en.worker_weight(w));
    en.ps_submit(en.ps_apply_delay(en.model_bytes(), 3.0), [this, w] {
      runtime::Engine& e2 = eng();
      if (overlap_pull_) {
        // Idealized duplex pipeline: the next push may start while this
        // worker's pull rides the egress direction.
        serving_ = false;
        token_ = (token_ + 1) % e2.num_workers();
        deliver(w);
        try_serve();
      } else {
        deliver(w);
      }
    });
  });
}

void R2spSync::deliver(std::size_t worker) {
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_from_ps(worker), e.model_bytes(),
           [this, worker] {
             runtime::Engine& en = eng();
             util::copy(en.global_params(), en.worker_params(worker));
             en.finish_sync(worker);
             if (!overlap_pull_) {
               serving_ = false;
               token_ = (token_ + 1) % en.num_workers();
               try_serve();
             }
           });
}

}  // namespace osp::sync
