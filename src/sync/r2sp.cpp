#include "sync/r2sp.hpp"

#include <algorithm>

#include "sync/transfer.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

void R2spSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  ready_.assign(eng.num_workers(), false);
  token_ = 0;
  serving_ = false;
  tel_rounds_ = 0;
}

void R2spSync::on_gradient_ready(std::size_t worker) {
  ready_.at(worker) = true;
  try_serve();
}

void R2spSync::try_serve() {
  if (serving_ || !ready_[token_]) return;
  serving_ = true;
  ready_[token_] = false;
  const std::size_t w = token_;
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_to_ps(w), e.model_bytes(), [this, w] {
    runtime::Engine& en = eng();
    en.apply_global_step(en.worker_gradient(w), en.worker_weight(w));
    record_full_round(++tel_rounds_, 1);
    en.ps_submit(en.ps_apply_delay(en.model_bytes(), 3.0), [this, w] {
      runtime::Engine& e2 = eng();
      if (overlap_pull_) {
        // Idealized duplex pipeline: the next push may start while this
        // worker's pull rides the egress direction.
        serving_ = false;
        token_ = (token_ + 1) % e2.num_workers();
        deliver(w);
        try_serve();
      } else {
        deliver(w);
      }
    });
  });
}

void R2spSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // R2SP state version
  w.bool_vec(ready_);
  w.u64(token_);
  w.boolean(serving_);
}

void R2spSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported R2SP state version");
  ready_ = r.bool_vec();
  OSP_CHECK(ready_.size() == eng().num_workers(),
            "R2SP checkpoint worker count mismatch");
  token_ = static_cast<std::size_t>(r.u64());
  serving_ = r.boolean();
}

bool R2spSync::drained() const {
  return !serving_ && std::none_of(ready_.begin(), ready_.end(),
                                   [](bool b) { return b; });
}

void R2spSync::deliver(std::size_t worker) {
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_from_ps(worker), e.model_bytes(),
           [this, worker] {
             runtime::Engine& en = eng();
             util::copy(en.global_params(), en.worker_params(worker));
             en.finish_sync(worker);
             if (!overlap_pull_) {
               serving_ = false;
               token_ = (token_ + 1) % en.num_workers();
               try_serve();
             }
           });
}

}  // namespace osp::sync
