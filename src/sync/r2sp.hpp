// Round-Robin Synchronous Parallel (R²SP, Chen et al. INFOCOM'19, §2.2.1).
//
// Workers synchronize with the PS one at a time in a fixed cyclic order, so
// the PS ingress link is never shared (no incast), and worker k's parameter
// pull overlaps worker k+1's gradient push — the full-duplex utilization
// R²SP is built around (default). `overlap_pull = false` gives the serial
// service discipline (push, update, pull per slot) as an ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class R2spSync : public runtime::SyncModel {
 public:
  explicit R2spSync(bool overlap_pull = true)
      : overlap_pull_(overlap_pull) {}

  [[nodiscard]] std::string name() const override {
    return overlap_pull_ ? "R2SP" : "R2SP(serial)";
  }
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

 private:
  void try_serve();
  void deliver(std::size_t worker);

  bool overlap_pull_;
  std::vector<bool> ready_;
  std::size_t token_ = 0;   // whose turn it is
  bool serving_ = false;    // the PS is busy with a worker's slot
  std::uint64_t tel_rounds_ = 0;  // served slots (telemetry)
};

}  // namespace osp::sync
