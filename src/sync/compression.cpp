#include "sync/compression.hpp"

#include <algorithm>
#include <cmath>

#include "sync/transfer.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
  const std::size_t n = grad.size();
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(keep_fraction *
                                               static_cast<double>(n))));
  if (keep >= n) return n;
  if (mode == CompressionMode::TopK) {
    // Threshold at the keep-th largest magnitude.
    std::vector<float> mags(n);
    for (std::size_t i = 0; i < n; ++i) mags[i] = std::fabs(grad[i]);
    std::nth_element(mags.begin(),
                     mags.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     mags.end(), std::greater<float>());
    const float threshold = mags[keep - 1];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      // Keep strictly-above first; elements equal to the threshold fill
      // remaining slots in index order (deterministic tie handling).
      if (std::fabs(grad[i]) > threshold) ++kept;
    }
    std::size_t slots_at_threshold = keep - kept;
    kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float m = std::fabs(grad[i]);
      if (m > threshold) {
        ++kept;
      } else if (m == threshold && slots_at_threshold > 0) {
        --slots_at_threshold;
        ++kept;
      } else {
        grad[i] = 0.0f;
      }
    }
    return kept;
  }
  // RandomK: reservoir-free selection via shuffled index prefix.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<bool> kept_mask(n, false);
  for (std::size_t i = 0; i < keep; ++i) kept_mask[idx[i]] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!kept_mask[i]) grad[i] = 0.0f;
  }
  return keep;
}

CompressedBspSync::CompressedBspSync(CompressionMode mode,
                                     double keep_fraction, std::uint64_t seed,
                                     bool error_feedback)
    : mode_(mode),
      keep_fraction_(keep_fraction),
      rng_(seed),
      error_feedback_(error_feedback) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
}

std::string CompressedBspSync::name() const {
  const char* base = mode_ == CompressionMode::TopK ? "TopK" : "RandomK";
  std::string n = std::string(base) + "(" +
                  std::to_string(static_cast<int>(keep_fraction_ * 100)) +
                  "%)";
  if (error_feedback_) n += "+EF";
  return n;
}

void CompressedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  sparse_.assign(eng.num_workers(),
                 std::vector<float>(eng.global_params().size(), 0.0f));
  if (error_feedback_) {
    residual_.assign(eng.num_workers(),
                     std::vector<float>(eng.global_params().size(), 0.0f));
  }
  arrived_ = 0;
  tel_rounds_ = 0;
  tel_push_bytes_ = 0.0;
}

void CompressedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  sparse_[worker].assign(grad.begin(), grad.end());
  if (error_feedback_) {
    // Fold the previously dropped mass back in before selecting.
    util::add(sparse_[worker], residual_[worker], sparse_[worker]);
    residual_[worker].assign(sparse_[worker].begin(),
                             sparse_[worker].end());
  }
  const std::size_t kept = sparsify(sparse_[worker], mode_, keep_fraction_,
                                    rng_);
  if (error_feedback_) {
    // residual = (grad + residual) − transmitted.
    util::sub(residual_[worker], sparse_[worker], residual_[worker]);
  }
  // Wire format: 4-byte index + 4-byte value per kept element.
  const double bytes = static_cast<double>(kept) * 8.0;
  tel_push_bytes_ += bytes;
  transfer(e, e.cluster().route_to_ps(worker), bytes,
           [this] { on_push_arrived(); });
}

void CompressedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void CompressedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    util::axpy(scale, sparse_[w], agg_);
  }
  e.apply_global_step(agg_);
  // Telemetry reports the actual sparse wire bytes, not the dense model
  // size — that is the whole point of the baseline.
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = tel_push_bytes_;
  tel_push_bytes_ = 0.0;
  // The response carries only the touched entries (union support).
  std::size_t support = 0;
  for (float v : agg_) support += v != 0.0f ? 1 : 0;
  const double bytes =
      std::min(e.model_bytes(), static_cast<double>(support) * 8.0);
  e.ps_submit(e.ps_apply_delay(bytes, 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      transfer(en, en.cluster().route_from_ps(w), bytes, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

float quantize_dequantize_int8(std::span<float> grad) {
  float max_abs = 0.0f;
  for (float v : grad) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0f) return 0.0f;
  const float scale = max_abs / 127.0f;
  const float inv = 1.0f / scale;
  for (float& v : grad) {
    const float q = std::round(std::clamp(v * inv, -127.0f, 127.0f));
    v = q * scale;
  }
  return scale;
}

void QuantizedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  dequantized_.assign(eng.num_workers(),
                      std::vector<float>(eng.global_params().size(), 0.0f));
  arrived_ = 0;
  tel_rounds_ = 0;
}

void QuantizedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  dequantized_[worker].assign(grad.begin(), grad.end());
  (void)quantize_dequantize_int8(dequantized_[worker]);
  // int8 payload + one fp32 scale.
  const double bytes = e.model_bytes() / 4.0 + 4.0;
  transfer(e, e.cluster().route_to_ps(worker), bytes,
           [this] { on_push_arrived(); });
}

void QuantizedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void QuantizedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    util::axpy(scale, dequantized_[w], agg_);
  }
  e.apply_global_step(agg_);
  const double bytes = e.model_bytes() / 4.0 + 4.0;
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = static_cast<double>(n) * bytes;
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      transfer(en, en.cluster().route_from_ps(w), bytes, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

void CompressedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // compressed-BSP state version
  w.u64(arrived_);
  const util::RngState rng = rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.boolean(rng.have_spare_normal);
  w.f64(rng.spare_normal);
  // Error-feedback residuals are true training state: losing them changes
  // every subsequent sparsification. Without error feedback they stay
  // empty and serialize as a zero count.
  w.boolean(error_feedback_);
  w.u64(residual_.size());
  for (const auto& res : residual_) w.f32_vec(res);
}

void CompressedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported compressed-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  util::RngState rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.have_spare_normal = r.boolean();
  rng.spare_normal = r.f64();
  rng_.set_state(rng);
  OSP_CHECK(r.boolean() == error_feedback_,
            "compressed-BSP checkpoint error-feedback mode mismatch");
  const std::uint64_t n = r.u64();
  OSP_CHECK(n == residual_.size(),
            "compressed-BSP checkpoint residual count mismatch");
  for (auto& res : residual_) {
    std::vector<float> loaded = r.f32_vec();
    OSP_CHECK(loaded.size() == res.size(),
              "compressed-BSP checkpoint residual length mismatch");
    res = std::move(loaded);
  }
}

void QuantizedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // quantized-BSP state version
  w.u64(arrived_);
}

void QuantizedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported quantized-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
}

}  // namespace osp::sync
