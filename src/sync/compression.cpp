#include "sync/compression.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sync/transfer.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/simd.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::size_t sparsify(std::span<float> grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng,
                     SparsifyScratch& scratch) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
  const std::size_t n = grad.size();
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(keep_fraction *
                                               static_cast<double>(n))));
  if (keep >= n) return n;
  const util::simd::Kernels& k = util::simd::kernels();
  if (mode == CompressionMode::TopK) {
    // Threshold at the keep-th largest magnitude. `mags` keeps element
    // order for the scan passes; `sel` is the nth_element workspace.
    scratch.mags.resize(n);
    scratch.sel.resize(n);
    k.abs_into(grad.data(), scratch.mags.data(), n);
    std::copy(scratch.mags.begin(), scratch.mags.end(), scratch.sel.begin());
    std::nth_element(scratch.sel.begin(),
                     scratch.sel.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     scratch.sel.end(), std::greater<float>());
    const float threshold = scratch.sel[keep - 1];
    // Keep strictly-above first; elements equal to the threshold fill
    // remaining slots in index order (deterministic tie handling).
    const std::size_t kept_above = k.count_gt(scratch.mags.data(), threshold, n);
    const std::size_t ties_kept = k.threshold_zero(
        grad.data(), scratch.mags.data(), threshold, keep - kept_above, n);
    return kept_above + ties_kept;
  }
  // RandomK: reservoir-free selection via shuffled index prefix.
  OSP_CHECK(n <= std::numeric_limits<std::uint32_t>::max(),
            "RandomK gradient block too large for 32-bit indices");
  scratch.idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.idx[i] = static_cast<std::uint32_t>(i);
  }
  rng.shuffle(scratch.idx);
  scratch.mask.assign(n, 0);
  for (std::size_t i = 0; i < keep; ++i) scratch.mask[scratch.idx[i]] = 1;
  k.mask_zero(grad.data(), scratch.mask.data(), n);
  return keep;
}

std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng) {
  SparsifyScratch scratch;
  return sparsify(std::span<float>(grad), mode, keep_fraction, rng, scratch);
}

CompressedBspSync::CompressedBspSync(CompressionMode mode,
                                     double keep_fraction, std::uint64_t seed,
                                     bool error_feedback)
    : mode_(mode),
      keep_fraction_(keep_fraction),
      rng_(seed),
      error_feedback_(error_feedback) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
}

std::string CompressedBspSync::name() const {
  const char* base = mode_ == CompressionMode::TopK ? "TopK" : "RandomK";
  // %g keeps the exact fraction ("12.5%"), not a truncated integer.
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%g", keep_fraction_ * 100.0);
  std::string n = std::string(base) + "(" + pct + "%)";
  if (error_feedback_) n += "+EF";
  return n;
}

void CompressedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  sparse_.assign(eng.num_workers(),
                 std::vector<float>(eng.global_params().size(), 0.0f));
  if (error_feedback_) {
    residual_.assign(eng.num_workers(),
                     std::vector<float>(eng.global_params().size(), 0.0f));
  }
  arrived_ = 0;
  tel_rounds_ = 0;
  tel_push_bytes_ = 0.0;
}

void CompressedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  if (error_feedback_) {
    // Fold the previously dropped mass back in before selecting, writing
    // grad + residual to both the transmit buffer and the residual in one
    // pass (the residual copy is what sub() consumes below).
    util::simd::kernels().add_copy2(grad.data(), residual_[worker].data(),
                                    sparse_[worker].data(),
                                    residual_[worker].data(), grad.size());
  } else {
    util::copy(grad, sparse_[worker]);
  }
  const std::size_t kept = sparsify(std::span<float>(sparse_[worker]), mode_,
                                    keep_fraction_, rng_, scratch_);
  if (error_feedback_) {
    // residual = (grad + residual) − transmitted.
    util::sub(residual_[worker], sparse_[worker], residual_[worker]);
  }
  // Wire format: 4-byte index + 4-byte value per kept element.
  const double bytes = static_cast<double>(kept) * 8.0;
  tel_push_bytes_ += bytes;
  transfer(e, e.cluster().route_to_ps(worker), bytes,
           [this] { on_push_arrived(); });
}

void CompressedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void CompressedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    util::axpy(scale, sparse_[w], agg_);
  }
  e.apply_global_step(agg_);
  // Telemetry reports the actual sparse wire bytes, not the dense model
  // size — that is the whole point of the baseline.
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = tel_push_bytes_;
  tel_push_bytes_ = 0.0;
  // The response carries only the touched entries (union support).
  std::size_t support = 0;
  for (float v : agg_) support += v != 0.0f ? 1 : 0;
  const double bytes =
      std::min(e.model_bytes(), static_cast<double>(support) * 8.0);
  e.ps_submit(e.ps_apply_delay(bytes, 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      transfer(en, en.cluster().route_from_ps(w), bytes, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

float quantize_dequantize_int8(std::span<float> grad) {
  const util::simd::Kernels& k = util::simd::kernels();
  const float max_abs = k.max_abs(grad.data(), grad.size());
  if (max_abs == 0.0f) return 0.0f;
  const float scale = max_abs / 127.0f;
  const float inv = 1.0f / scale;
  k.quantize_dequantize(grad.data(), scale, inv, grad.size());
  return scale;
}

void QuantizedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  dequantized_.assign(eng.num_workers(),
                      std::vector<float>(eng.global_params().size(), 0.0f));
  arrived_ = 0;
  tel_rounds_ = 0;
}

void QuantizedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  dequantized_[worker].assign(grad.begin(), grad.end());
  (void)quantize_dequantize_int8(dequantized_[worker]);
  // int8 payload + one fp32 scale.
  const double bytes = e.model_bytes() / 4.0 + 4.0;
  transfer(e, e.cluster().route_to_ps(worker), bytes,
           [this] { on_push_arrived(); });
}

void QuantizedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void QuantizedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    util::axpy(scale, dequantized_[w], agg_);
  }
  e.apply_global_step(agg_);
  const double bytes = e.model_bytes() / 4.0 + 4.0;
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = static_cast<double>(n) * bytes;
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      transfer(en, en.cluster().route_from_ps(w), bytes, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

void CompressedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // compressed-BSP state version
  w.u64(arrived_);
  const util::RngState rng = rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.boolean(rng.have_spare_normal);
  w.f64(rng.spare_normal);
  // Error-feedback residuals are true training state: losing them changes
  // every subsequent sparsification. Without error feedback they stay
  // empty and serialize as a zero count.
  w.boolean(error_feedback_);
  w.u64(residual_.size());
  for (const auto& res : residual_) w.f32_vec(res);
}

void CompressedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported compressed-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  util::RngState rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.have_spare_normal = r.boolean();
  rng.spare_normal = r.f64();
  rng_.set_state(rng);
  OSP_CHECK(r.boolean() == error_feedback_,
            "compressed-BSP checkpoint error-feedback mode mismatch");
  const std::uint64_t n = r.u64();
  OSP_CHECK(n == residual_.size(),
            "compressed-BSP checkpoint residual count mismatch");
  // Read straight into the attached residual buffers (f32_into validates
  // the stored length against each buffer's size).
  for (auto& res : residual_) r.f32_into(res);
}

void QuantizedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // quantized-BSP state version
  w.u64(arrived_);
}

void QuantizedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported quantized-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
}

}  // namespace osp::sync
