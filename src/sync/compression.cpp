#include "sync/compression.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/simd.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

namespace {
/// Dense segment layout of the engine's layer blocks for KvStore::init.
void init_store_from_blocks(kv::KvStore& store, runtime::Engine& eng) {
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> numels;
  offsets.reserve(eng.num_blocks());
  numels.reserve(eng.num_blocks());
  for (const auto& b : eng.blocks()) {
    offsets.push_back(b.offset);
    numels.push_back(b.numel);
  }
  store.init(offsets, numels);
}
}  // namespace

CompressedBspSync::CompressedBspSync(CompressionMode mode,
                                     double keep_fraction, std::uint64_t seed,
                                     bool error_feedback)
    : mode_(mode),
      keep_fraction_(keep_fraction),
      error_feedback_(error_feedback) {
  OSP_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]");
  // The selection RNG lives in the filter and is constructed once here —
  // re-attaching must not rewind the stream (historical behavior).
  topk_ = static_cast<kv::TopKFilter*>(&pipeline_.add(
      std::make_unique<kv::TopKFilter>(mode, keep_fraction, seed)));
}

std::string CompressedBspSync::name() const {
  const char* base = mode_ == CompressionMode::TopK ? "TopK" : "RandomK";
  // %g keeps the exact fraction ("12.5%"), not a truncated integer.
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%g", keep_fraction_ * 100.0);
  std::string n = std::string(base) + "(" + pct + "%)";
  if (error_feedback_) n += "+EF";
  return n;
}

void CompressedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  init_store_from_blocks(store_, eng);
  inbox_.assign(eng.num_workers(), kv::KvMessage{});
  for (kv::KvMessage& m : inbox_) {
    m.values.assign(eng.global_params().size(), 0.0f);
  }
  if (error_feedback_) {
    residual_.assign(eng.num_workers(),
                     std::vector<float>(eng.global_params().size(), 0.0f));
  }
  arrived_ = 0;
  tel_rounds_ = 0;
  tel_push_bytes_ = 0.0;
}

void CompressedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  kv::KvMessage& m = inbox_[worker];
  m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker), tel_rounds_ + 1,
          store_.key_range());
  if (error_feedback_) {
    // Fold the previously dropped mass back in before selecting, writing
    // grad + residual to both the transmit buffer and the residual in one
    // pass (the residual copy is what sub() consumes below).
    util::simd::kernels().add_copy2(grad.data(), residual_[worker].data(),
                                    m.values.data(),
                                    residual_[worker].data(), grad.size());
  } else {
    util::copy(grad, m.values);
  }
  m.dense_numel = grad.size();
  // Proxy-scale dense accounting; the Top-K stage replaces it with the
  // kept-element wire format (4-byte index + 4-byte value per element).
  m.dense_value_bytes = m.value_bytes =
      4.0 * static_cast<double>(grad.size());
  pipeline_.encode(m);
  if (error_feedback_) {
    // residual = (grad + residual) − transmitted.
    util::sub(residual_[worker], m.values, residual_[worker]);
  }
  tel_push_bytes_ += m.wire_bytes();
  tx_.push(worker, 0, m, /*owned=*/false, [this] { on_push_arrived(); });
}

void CompressedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void CompressedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    // Decode symmetry: in-memory delivery keeps the dense receiver view,
    // so this is a structural no-op — the PS trains on exactly what the
    // pipeline's decode of the serialized form would yield.
    pipeline_.decode(inbox_[w]);
    util::axpy(scale, inbox_[w].values, agg_);
  }
  e.apply_global_step(agg_);
  store_.bump_all();
  // Telemetry reports the actual sparse wire bytes, not the dense model
  // size — that is the whole point of the baseline.
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = tel_push_bytes_;
  tel_push_bytes_ = 0.0;
  // The response carries only the touched entries (union support).
  std::size_t support = 0;
  for (float v : agg_) support += v != 0.0f ? 1 : 0;
  const double bytes =
      std::min(e.model_bytes(), static_cast<double>(support) * 8.0);
  e.ps_submit(e.ps_apply_delay(bytes, 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    kv::KvMessage resp;
    resp.begin(kv::Op::kPullResponse, 0, tel_rounds_, store_.key_range());
    store_.stamp_versions(resp);
    resp.set_accounting(bytes);
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      tx_.respond(w, 0, resp, /*owned=*/false, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

void CompressedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(2);  // compressed-BSP state version (2: KV core)
  w.u64(arrived_);
  pipeline_.save_state(w);  // the selection RNG stream
  // Error-feedback residuals are true training state: losing them changes
  // every subsequent sparsification. Without error feedback they stay
  // empty and serialize as a zero count.
  w.boolean(error_feedback_);
  w.u64(residual_.size());
  for (const auto& res : residual_) w.f32_vec(res);
  store_.save_state(w);
}

void CompressedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 2, "unsupported compressed-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  pipeline_.load_state(r);
  OSP_CHECK(r.boolean() == error_feedback_,
            "compressed-BSP checkpoint error-feedback mode mismatch");
  const std::uint64_t n = r.u64();
  OSP_CHECK(n == residual_.size(),
            "compressed-BSP checkpoint residual count mismatch");
  // Read straight into the attached residual buffers (f32_into validates
  // the stored length against each buffer's size).
  for (auto& res : residual_) r.f32_into(res);
  store_.load_state(r);
}

QuantizedBspSync::QuantizedBspSync() {
  pipeline_.add(std::make_unique<kv::QuantizeInt8Filter>());
}

void QuantizedBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  init_store_from_blocks(store_, eng);
  inbox_.assign(eng.num_workers(), kv::KvMessage{});
  arrived_ = 0;
  tel_rounds_ = 0;
}

void QuantizedBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  kv::KvMessage& m = inbox_[worker];
  m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker), tel_rounds_ + 1,
          store_.key_range());
  m.values.assign(grad.begin(), grad.end());
  m.dense_numel = grad.size();
  // Real-model-scale dense accounting; the int8 stage divides it by 4 and
  // adds the fp32 scale, giving the historical model_bytes/4 + 4.
  m.dense_value_bytes = m.value_bytes = e.model_bytes();
  pipeline_.encode(m);
  tx_.push(worker, 0, m, /*owned=*/false, [this] { on_push_arrived(); });
}

void QuantizedBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void QuantizedBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    pipeline_.decode(inbox_[w]);  // dense dequantized view: structural no-op
    util::axpy(scale, inbox_[w].values, agg_);
  }
  e.apply_global_step(agg_);
  store_.bump_all();
  const double bytes = e.model_bytes() / 4.0 + 4.0;
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = static_cast<double>(n) * bytes;
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    kv::KvMessage resp;
    resp.begin(kv::Op::kPullResponse, 0, tel_rounds_, store_.key_range());
    store_.stamp_versions(resp);
    resp.set_accounting(bytes);
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      tx_.respond(w, 0, resp, /*owned=*/false, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

void QuantizedBspSync::save_state(util::serde::Writer& w) const {
  w.u8(2);  // quantized-BSP state version (2: KV core)
  w.u64(arrived_);
  store_.save_state(w);
}

void QuantizedBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 2, "unsupported quantized-BSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  store_.load_state(r);
}

}  // namespace osp::sync
