// Asynchronous Parallel (§2.1.2).
//
// Each worker synchronizes with the PS independently: push its own
// gradient, the PS applies it immediately (no aggregation, no barrier),
// then pull the current global parameters. Higher throughput, but workers
// train on whatever (possibly stale) parameters the PS holds — the source
// of ASP's accuracy loss.
#pragma once

#include <cstdint>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class AspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override { return "ASP"; }
  void attach(runtime::Engine& eng) override {
    SyncModel::attach(eng);
    tel_rounds_ = 0;
  }
  void on_gradient_ready(std::size_t worker) override;

  /// Telemetry round numbering continues from `base` (SyncSwitch hands the
  /// BSP phase's round count over so the shared record stream stays
  /// collision-free).
  void seed_round_counter(std::uint64_t base) { tel_rounds_ = base; }

 private:
  std::uint64_t tel_rounds_ = 0;  ///< per-worker exchanges applied (telemetry)
};

}  // namespace osp::sync
