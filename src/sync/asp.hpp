// Asynchronous Parallel (§2.1.2).
//
// Each worker synchronizes with the PS independently: push its own
// gradient, the PS applies it immediately (no aggregation, no barrier),
// then pull the current global parameters. Higher throughput, but workers
// train on whatever (possibly stale) parameters the PS holds — the source
// of ASP's accuracy loss.
#pragma once

#include "runtime/sync_model.hpp"

namespace osp::sync {

class AspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override { return "ASP"; }
  void on_gradient_ready(std::size_t worker) override;
};

}  // namespace osp::sync
