// Gradient-compression baselines: Top-K and Random-K sparsified BSP
// (§2.2.2, §7). Each worker transmits only a fraction of its gradient
// elements (as index+value pairs, 8 bytes each); dropped gradients are
// LOST — no error feedback — which is exactly the accuracy-degradation
// failure mode the paper contrasts OSP against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/sync_model.hpp"
#include "util/rng.hpp"

namespace osp::sync {

enum class CompressionMode { TopK, RandomK };

/// Reusable working memory for sparsify(). Sized on first use and reused
/// across rounds, so the per-round selection does no heap allocation after
/// warm-up.
struct SparsifyScratch {
  std::vector<float> mags;        // |grad[i]|, kept in element order
  std::vector<float> sel;         // nth_element workspace (permuted)
  std::vector<std::uint32_t> idx; // RandomK shuffle indices
  std::vector<std::uint8_t> mask; // RandomK keep byte-mask
};

/// Sparsify `grad` in place, keeping `keep_fraction` of its elements
/// (highest |g| for TopK, uniform for RandomK); zeroes the rest. Returns
/// the number of kept elements.
std::size_t sparsify(std::span<float> grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng,
                     SparsifyScratch& scratch);

/// Convenience overload with throwaway scratch (tests, one-shot callers).
std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                     double keep_fraction, util::Rng& rng);

class CompressedBspSync : public runtime::SyncModel {
 public:
  /// `error_feedback` keeps per-worker residual memory (DGC-style): the
  /// dropped gradient mass is added back into the next iteration's
  /// gradient before sparsification, which preserves accuracy where plain
  /// Top-K/Random-K lose it.
  CompressedBspSync(CompressionMode mode, double keep_fraction,
                    std::uint64_t seed = 99, bool error_feedback = false);

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return arrived_ == 0; }

 private:
  void on_push_arrived();
  void aggregate_and_broadcast();

  CompressionMode mode_;
  double keep_fraction_;
  util::Rng rng_;
  bool error_feedback_;
  std::size_t arrived_ = 0;
  std::vector<std::vector<float>> sparse_;    // per-worker sparsified grads
  std::vector<std::vector<float>> residual_;  // per-worker error memory
  std::vector<float> agg_;
  SparsifyScratch scratch_;
  std::uint64_t tel_rounds_ = 0;
  double tel_push_bytes_ = 0.0;  // sparse bytes pushed this round
};

/// Symmetric per-tensor int8 quantization: q = round(clamp(g/s)) with
/// s = max|g|/127. Returns the scale; `grad` is replaced by the
/// dequantized values (the receiver's view), so quantization noise enters
/// the training numerics exactly as it would on a real system.
float quantize_dequantize_int8(std::span<float> grad);

/// 8-bit quantized BSP (§2.2.2 / §7): every gradient travels as int8
/// (model_bytes/4 on the wire + a 4-byte scale) — bounded 4× communication
/// reduction, small quantization noise, no gradients dropped.
class QuantizedBspSync : public runtime::SyncModel {
 public:
  QuantizedBspSync() = default;

  [[nodiscard]] std::string name() const override { return "Q8-BSP"; }
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return arrived_ == 0; }

 private:
  void on_push_arrived();
  void aggregate_and_broadcast();

  std::size_t arrived_ = 0;
  std::vector<std::vector<float>> dequantized_;  // per-worker views
  std::vector<float> agg_;
  std::uint64_t tel_rounds_ = 0;
};

}  // namespace osp::sync
