// Gradient-compression baselines: Top-K and Random-K sparsified BSP
// (§2.2.2, §7) and 8-bit quantized BSP, built on the KV core.
//
// Each model runs its pushes through a kv::FilterPipeline — a single
// TopKFilter or QuantizeInt8Filter stage — so the wire bytes the
// network simulator charges are exactly the composed pipeline's output,
// and the PS trains on the pipeline's decoded receiver view. Dropped
// Top-K gradients are LOST unless error feedback is on — exactly the
// accuracy-degradation failure mode the paper contrasts OSP against.
//
// The raw kernels (sparsify, int8 quantize) live in kv/compress.hpp;
// the aliases below keep the historical sync:: entry points for tests
// and benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/compress.hpp"
#include "kv/filter.hpp"
#include "kv/store.hpp"
#include "kv/transport.hpp"
#include "runtime/sync_model.hpp"
#include "util/rng.hpp"

namespace osp::sync {

using CompressionMode = kv::CompressionMode;
using SparsifyScratch = kv::SparsifyScratch;

inline std::size_t sparsify(std::span<float> grad, CompressionMode mode,
                            double keep_fraction, util::Rng& rng,
                            SparsifyScratch& scratch) {
  return kv::sparsify(grad, mode, keep_fraction, rng, scratch);
}

inline std::size_t sparsify(std::vector<float>& grad, CompressionMode mode,
                            double keep_fraction, util::Rng& rng) {
  return kv::sparsify(grad, mode, keep_fraction, rng);
}

inline float quantize_dequantize_int8(std::span<float> grad) {
  return kv::quantize_dequantize_int8(grad);
}

class CompressedBspSync : public runtime::SyncModel {
 public:
  /// `error_feedback` keeps per-worker residual memory (DGC-style): the
  /// dropped gradient mass is added back into the next iteration's
  /// gradient before sparsification, which preserves accuracy where plain
  /// Top-K/Random-K lose it.
  CompressedBspSync(CompressionMode mode, double keep_fraction,
                    std::uint64_t seed = 99, bool error_feedback = false);

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return arrived_ == 0; }

 private:
  void on_push_arrived();
  void aggregate_and_broadcast();

  CompressionMode mode_;
  double keep_fraction_;
  bool error_feedback_;
  kv::FilterPipeline pipeline_;     // one TopKFilter stage
  kv::TopKFilter* topk_ = nullptr;  // owned by pipeline_
  kv::Transport tx_;
  kv::KvStore store_;
  std::size_t arrived_ = 0;
  std::vector<kv::KvMessage> inbox_;          // per-worker pushes
  std::vector<std::vector<float>> residual_;  // per-worker error memory
  std::vector<float> agg_;
  std::uint64_t tel_rounds_ = 0;
  double tel_push_bytes_ = 0.0;  // sparse bytes pushed this round
};

/// 8-bit quantized BSP (§2.2.2 / §7): every gradient travels as int8
/// (model_bytes/4 on the wire + a 4-byte scale) — bounded 4× communication
/// reduction, small quantization noise, no gradients dropped.
class QuantizedBspSync : public runtime::SyncModel {
 public:
  QuantizedBspSync();

  [[nodiscard]] std::string name() const override { return "Q8-BSP"; }
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return arrived_ == 0; }

 private:
  void on_push_arrived();
  void aggregate_and_broadcast();

  kv::FilterPipeline pipeline_;  // one QuantizeInt8Filter stage
  kv::Transport tx_;
  kv::KvStore store_;
  std::size_t arrived_ = 0;
  std::vector<kv::KvMessage> inbox_;  // per-worker dequantized views
  std::vector<float> agg_;
  std::uint64_t tel_rounds_ = 0;
};

}  // namespace osp::sync
