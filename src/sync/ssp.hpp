// Stale Synchronous Parallel (Ho et al., §2.1.2 / §7).
//
// ASP communication, but a worker may not start iteration i+1 while it is
// more than `staleness_bound` iterations ahead of the slowest worker. Ahead
// workers park after their pull completes and are released as stragglers
// catch up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class SspSync : public runtime::SyncModel {
 public:
  explicit SspSync(std::size_t staleness_bound)
      : staleness_bound_(staleness_bound) {}

  [[nodiscard]] std::string name() const override;
  void on_gradient_ready(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return parked_.empty(); }

 private:
  void maybe_release(std::size_t worker);
  void release_parked();

  std::size_t staleness_bound_;
  std::vector<std::size_t> parked_;
  std::uint64_t tel_rounds_ = 0;  ///< per-worker exchanges (telemetry)
};

}  // namespace osp::sync
