#include "sync/ssp.hpp"

#include <algorithm>

#include "sync/transfer.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::string SspSync::name() const {
  return "SSP(s=" + std::to_string(staleness_bound_) + ")";
}

void SspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_to_ps(worker), e.model_bytes(),
           [this, worker] {
             runtime::Engine& en = eng();
             en.apply_global_step(en.worker_gradient(worker),
                                  en.worker_weight(worker));
             record_full_round(++tel_rounds_, 1);
             en.ps_submit(en.ps_apply_delay(en.model_bytes(), 3.0),
                          [this, worker] {
               runtime::Engine& e2 = eng();
               transfer(e2, e2.cluster().route_from_ps(worker),
                        e2.model_bytes(), [this, worker] {
                          runtime::Engine& e3 = eng();
                          util::copy(e3.global_params(),
                                     e3.worker_params(worker));
                          maybe_release(worker);
                        });
             });
           });
}

void SspSync::maybe_release(std::size_t worker) {
  runtime::Engine& e = eng();
  // finish_sync bumps this worker's iteration to it+1; the bound constrains
  // how far ahead of the slowest worker it may then run.
  const std::size_t it = e.worker_iteration(worker);
  const std::size_t min_it = e.min_worker_iteration();
  if (it + 1 > min_it + staleness_bound_) {
    parked_.push_back(worker);
    return;
  }
  e.finish_sync(worker);
  // This worker's progress may have raised min_iteration; wake others.
  release_parked();
}

void SspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // SSP state version
  w.u64(staleness_bound_);
  w.size_vec(parked_);
}

void SspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported SSP state version");
  OSP_CHECK(r.u64() == staleness_bound_,
            "SSP checkpoint staleness bound mismatch");
  parked_ = r.size_vec();
}

void SspSync::release_parked() {
  runtime::Engine& e = eng();
  bool progressed = true;
  while (progressed && !parked_.empty()) {
    progressed = false;
    const std::size_t min_it = e.min_worker_iteration();
    for (std::size_t i = 0; i < parked_.size(); ++i) {
      const std::size_t w = parked_[i];
      if (e.worker_iteration(w) + 1 <= min_it + staleness_bound_) {
        parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
        e.finish_sync(w);
        progressed = true;
        break;
      }
    }
  }
}

}  // namespace osp::sync
