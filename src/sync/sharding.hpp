// Parameter-shard assignment for multi-PS clusters (§6.1).
//
// Blocks are distributed across PSes with a greedy byte-balancing
// heuristic (largest block first onto the least-loaded PS), so every PS
// carries a near-equal share of the wire traffic and update work.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osp::sync {

/// Returns blocks-to-PS assignment: result[i] = PS index of block i.
[[nodiscard]] std::vector<std::size_t> assign_blocks_to_shards(
    std::span<const double> block_bytes, std::size_t num_shards);

/// Total bytes assigned to each shard under `assignment`.
[[nodiscard]] std::vector<double> shard_bytes(
    std::span<const double> block_bytes,
    std::span<const std::size_t> assignment, std::size_t num_shards);

}  // namespace osp::sync
