// BSP on the KV core with a *configurable* filter pipeline — the
// demonstrator for composed message filters (key-cache, GIB significance
// filtering, top-k sparsification, int8 quantization stacked in one
// pipeline).
//
// Unlike the ported legacy models (compression.hpp keeps the historical
// wire formulas for bit-identity), KvBspSync uses one self-consistent
// byte scale throughout: the proxy payload's own fp32 size (4 bytes per
// element, per-block 4*numel for the GIB stage). That makes the composed
// accounting directly comparable across pipeline configurations — the
// EXPERIMENTS.md wire-bytes table and the composed-telemetry test in
// tests/test_sync.cpp are built on this model.
//
// Per round: every worker pushes its full gradient through the pipeline
// (GIB selection recomputed each aggregate from per-block gradient
// magnitude), the PS decodes each message (symmetry rule: in-memory
// delivery keeps the dense receiver view), averages, steps, bumps the
// store versions and broadcasts. Telemetry `important_bytes` is the sum
// of the round's encoded push wire bytes — exactly what the transport
// charged.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/filter.hpp"
#include "kv/message.hpp"
#include "kv/replication.hpp"
#include "kv/store.hpp"
#include "kv/transport.hpp"
#include "runtime/sync_model.hpp"

namespace osp::sync {

struct KvBspOptions {
  /// Fraction of total block bytes the GIB stage keeps (by descending
  /// per-block mean |aggregate|; round 1 keeps everything). Outside
  /// (0, 1) the stage is omitted.
  double gib_keep_fraction = -1.0;
  /// Charge the serialized GIB bitmap (4 + ceil(B/8) bytes) per message.
  bool gib_attach_bitmap = true;
  /// Top-k keep fraction over the (post-GIB) dense payload. Outside
  /// (0, 1) the stage is omitted.
  double topk_keep_fraction = -1.0;
  std::uint64_t topk_seed = 4242;
  /// Append the int8 quantization stage.
  bool quantize_int8 = false;
  /// Prepend the key-cache stage (first push pays the key list, repeats
  /// pay an 8-byte signature).
  bool key_cache = false;
};

class KvBspSync : public runtime::SyncModel {
 public:
  explicit KvBspSync(KvBspOptions options = {});

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_ps_crashed(std::size_t ps) override;
  void on_ps_restarted(std::size_t ps) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

  /// Introspection for tests: the composed pipeline and the last round's
  /// summed push wire bytes (what telemetry records).
  [[nodiscard]] const kv::FilterPipeline& pipeline() const {
    return pipeline_;
  }
  [[nodiscard]] kv::TopKFilter* topk() const { return topk_; }
  [[nodiscard]] kv::GibFilter* gib() const { return gib_; }
  [[nodiscard]] double last_round_push_bytes() const {
    return last_round_push_bytes_;
  }
  /// The last encoded push of worker w (accounting inspection).
  [[nodiscard]] const kv::KvMessage& inbox(std::size_t w) const {
    return inbox_[w];
  }
  /// Introspection for tests: host currently serving the (single) shard.
  [[nodiscard]] std::size_t serving_host() const { return serving_; }
  [[nodiscard]] const kv::ReplicaTable& replicas() const { return replica_; }

 private:
  /// Send worker w's (already encoded) inbox message to the serving host.
  void push_message(std::size_t worker);
  void on_push_arrived(std::size_t worker, std::uint64_t epoch);
  void aggregate_and_broadcast();
  /// Schedule the model broadcast on the serving host.
  void broadcast();
  /// Serving host changed (crash or restart): catch the new host up and
  /// re-drive whatever the old host still owed.
  void repoint();
  /// Recompute the GIB keep mask from per-block mean |agg| under the
  /// byte budget (descending importance, always >= 1 block).
  void update_gib_selection();

  KvBspOptions options_;
  kv::FilterPipeline pipeline_;
  kv::TopKFilter* topk_ = nullptr;   // owned by pipeline_
  kv::GibFilter* gib_ = nullptr;     // owned by pipeline_
  std::vector<std::uint8_t> gib_keep_;
  kv::Transport tx_;
  kv::KvStore store_;
  kv::ReplicaTable replica_;
  std::vector<kv::KvMessage> inbox_;
  std::size_t arrived_ = 0;
  std::vector<float> agg_;
  std::uint64_t tel_rounds_ = 0;
  double tel_push_bytes_ = 0.0;
  double last_round_push_bytes_ = 0.0;
  // ---- failover state (identity / all-zero on a healthy run). The model
  // is one logical shard spanning the cluster's PS hosts: primary on host
  // 0, ring-successor backup. ----
  std::size_t serving_ = 0;                 // host serving the shard
  std::uint64_t epoch_ = 0;                 // fences stale arrivals
  std::vector<std::uint8_t> pushed_;        // per worker, this round
  std::vector<std::uint8_t> arrived_bits_;  // per worker, this round
  std::vector<std::uint8_t> resp_pending_;  // per worker
  std::uint8_t resp_outstanding_ = 0;       // aggregated, not broadcast
  std::size_t resp_host_ = 0;               // host the broadcast queued on
};

}  // namespace osp::sync
