// DSSP — Dynamic Stale Synchronous Parallel (Zhao et al., ICDCS'19; §7).
//
// SSP with an adaptive staleness threshold: instead of a fixed bound s,
// DSSP keeps the bound within [s_min, s_max] and adapts it to the observed
// iteration spread — widening while workers progress smoothly (throughput)
// and tightening when the spread grows (accuracy). This implementation
// adapts once per epoch from the max-min iteration gap observed since the
// last adaptation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class DsspSync : public runtime::SyncModel {
 public:
  DsspSync(std::size_t min_bound, std::size_t max_bound);

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_epoch_complete(std::size_t epoch, double mean_loss) override;

  [[nodiscard]] std::size_t current_bound() const { return bound_; }

  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return parked_.empty(); }

 private:
  void maybe_release(std::size_t worker);
  void release_parked();

  std::size_t min_bound_;
  std::size_t max_bound_;
  std::size_t bound_;
  std::size_t max_spread_seen_ = 0;
  std::vector<std::size_t> parked_;
  std::uint64_t tel_rounds_ = 0;  ///< per-worker exchanges (telemetry)
};

}  // namespace osp::sync
