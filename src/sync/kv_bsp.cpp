#include "sync/kv_bsp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "runtime/engine.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

KvBspSync::KvBspSync(KvBspOptions options) : options_(options) {
  // Stage order is the composition contract: key addressing first, then
  // the block-level GIB projection, then element-level top-k over the
  // survivors, then the int8 value transform (quantizer composes after
  // the sparsifier — it divides whatever value bytes remain).
  if (options_.key_cache) {
    pipeline_.add(std::make_unique<kv::KeyCacheFilter>());
  }
  if (options_.gib_keep_fraction > 0.0 && options_.gib_keep_fraction < 1.0) {
    gib_ = static_cast<kv::GibFilter*>(&pipeline_.add(
        std::make_unique<kv::GibFilter>(options_.gib_attach_bitmap)));
  }
  if (options_.topk_keep_fraction > 0.0 &&
      options_.topk_keep_fraction < 1.0) {
    topk_ = static_cast<kv::TopKFilter*>(
        &pipeline_.add(std::make_unique<kv::TopKFilter>(
            kv::CompressionMode::TopK, options_.topk_keep_fraction,
            options_.topk_seed)));
  }
  if (options_.quantize_int8) {
    pipeline_.add(std::make_unique<kv::QuantizeInt8Filter>());
  }
}

std::string KvBspSync::name() const {
  return pipeline_.size() == 0 ? "KvBSP" : "KvBSP[" + pipeline_.name() + "]";
}

void KvBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  {
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> numels;
    for (const auto& b : eng.blocks()) {
      offsets.push_back(b.offset);
      numels.push_back(b.numel);
    }
    store_.init(offsets, numels);
  }
  if (gib_ != nullptr) {
    std::vector<kv::GibFilter::Block> blocks;
    for (const auto& b : eng.blocks()) {
      // Self-consistent proxy scale: a block costs its own fp32 bytes.
      blocks.push_back({b.offset, b.numel, 4.0 * (double)b.numel});
    }
    gib_->set_blocks(std::move(blocks));
    gib_keep_.assign(eng.num_blocks(), 1);  // round 1: everything travels
    gib_->set_selection(gib_keep_);
  }
  inbox_.assign(eng.num_workers(), kv::KvMessage{});
  for (kv::KvMessage& m : inbox_) {
    m.values.assign(eng.global_params().size(), 0.0f);
  }
  arrived_ = 0;
  tel_rounds_ = 0;
  tel_push_bytes_ = 0.0;
  last_round_push_bytes_ = 0.0;
  {
    // One logical shard (primary host 0) spanning every PS host; the
    // ring-successor rule picks the backup. Catch-up prices a key at its
    // fp32 bytes — the model's one self-consistent byte scale.
    kv::Partition part;
    part.num_shards = eng.cluster().num_ps();
    part.owner.assign(eng.num_blocks(), 0);
    std::vector<double> key_bytes;
    for (const auto& b : eng.blocks()) {
      key_bytes.push_back(4.0 * static_cast<double>(b.numel));
    }
    replica_.init(part, key_bytes);
  }
  serving_ = 0;
  epoch_ = 0;
  pushed_.assign(eng.num_workers(), 0);
  arrived_bits_.assign(eng.num_workers(), 0);
  resp_pending_.assign(eng.num_workers(), 0);
  resp_outstanding_ = 0;
  resp_host_ = 0;
}

void KvBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  kv::KvMessage& m = inbox_[worker];
  m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker), tel_rounds_ + 1,
          store_.key_range());
  util::copy(grad, m.values);
  m.dense_numel = grad.size();
  m.dense_value_bytes = m.value_bytes =
      4.0 * static_cast<double>(grad.size());
  pipeline_.encode(m);
  tel_push_bytes_ += m.wire_bytes();
  pushed_[worker] = 1;
  resp_pending_[worker] = 1;
  push_message(worker);
}

void KvBspSync::push_message(std::size_t worker) {
  const std::size_t host = serving_;
  // Whole chain down: the push stays recorded in pushed_ and is issued
  // when a restart repoints the shard.
  if (host == kv::ReplicaTable::npos) return;
  // The epoch fences deliveries against a failover: a flow addressed to a
  // host that lost the shard in the meantime is void on arrival.
  const std::uint64_t epoch = epoch_;
  tx_.push(worker, host, inbox_[worker], /*owned=*/false,
           [this, worker, epoch] { on_push_arrived(worker, epoch); });
}

void KvBspSync::on_push_arrived(std::size_t worker, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // landed at a deposed host
  arrived_bits_[worker] = 1;
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void KvBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    // Symmetry rule: in-memory delivery kept the dense receiver view, so
    // decode is a structural no-op — the PS trains on what a decode of
    // the serialized compact form would reproduce.
    pipeline_.decode(inbox_[w]);
    util::axpy(scale, inbox_[w].values, agg_);
  }
  e.apply_global_step(agg_);
  store_.bump_all();
  for (std::size_t b = 0; b < e.num_blocks(); ++b) {
    const auto k = static_cast<kv::Key>(b);
    // Async replication trails the apply by one update per segment.
    replica_.note_update(k, store_.version(k));
  }
  std::fill(pushed_.begin(), pushed_.end(), std::uint8_t{0});
  std::fill(arrived_bits_.begin(), arrived_bits_.end(), std::uint8_t{0});
  update_gib_selection();
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = tel_push_bytes_;
  rec.replica_lag = replica_.lag(store_);
  last_round_push_bytes_ = tel_push_bytes_;
  tel_push_bytes_ = 0.0;
  resp_outstanding_ = 1;
  broadcast();
}

void KvBspSync::broadcast() {
  runtime::Engine& e = eng();
  const std::size_t host = serving_;
  if (host == kv::ReplicaTable::npos) return;  // re-driven at repoint
  resp_host_ = host;
  // Dense broadcast of the refreshed model (proxy scale).
  const double bytes = 4.0 * static_cast<double>(e.global_params().size());
  e.ps_submit(
      e.ps_apply_delay(bytes, 3.0),
      [this, bytes, host] {
        runtime::Engine& en = eng();
        resp_outstanding_ = 0;
        kv::KvMessage resp;
        resp.begin(kv::Op::kPullResponse, static_cast<std::uint32_t>(host),
                   tel_rounds_, store_.key_range());
        store_.stamp_versions(resp);
        resp.set_accounting(bytes);
        for (std::size_t w = 0; w < en.num_workers(); ++w) {
          if (resp_pending_[w] == 0) continue;
          tx_.respond(w, host, resp, /*owned=*/false, [this, w] {
            runtime::Engine& e2 = eng();
            // Duplicate delivery after a failover re-broadcast: the first
            // copy already installed the (identical, version-stamped)
            // model.
            if (resp_pending_[w] == 0) return;
            resp_pending_[w] = 0;
            util::copy(e2.global_params(), e2.worker_params(w));
            e2.finish_sync(w);
          });
        }
      },
      host);
}

void KvBspSync::on_ps_crashed(std::size_t ps) {
  replica_.set_alive(ps, false);
  if (serving_ == ps) repoint();
}

void KvBspSync::on_ps_restarted(std::size_t ps) {
  replica_.set_alive(ps, true);
  if (replica_.serving(0) != serving_) repoint();
}

void KvBspSync::repoint() {
  runtime::Engine& e = eng();
  const std::size_t target = replica_.serving(0);
  if (target == serving_) return;
  serving_ = target;
  ++epoch_;  // arrivals addressed to the deposed host are void
  if (target == kv::ReplicaTable::npos) return;  // wait for a restart
  // Version-predicate catch-up: ship exactly the segments whose tail
  // update had not reached the replica, and charge the new host's queue.
  const double shipped = replica_.catch_up(0, store_);
  e.record_ps_promotion(shipped);
  {
    runtime::SyncTelemetry& prec = e.telemetry_round(tel_rounds_ + 1);
    ++prec.promotions;
    prec.catch_up_bytes += shipped;
  }
  if (shipped > 0.0) {
    e.ps_submit(e.ps_apply_delay(shipped, 1.0), [] {}, target);
  }
  // An aggregated round whose broadcast died with the old host's queue is
  // re-broadcast from the new host — never re-applied (the store versions
  // were already bumped by the one aggregation).
  if (resp_outstanding_ != 0 && !e.ps_alive(resp_host_)) broadcast();
  // Whatever the old host had collected for the open round is gone:
  // workers that already pushed re-send their encoded inbox message to
  // the new host (in-flight flows to the old host are fenced by the
  // epoch bump). The re-send is real traffic, so it is re-charged.
  arrived_ = 0;
  std::fill(arrived_bits_.begin(), arrived_bits_.end(), std::uint8_t{0});
  for (std::size_t w = 0; w < e.num_workers(); ++w) {
    if (pushed_[w] != 0) {
      tel_push_bytes_ += inbox_[w].wire_bytes();
      push_message(w);
    }
  }
}

void KvBspSync::update_gib_selection() {
  if (gib_ == nullptr) return;
  runtime::Engine& e = eng();
  const std::size_t nb = e.num_blocks();
  // Density-normalized magnitude: mean |agg| per block.
  std::vector<double> importance(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    const auto& info = e.blocks()[b];
    double sum = 0.0;
    for (std::size_t i = info.offset; i < info.offset + info.numel; ++i) {
      sum += std::abs(static_cast<double>(agg_[i]));
    }
    importance[b] = info.numel > 0 ? sum / static_cast<double>(info.numel)
                                   : 0.0;
  }
  std::vector<std::size_t> order(nb);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return importance[a] > importance[b];
                   });
  double total = 0.0;
  for (const auto& blk : gib_->blocks()) total += blk.wire_bytes;
  const double budget = options_.gib_keep_fraction * total;
  gib_keep_.assign(nb, 0);
  double kept = 0.0;
  for (std::size_t i = 0; i < nb; ++i) {
    const std::size_t b = order[i];
    if (i > 0 && kept + gib_->blocks()[b].wire_bytes > budget) continue;
    gib_keep_[b] = 1;
    kept += gib_->blocks()[b].wire_bytes;
  }
  gib_->set_selection(gib_keep_);
}

void KvBspSync::save_state(util::serde::Writer& w) const {
  w.u8(2);  // KvBSP state version (2: PS replication)
  w.u64(arrived_);
  pipeline_.save_state(w);
  w.bytes(gib_keep_);
  w.u64(serving_);
  w.u64(epoch_);
  replica_.save_state(w);
  store_.save_state(w);
}

void KvBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 2, "unsupported KvBSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  pipeline_.load_state(r);
  gib_keep_ = r.bytes();
  if (gib_ != nullptr) {
    OSP_CHECK(gib_keep_.size() == eng().num_blocks(),
              "KvBSP checkpoint GIB selection size mismatch");
    gib_->set_selection(gib_keep_);
  }
  serving_ = static_cast<std::size_t>(r.u64());
  epoch_ = r.u64();
  replica_.load_state(r);
  store_.load_state(r);
  // In-flight round bookkeeping is empty by construction at the drain
  // barrier the snapshot was taken at.
  std::fill(pushed_.begin(), pushed_.end(), std::uint8_t{0});
  std::fill(arrived_bits_.begin(), arrived_bits_.end(), std::uint8_t{0});
  std::fill(resp_pending_.begin(), resp_pending_.end(), std::uint8_t{0});
  resp_outstanding_ = 0;
}

bool KvBspSync::drained() const { return arrived_ == 0; }

}  // namespace osp::sync
