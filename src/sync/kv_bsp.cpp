#include "sync/kv_bsp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "runtime/engine.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

KvBspSync::KvBspSync(KvBspOptions options) : options_(options) {
  // Stage order is the composition contract: key addressing first, then
  // the block-level GIB projection, then element-level top-k over the
  // survivors, then the int8 value transform (quantizer composes after
  // the sparsifier — it divides whatever value bytes remain).
  if (options_.key_cache) {
    pipeline_.add(std::make_unique<kv::KeyCacheFilter>());
  }
  if (options_.gib_keep_fraction > 0.0 && options_.gib_keep_fraction < 1.0) {
    gib_ = static_cast<kv::GibFilter*>(&pipeline_.add(
        std::make_unique<kv::GibFilter>(options_.gib_attach_bitmap)));
  }
  if (options_.topk_keep_fraction > 0.0 &&
      options_.topk_keep_fraction < 1.0) {
    topk_ = static_cast<kv::TopKFilter*>(
        &pipeline_.add(std::make_unique<kv::TopKFilter>(
            kv::CompressionMode::TopK, options_.topk_keep_fraction,
            options_.topk_seed)));
  }
  if (options_.quantize_int8) {
    pipeline_.add(std::make_unique<kv::QuantizeInt8Filter>());
  }
}

std::string KvBspSync::name() const {
  return pipeline_.size() == 0 ? "KvBSP" : "KvBSP[" + pipeline_.name() + "]";
}

void KvBspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  tx_.bind(eng);
  {
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> numels;
    for (const auto& b : eng.blocks()) {
      offsets.push_back(b.offset);
      numels.push_back(b.numel);
    }
    store_.init(offsets, numels);
  }
  if (gib_ != nullptr) {
    std::vector<kv::GibFilter::Block> blocks;
    for (const auto& b : eng.blocks()) {
      // Self-consistent proxy scale: a block costs its own fp32 bytes.
      blocks.push_back({b.offset, b.numel, 4.0 * (double)b.numel});
    }
    gib_->set_blocks(std::move(blocks));
    gib_keep_.assign(eng.num_blocks(), 1);  // round 1: everything travels
    gib_->set_selection(gib_keep_);
  }
  inbox_.assign(eng.num_workers(), kv::KvMessage{});
  for (kv::KvMessage& m : inbox_) {
    m.values.assign(eng.global_params().size(), 0.0f);
  }
  arrived_ = 0;
  tel_rounds_ = 0;
  tel_push_bytes_ = 0.0;
  last_round_push_bytes_ = 0.0;
}

void KvBspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  auto grad = e.worker_gradient(worker);
  kv::KvMessage& m = inbox_[worker];
  m.begin(kv::Op::kPush, static_cast<std::uint32_t>(worker), tel_rounds_ + 1,
          store_.key_range());
  util::copy(grad, m.values);
  m.dense_numel = grad.size();
  m.dense_value_bytes = m.value_bytes =
      4.0 * static_cast<double>(grad.size());
  pipeline_.encode(m);
  tel_push_bytes_ += m.wire_bytes();
  tx_.push(worker, 0, m, /*owned=*/false, [this] { on_push_arrived(); });
}

void KvBspSync::on_push_arrived() {
  ++arrived_;
  if (arrived_ == eng().num_workers()) {
    arrived_ = 0;
    aggregate_and_broadcast();
  }
}

void KvBspSync::aggregate_and_broadcast() {
  runtime::Engine& e = eng();
  const std::size_t n = e.num_workers();
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t w = 0; w < n; ++w) {
    // Symmetry rule: in-memory delivery kept the dense receiver view, so
    // decode is a structural no-op — the PS trains on what a decode of
    // the serialized compact form would reproduce.
    pipeline_.decode(inbox_[w]);
    util::axpy(scale, inbox_[w].values, agg_);
  }
  e.apply_global_step(agg_);
  store_.bump_all();
  update_gib_selection();
  auto& rec = record_full_round(++tel_rounds_, n);
  rec.important_bytes = tel_push_bytes_;
  last_round_push_bytes_ = tel_push_bytes_;
  tel_push_bytes_ = 0.0;
  // Dense broadcast of the refreshed model (proxy scale).
  const double bytes = 4.0 * static_cast<double>(e.global_params().size());
  e.ps_submit(e.ps_apply_delay(bytes, 3.0), [this, bytes] {
    runtime::Engine& en = eng();
    kv::KvMessage resp;
    resp.begin(kv::Op::kPullResponse, 0, tel_rounds_, store_.key_range());
    store_.stamp_versions(resp);
    resp.set_accounting(bytes);
    for (std::size_t w = 0; w < en.num_workers(); ++w) {
      tx_.respond(w, 0, resp, /*owned=*/false, [this, w] {
        runtime::Engine& e2 = eng();
        util::copy(e2.global_params(), e2.worker_params(w));
        e2.finish_sync(w);
      });
    }
  });
}

void KvBspSync::update_gib_selection() {
  if (gib_ == nullptr) return;
  runtime::Engine& e = eng();
  const std::size_t nb = e.num_blocks();
  // Density-normalized magnitude: mean |agg| per block.
  std::vector<double> importance(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    const auto& info = e.blocks()[b];
    double sum = 0.0;
    for (std::size_t i = info.offset; i < info.offset + info.numel; ++i) {
      sum += std::abs(static_cast<double>(agg_[i]));
    }
    importance[b] = info.numel > 0 ? sum / static_cast<double>(info.numel)
                                   : 0.0;
  }
  std::vector<std::size_t> order(nb);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return importance[a] > importance[b];
                   });
  double total = 0.0;
  for (const auto& blk : gib_->blocks()) total += blk.wire_bytes;
  const double budget = options_.gib_keep_fraction * total;
  gib_keep_.assign(nb, 0);
  double kept = 0.0;
  for (std::size_t i = 0; i < nb; ++i) {
    const std::size_t b = order[i];
    if (i > 0 && kept + gib_->blocks()[b].wire_bytes > budget) continue;
    gib_keep_[b] = 1;
    kept += gib_->blocks()[b].wire_bytes;
  }
  gib_->set_selection(gib_keep_);
}

void KvBspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // KvBSP state version
  w.u64(arrived_);
  pipeline_.save_state(w);
  w.bytes(gib_keep_);
  store_.save_state(w);
}

void KvBspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported KvBSP state version");
  arrived_ = static_cast<std::size_t>(r.u64());
  pipeline_.load_state(r);
  gib_keep_ = r.bytes();
  if (gib_ != nullptr) {
    OSP_CHECK(gib_keep_.size() == eng().num_blocks(),
              "KvBSP checkpoint GIB selection size mismatch");
    gib_->set_selection(gib_keep_);
  }
  store_.load_state(r);
}

bool KvBspSync::drained() const { return arrived_ == 0; }

}  // namespace osp::sync
