// Bulk Synchronous Parallel (§2.1.2).
//
// Every iteration: all workers push their full gradient to the PS
// (simultaneously — the incast), the PS averages them and takes one
// optimizer step, then broadcasts the updated parameters back; workers
// resume only after receiving them (global barrier).
#pragma once

#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class BspSync : public runtime::SyncModel {
 public:
  [[nodiscard]] std::string name() const override { return "BSP"; }
  void on_gradient_ready(std::size_t worker) override;

 private:
  void on_push_arrived();
  void aggregate_and_broadcast();

  std::size_t arrived_ = 0;
  std::vector<float> agg_;
};

}  // namespace osp::sync
