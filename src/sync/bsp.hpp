// Bulk Synchronous Parallel (§2.1.2).
//
// Every iteration: all workers push their full gradient to the PS
// (simultaneously — the incast), the PS averages them and takes one
// optimizer step, then broadcasts the updated parameters back; workers
// resume only after receiving them (global barrier).
//
// Survival contract (fault injection): rounds are tagged so late pushes
// are recognized. A crashed worker stops gating the barrier (its
// contribution is kept if it already arrived). With a configured
// rs_timeout_s the round closes after the deadline with the N−k arrivals
// it has (weights renormalized); healthy workers whose push missed the
// round — stalled, dropped, or simply late — are resynced with a full
// parameter pull so the cluster never deadlocks.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sync_model.hpp"

namespace osp::sync {

class BspSync : public runtime::SyncModel {
 public:
  BspSync() = default;
  explicit BspSync(runtime::SyncTimeouts timeouts) { set_timeouts(timeouts); }

  [[nodiscard]] std::string name() const override { return "BSP"; }
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_worker_crashed(std::size_t worker) override;
  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override;

  /// Barrier rounds closed so far (SyncSwitch seeds ASP's telemetry round
  /// numbering from this at the switch point).
  [[nodiscard]] std::uint64_t rounds_closed() const { return round_; }

 private:
  void arm_round_timer();
  void on_push_arrived(std::uint64_t round, std::size_t worker);
  void maybe_close_round();
  void close_round();
  void catch_up(std::size_t worker);

  std::uint64_t round_ = 0;        ///< rounds closed so far; collecting
                                   ///< round id is round_ + 1
  std::vector<bool> arrived_;      ///< push landed this round
  std::size_t arrived_count_ = 0;
  std::vector<bool> awaiting_;     ///< pushed, no response delivered yet
  std::vector<std::uint64_t> awaiting_round_;  ///< round of that push
  bool timer_armed_ = false;
  bool survival_ = false;  ///< faults/timeouts in play (see attach)
  std::vector<float> agg_;
};

}  // namespace osp::sync
