// Sync-Switch (Li et al., ICDCS'21 — §2.2.1).
//
// Trains with BSP during the early epochs (when ASP's stale values can trap
// the model in poor regions) and switches to ASP afterwards for throughput.
// The switch point is a fixed epoch fraction here (the paper the OSP
// authors cite notes that *finding* the switch point is the scheme's
// practical difficulty).
#pragma once

#include "runtime/sync_model.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"

namespace osp::sync {

class SyncSwitchSync : public runtime::SyncModel {
 public:
  /// Switch from BSP to ASP once `switch_fraction` of max_epochs complete.
  explicit SyncSwitchSync(double switch_fraction = 0.3);

  [[nodiscard]] std::string name() const override;
  void attach(runtime::Engine& eng) override;
  void on_gradient_ready(std::size_t worker) override;
  void on_epoch_complete(std::size_t epoch, double mean_loss) override;

  [[nodiscard]] bool switched() const { return switched_; }

  void save_state(util::serde::Writer& w) const override;
  void load_state(util::serde::Reader& r) override;
  [[nodiscard]] bool drained() const override { return bsp_.drained(); }

 private:
  double switch_fraction_;
  std::size_t switch_epoch_ = 0;
  bool switched_ = false;
  BspSync bsp_;
  AspSync asp_;
};

}  // namespace osp::sync
