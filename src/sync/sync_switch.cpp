#include "sync/sync_switch.hpp"

#include <cmath>

#include "runtime/engine.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp::sync {

SyncSwitchSync::SyncSwitchSync(double switch_fraction)
    : switch_fraction_(switch_fraction) {
  OSP_CHECK(switch_fraction >= 0.0 && switch_fraction <= 1.0,
            "switch fraction must be in [0, 1]");
}

std::string SyncSwitchSync::name() const {
  return "SyncSwitch(" +
         std::to_string(static_cast<int>(switch_fraction_ * 100)) + "%)";
}

void SyncSwitchSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  bsp_.attach(eng);
  asp_.attach(eng);
  switch_epoch_ = static_cast<std::size_t>(
      std::ceil(switch_fraction_ * static_cast<double>(
                                       eng.config().max_epochs)));
  switched_ = switch_epoch_ == 0;
}

void SyncSwitchSync::on_gradient_ready(std::size_t worker) {
  // Route per current phase. The switch happens on an epoch boundary where
  // BSP's barrier guarantees no worker has an outstanding BSP push, so the
  // two phases never interleave.
  if (switched_) {
    asp_.on_gradient_ready(worker);
  } else {
    bsp_.on_gradient_ready(worker);
  }
}

void SyncSwitchSync::on_epoch_complete(std::size_t epoch,
                                       double /*mean_loss*/) {
  if (!switched_ && epoch >= switch_epoch_) {
    switched_ = true;
    // ASP's telemetry rounds continue BSP's numbering instead of colliding
    // with the records BSP already emitted.
    asp_.seed_round_counter(bsp_.rounds_closed());
  }
}

void SyncSwitchSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // Sync-Switch state version
  w.boolean(switched_);
  bsp_.save_state(w);
  asp_.save_state(w);
}

void SyncSwitchSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported Sync-Switch state version");
  switched_ = r.boolean();
  bsp_.load_state(r);
  asp_.load_state(r);
}

}  // namespace osp::sync
