#include "sync/dssp.hpp"

#include <algorithm>

#include "sync/transfer.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

DsspSync::DsspSync(std::size_t min_bound, std::size_t max_bound)
    : min_bound_(min_bound), max_bound_(max_bound), bound_(max_bound) {
  OSP_CHECK(min_bound <= max_bound, "min bound must not exceed max");
}

std::string DsspSync::name() const {
  return "DSSP(" + std::to_string(min_bound_) + ".." +
         std::to_string(max_bound_) + ")";
}

void DsspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  bound_ = max_bound_;
  max_spread_seen_ = 0;
  parked_.clear();
  tel_rounds_ = 0;
}

void DsspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  transfer(e, e.cluster().route_to_ps(worker), e.model_bytes(),
           [this, worker] {
             runtime::Engine& en = eng();
             en.apply_global_step(en.worker_gradient(worker),
                                  en.worker_weight(worker));
             record_full_round(++tel_rounds_, 1);
             en.ps_submit(en.ps_apply_delay(en.model_bytes(), 3.0),
                          [this, worker] {
                            runtime::Engine& e2 = eng();
                            transfer(e2,
                                     e2.cluster().route_from_ps(worker),
                                     e2.model_bytes(), [this, worker] {
                                       runtime::Engine& e3 = eng();
                                       util::copy(e3.global_params(),
                                                  e3.worker_params(worker));
                                       maybe_release(worker);
                                     });
                          });
           });
}

void DsspSync::maybe_release(std::size_t worker) {
  runtime::Engine& e = eng();
  const std::size_t it = e.worker_iteration(worker);
  const std::size_t min_it = e.min_worker_iteration();
  max_spread_seen_ = std::max(max_spread_seen_, it + 1 - min_it);
  if (it + 1 > min_it + bound_) {
    parked_.push_back(worker);
    return;
  }
  e.finish_sync(worker);
  release_parked();
}

void DsspSync::release_parked() {
  runtime::Engine& e = eng();
  bool progressed = true;
  while (progressed && !parked_.empty()) {
    progressed = false;
    const std::size_t min_it = e.min_worker_iteration();
    for (std::size_t i = 0; i < parked_.size(); ++i) {
      const std::size_t w = parked_[i];
      if (e.worker_iteration(w) + 1 <= min_it + bound_) {
        parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
        e.finish_sync(w);
        progressed = true;
        break;
      }
    }
  }
}

void DsspSync::on_epoch_complete(std::size_t /*epoch*/,
                                 double /*mean_loss*/) {
  // Adapt: if the workers hit the current bound this epoch, tighten to
  // protect accuracy; otherwise relax toward the max for throughput.
  if (max_spread_seen_ >= bound_) {
    bound_ = std::max(min_bound_, bound_ > 0 ? bound_ - 1 : 0);
  } else {
    bound_ = std::min(max_bound_, bound_ + 1);
  }
  max_spread_seen_ = 0;
  release_parked();  // the bound may have widened
}

void DsspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // DSSP state version
  w.u64(min_bound_);
  w.u64(max_bound_);
  w.u64(bound_);
  w.u64(max_spread_seen_);
  w.size_vec(parked_);
}

void DsspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported DSSP state version");
  OSP_CHECK(r.u64() == min_bound_ && r.u64() == max_bound_,
            "DSSP checkpoint bound range mismatch");
  bound_ = static_cast<std::size_t>(r.u64());
  max_spread_seen_ = static_cast<std::size_t>(r.u64());
  parked_ = r.size_vec();
}

}  // namespace osp::sync
