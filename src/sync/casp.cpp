#include "sync/casp.hpp"

#include <algorithm>
#include <map>

#include "sync/transfer.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

std::string CaspSync::name() const {
  return "CASP(g=" + std::to_string(groups_.size()) + ")";
}

void CaspSync::attach(runtime::Engine& eng) {
  SyncModel::attach(eng);
  groups_.clear();
  group_of_.assign(eng.num_workers(), 0);
  // Group by identical speed factor (deterministic order by speed).
  std::map<double, std::vector<std::size_t>> by_speed;
  for (std::size_t w = 0; w < eng.num_workers(); ++w) {
    by_speed[eng.cluster().speed_factor(w)].push_back(w);
  }
  for (auto& [speed, members] : by_speed) {
    (void)speed;
    for (std::size_t w : members) group_of_[w] = groups_.size();
    groups_.push_back(std::move(members));
  }
  arrived_.assign(groups_.size(), 0);
  agg_.assign(eng.global_params().size(), 0.0f);
  tel_rounds_ = 0;
}

void CaspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  const std::size_t group = group_of_[worker];
  transfer(e, e.cluster().route_to_ps(worker), e.model_bytes(),
           [this, group] { on_push_arrived(group); });
}

void CaspSync::on_push_arrived(std::size_t group) {
  if (++arrived_[group] < groups_[group].size()) return;
  arrived_[group] = 0;
  group_aggregate(group);
}

void CaspSync::group_aggregate(std::size_t group) {
  runtime::Engine& e = eng();
  const auto& members = groups_[group];
  // Mean over the group's gradients, applied ASP-style with the group's
  // share of the cluster so per-sample step sizes stay calibrated.
  agg_.assign(e.global_params().size(), 0.0f);
  const float scale = 1.0f / static_cast<float>(members.size());
  for (std::size_t w : members) {
    util::axpy(scale, e.worker_gradient(w), agg_);
  }
  e.apply_global_step(agg_, static_cast<double>(members.size()) /
                                static_cast<double>(e.num_workers()));
  record_full_round(++tel_rounds_, members.size());
  e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this, group] {
    runtime::Engine& en = eng();
    for (std::size_t w : groups_[group]) {
      transfer(en, en.cluster().route_from_ps(w), en.model_bytes(),
               [this, w] {
                 runtime::Engine& e2 = eng();
                 util::copy(e2.global_params(), e2.worker_params(w));
                 e2.finish_sync(w);
               });
    }
  });
}

void CaspSync::save_state(util::serde::Writer& w) const {
  w.u8(1);  // CASP state version
  w.u64(groups_.size());
  w.size_vec(arrived_);
}

void CaspSync::load_state(util::serde::Reader& r) {
  const std::uint8_t version = r.u8();
  OSP_CHECK(version == 1, "unsupported CASP state version");
  OSP_CHECK(r.u64() == groups_.size(),
            "CASP checkpoint group count mismatch");
  arrived_ = r.size_vec();
  OSP_CHECK(arrived_.size() == groups_.size(),
            "CASP checkpoint arrival vector mismatch");
}

bool CaspSync::drained() const {
  return std::all_of(arrived_.begin(), arrived_.end(),
                     [](std::size_t v) { return v == 0; });
}

}  // namespace osp::sync
