#include "sync/asp.hpp"

#include "runtime/engine.hpp"
#include "util/vec_math.hpp"

namespace osp::sync {

void AspSync::on_gradient_ready(std::size_t worker) {
  runtime::Engine& e = eng();
  e.worker_transfer(
      worker, e.cluster().route_to_ps(worker), e.model_bytes(),
      [this, worker] {
        runtime::Engine& en = eng();
        // PS applies this worker's gradient alone, immediately.
        en.apply_global_step(en.worker_gradient(worker),
                             en.worker_weight(worker));
        // Each independent apply is its own telemetry round.
        record_full_round(++tel_rounds_, 1);
        // Each async update costs a full read-gradient/write-params
        // pass through the single-threaded PS loop.
        en.ps_submit(en.ps_apply_delay(en.model_bytes(), 3.0),
                     [this, worker] {
          runtime::Engine& e2 = eng();
          if (!e2.worker_alive(worker)) return;  // restart path re-pulls
          e2.worker_transfer(worker, e2.cluster().route_from_ps(worker),
                             e2.model_bytes(), [this, worker] {
                               runtime::Engine& e3 = eng();
                               if (!e3.worker_alive(worker)) return;
                               util::copy(e3.global_params(),
                                          e3.worker_params(worker));
                               e3.finish_sync(worker);
                             });
        });
      });
}

}  // namespace osp::sync
