#include "models/zoo.hpp"

#include "data/synthetic_image.hpp"
#include "data/synthetic_qa.hpp"
#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/qa_head.hpp"

namespace osp::models {

using data::ImageDatasetConfig;
using data::QaDatasetConfig;
using data::SyntheticImageDataset;
using data::SyntheticQaDataset;
using nn::Sequential;
using runtime::WorkloadSpec;

namespace {

constexpr double kBytesPerParam = 4.0;  // fp32

/// Image-task proxy: two conv stages (full and half resolution, each
/// followed by 2× max-pooling) and an MLP head. Widths are chosen so no
/// single layer block dominates the parameter count — mirroring real
/// ResNet/Inception models whose 50+ layers each hold a few percent of the
/// parameters, which is what gives the GIB useful granularity.
Sequential build_cnn(std::uint64_t seed, std::size_t in_c, std::size_t hw,
                     std::vector<std::size_t> stage1_channels,
                     std::vector<std::size_t> stage2_channels,
                     std::vector<std::size_t> hidden, std::size_t classes) {
  util::Rng rng(seed);
  Sequential m;
  std::size_t c = in_c;
  std::size_t side = hw;
  int li = 0;
  auto add_convs = [&](const std::vector<std::size_t>& channels) {
    for (std::size_t oc : channels) {
      m.emplace<nn::Conv2d>("conv" + std::to_string(li), c, oc, side, side,
                            /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng);
      m.emplace<nn::ReLU>("relu_c" + std::to_string(li));
      c = oc;
      ++li;
    }
  };
  add_convs(stage1_channels);
  m.emplace<nn::MaxPool2d>("pool0", c, side, side, 2, 2);
  side /= 2;
  add_convs(stage2_channels);
  m.emplace<nn::MaxPool2d>("pool1", c, side, side, 2, 2);
  side /= 2;
  m.emplace<nn::Flatten>("flatten");
  std::size_t features = c * side * side;
  li = 0;
  for (std::size_t h : hidden) {
    m.emplace<nn::Linear>("fc" + std::to_string(li), features, h, rng);
    m.emplace<nn::LayerNorm>("ln" + std::to_string(li), h);
    m.emplace<nn::ReLU>("relu_f" + std::to_string(li));
    features = h;
    ++li;
  }
  m.emplace<nn::Linear>("head", features, classes, rng);
  return m;
}

/// NLP-task proxy: embedding, a stack of self-attention encoder blocks, and
/// a BERT-style per-position span head. Blocks are roughly equal-sized
/// (embedding table ≈ one attention block), matching BERT's repeated-layer
/// parameter distribution.
Sequential build_qa(std::uint64_t seed, std::size_t vocab, std::size_t dim,
                    std::size_t attn_layers) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<nn::Embedding>("embed", vocab, dim, rng);
  for (std::size_t i = 0; i < attn_layers; ++i) {
    m.emplace<nn::SelfAttention>("attn" + std::to_string(i), dim, rng);
  }
  m.emplace<nn::SpanHead>("span_head", dim, rng);
  return m;
}

std::shared_ptr<const SyntheticImageDataset> image_data(
    std::size_t examples, std::size_t classes, std::size_t hw,
    double separation, double noise, std::uint64_t task_seed,
    std::uint64_t noise_seed) {
  ImageDatasetConfig cfg;
  cfg.num_examples = examples;
  cfg.num_classes = classes;
  cfg.channels = 3;
  cfg.height = hw;
  cfg.width = hw;
  cfg.separation = separation;
  cfg.noise = noise;
  cfg.seed = task_seed;
  cfg.noise_seed = noise_seed;
  return std::make_shared<SyntheticImageDataset>(cfg);
}

}  // namespace

WorkloadSpec resnet50_cifar10() {
  WorkloadSpec spec;
  spec.name = "ResNet50/CIFAR10";
  spec.model_name = "ResNet50";
  spec.dataset_name = "CIFAR10";
  spec.real_param_bytes = 25.56e6 * kBytesPerParam;
  spec.flops_per_sample = 12.3e9;  // 4.1 GF forward × 3 (FP+BP)
  spec.batch_size = 64;
  spec.gib_overhead_fraction = 0.05;
  spec.build_model = [](std::uint64_t seed) {
    return build_cnn(seed, 3, 8, {10, 14}, {18, 18}, {64, 64, 56, 48}, 10);
  };
  spec.train = image_data(2048, 10, 8, 0.9, 1.0, 0xc1fa, 0x101);
  spec.eval = image_data(512, 10, 8, 0.9, 1.0, 0xc1fa, 0x102);
  spec.target_metric = 0.85;
  spec.throughput_unit = "images/s";
  return spec;
}

WorkloadSpec vgg16_cifar10() {
  WorkloadSpec spec;
  spec.name = "VGG16/CIFAR10";
  spec.model_name = "VGG16";
  spec.dataset_name = "CIFAR10";
  spec.real_param_bytes = 138.36e6 * kBytesPerParam;
  spec.flops_per_sample = 46.5e9;  // 15.5 GF forward × 3
  spec.batch_size = 64;
  spec.gib_overhead_fraction = 0.08;  // highest in Fig. 9
  spec.build_model = [](std::uint64_t seed) {
    // VGG proxy: fatter classifier head (VGG's parameters are FC-heavy).
    return build_cnn(seed, 3, 8, {10, 12}, {16, 16}, {96, 88, 80, 72, 64}, 10);
  };
  spec.train = image_data(2048, 10, 8, 0.9, 1.0, 0x6660, 0x201);
  spec.eval = image_data(512, 10, 8, 0.9, 1.0, 0x6660, 0x202);
  spec.target_metric = 0.85;
  spec.throughput_unit = "images/s";
  return spec;
}

WorkloadSpec inceptionv3_cifar100() {
  WorkloadSpec spec;
  spec.name = "InceptionV3/CIFAR100";
  spec.model_name = "InceptionV3";
  spec.dataset_name = "CIFAR100";
  spec.real_param_bytes = 23.8e6 * kBytesPerParam;
  spec.flops_per_sample = 17.1e9;  // 5.7 GF forward × 3 (299×299 input)
  spec.batch_size = 64;
  spec.gib_overhead_fraction = 0.03;  // lowest in Fig. 9
  spec.build_model = [](std::uint64_t seed) {
    // Inception proxy: wider conv trunk, deeper head. 50-class stand-in
    // for CIFAR-100 (documented in EXPERIMENTS.md).
    return build_cnn(seed, 3, 8, {14, 14, 14}, {20, 20}, {88, 72, 64}, 50);
  };
  spec.train = image_data(4096, 50, 8, 1.25, 1.0, 0x1ce0, 0x301);
  spec.eval = image_data(1024, 50, 8, 1.25, 1.0, 0x1ce0, 0x302);
  spec.target_metric = 0.70;
  spec.throughput_unit = "images/s";
  return spec;
}

WorkloadSpec resnet101_imagenet() {
  WorkloadSpec spec;
  spec.name = "ResNet101/ImageNet1K";
  spec.model_name = "ResNet101";
  spec.dataset_name = "ImageNet1K";
  spec.real_param_bytes = 44.55e6 * kBytesPerParam;
  spec.flops_per_sample = 23.4e9;  // 7.8 GF forward × 3
  spec.batch_size = 64;
  spec.gib_overhead_fraction = 0.06;
  spec.build_model = [](std::uint64_t seed) {
    // Deep proxy: many narrow layers (ResNet101's depth), 100-class
    // stand-in for ImageNet1K.
    return build_cnn(seed, 3, 8, {10, 12, 12}, {16, 16, 16},
                     {80, 72, 72, 64, 64, 56}, 100);
  };
  spec.train = image_data(6144, 100, 8, 1.7, 1.0, 0x1aa0, 0x401);
  spec.eval = image_data(1536, 100, 8, 1.7, 1.0, 0x1aa0, 0x402);
  spec.target_metric = 0.65;
  spec.throughput_unit = "images/s";
  return spec;
}

WorkloadSpec bertbase_squad() {
  WorkloadSpec spec;
  spec.name = "BERTbase/SQUAD1.1";
  spec.model_name = "BERTbase";
  spec.dataset_name = "SQUAD1.1";
  spec.real_param_bytes = 110.0e6 * kBytesPerParam;
  spec.flops_per_sample = 253.0e9;  // 2·params·384 tokens × 3 (FP+BP)
  spec.batch_size = 12;
  spec.gib_overhead_fraction = 0.04;
  spec.is_qa = true;
  spec.build_model = [](std::uint64_t seed) {
    return build_qa(seed, /*vocab=*/96, /*dim=*/24, /*attn_layers=*/4);
  };
  QaDatasetConfig train_cfg;
  train_cfg.num_examples = 1536;
  train_cfg.seq_len = 16;
  train_cfg.vocab = 96;
  train_cfg.answer_vocab = 12;
  train_cfg.max_answer_len = 4;
  train_cfg.seed = 0xbe51;
  QaDatasetConfig eval_cfg = train_cfg;
  eval_cfg.num_examples = 384;
  eval_cfg.seed = 0xbe52;
  spec.train = std::make_shared<SyntheticQaDataset>(train_cfg);
  spec.eval = std::make_shared<SyntheticQaDataset>(eval_cfg);
  spec.target_metric = 0.75;  // F1
  spec.throughput_unit = "QAs/s";
  return spec;
}

std::vector<WorkloadSpec> paper_workloads() {
  return {resnet50_cifar10(), vgg16_cifar10(), inceptionv3_cifar100(),
          resnet101_imagenet(), bertbase_squad()};
}

WorkloadSpec tiny_mlp() {
  WorkloadSpec spec;
  spec.name = "TinyMLP/Gauss4";
  spec.model_name = "TinyMLP";
  spec.dataset_name = "Gauss4";
  spec.real_param_bytes = 1.0e6 * kBytesPerParam;
  spec.flops_per_sample = 1.0e9;
  spec.batch_size = 16;
  spec.gib_overhead_fraction = 0.05;
  spec.build_model = [](std::uint64_t seed) {
    util::Rng rng(seed);
    Sequential m;
    m.emplace<nn::Flatten>("flatten");
    m.emplace<nn::Linear>("fc0", 3 * 4 * 4, 32, rng);
    m.emplace<nn::ReLU>("relu0");
    m.emplace<nn::Linear>("fc1", 32, 16, rng);
    m.emplace<nn::ReLU>("relu1");
    m.emplace<nn::Linear>("head", 16, 4, rng);
    return m;
  };
  spec.train = image_data(512, 4, 4, 1.5, 1.0, 0x7e57, 0x501);
  spec.eval = image_data(128, 4, 4, 1.5, 1.0, 0x7e57, 0x502);
  spec.target_metric = 0.9;
  return spec;
}

}  // namespace osp::models
