// The workload zoo: the paper's five evaluation workloads (§5.1.2), each a
// WorkloadSpec pairing the real model's timing metadata (parameter bytes,
// FP+BP FLOPs per sample, the paper's batch size) with a small proxy
// trainable task (see workload.hpp for why this preserves the experiments'
// shape). A tiny MLP workload is provided for unit tests.
#pragma once

#include <vector>

#include "runtime/workload.hpp"

namespace osp::models {

/// ResNet50 on CIFAR-10 (batch 64). 25.6 M params, ~12.3 GFLOPs/sample.
[[nodiscard]] runtime::WorkloadSpec resnet50_cifar10();

/// VGG16 on CIFAR-10 (batch 64). 138.4 M params — the most
/// communication-bound workload, where OSP's win is largest.
[[nodiscard]] runtime::WorkloadSpec vgg16_cifar10();

/// InceptionV3 on CIFAR-100 (batch 64). 23.8 M params.
[[nodiscard]] runtime::WorkloadSpec inceptionv3_cifar100();

/// ResNet101 on ImageNet1K (batch 64). 44.5 M params.
[[nodiscard]] runtime::WorkloadSpec resnet101_imagenet();

/// BERTbase fine-tuned on SQuAD1.1 (batch 12). 110 M params; the paper
/// reports throughput in QAs per 10 s.
[[nodiscard]] runtime::WorkloadSpec bertbase_squad();

/// All five paper workloads in the paper's presentation order.
[[nodiscard]] std::vector<runtime::WorkloadSpec> paper_workloads();

/// A minimal fast workload for unit/integration tests: small MLP on a
/// 4-class Gaussian task, tiny dataset.
[[nodiscard]] runtime::WorkloadSpec tiny_mlp();

}  // namespace osp::models
