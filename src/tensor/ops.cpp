#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define OSP_GEMM_X86_DISPATCH 1
#endif

namespace osp::tensor {

namespace {

// ---------------------------------------------------------------------------
// Blocked GEMM.
//
// All three matmul orientations route through one cache-blocked,
// register-tiled kernel (BLIS-style): A and B are repacked into contiguous
// panels (packing absorbs the transposed orientations), the inner loop
// computes a kMR×kNR register tile, and K is cut into kc panels sized to
// keep both packed operands cache-resident.
//
// Numerical contract: every C element is produced by ONE accumulator that
// adds a[i,p]*b[p,j] terms in ascending p, seeded from C between kc panels.
// That is exactly the order of the straight-loop kernels this replaced, so
// results are bit-identical to them and independent of both the blocking
// parameters and the thread count (threads partition M, never K).
// ---------------------------------------------------------------------------

// Register tile. 4×8 keeps the accumulator tile plus one A broadcast and
// two B vectors inside 16 xmm registers on baseline x86-64.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;
// Cache blocking: packed B panel (kKC×kNC) ~2 MB streams from L3, each
// packed A strip (kMR×kKC) ~8 KB streams from L1.
constexpr std::size_t kKC = 512;
constexpr std::size_t kNC = 1024;

// Parallelizing or packing tiny matmuls costs more than it saves.
constexpr std::size_t kMinFlopsPerChunk = 262144;
constexpr std::size_t kSmallGemmElems = 16384;  // m*n*k below: naive inline

enum class Trans { N, T };

// ---------------------------------------------------------------------------
// Micro-kernel: rank-kl update of one kMR×kNR accumulator tile from packed
// panels. `ap` is kl×kMR (column of A strips), `bp` is kl×kNR, `acc` is the
// row-major kMR×kNR tile. Dispatched at runtime: on AVX2 hardware each tile
// row is one 8-lane vector. Both variants perform the identical sequence of
// IEEE mul-then-add per element (lanes are independent j columns; k stays
// serial, and FMA is deliberately NOT used because fusing would change
// rounding), so results are bit-identical across the dispatch.
// ---------------------------------------------------------------------------

void micro_kernel_portable(const float* __restrict ap,
                           const float* __restrict bp, std::size_t kl,
                           float* __restrict acc) {
  for (std::size_t p = 0; p < kl; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (std::size_t ii = 0; ii < kMR; ++ii) {
      const float av = arow[ii];
      for (std::size_t jj = 0; jj < kNR; ++jj) {
        acc[ii * kNR + jj] += av * brow[jj];
      }
    }
  }
}

#ifdef OSP_GEMM_X86_DISPATCH
static_assert(kMR == 4 && kNR == 8, "AVX2 micro-kernel assumes a 4x8 tile");
__attribute__((target("avx2"))) void micro_kernel_avx2(
    const float* __restrict ap, const float* __restrict bp, std::size_t kl,
    float* __restrict acc) {
  __m256 c0 = _mm256_loadu_ps(acc + 0);
  __m256 c1 = _mm256_loadu_ps(acc + 8);
  __m256 c2 = _mm256_loadu_ps(acc + 16);
  __m256 c3 = _mm256_loadu_ps(acc + 24);
  for (std::size_t p = 0; p < kl; ++p) {
    const __m256 bv = _mm256_loadu_ps(bp + p * 8);
    const float* arow = ap + p * 4;
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(arow + 0), bv));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(arow + 1), bv));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(arow + 2), bv));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(arow + 3), bv));
  }
  _mm256_storeu_ps(acc + 0, c0);
  _mm256_storeu_ps(acc + 8, c1);
  _mm256_storeu_ps(acc + 16, c2);
  _mm256_storeu_ps(acc + 24, c3);
}
#endif

using MicroKernelFn = void (*)(const float* __restrict, const float* __restrict,
                               std::size_t, float* __restrict);

MicroKernelFn pick_micro_kernel() {
#ifdef OSP_GEMM_X86_DISPATCH
  if (__builtin_cpu_supports("avx2")) return micro_kernel_avx2;
#endif
  return micro_kernel_portable;
}

const MicroKernelFn g_micro_kernel = pick_micro_kernel();

inline float a_elem(const float* a, std::size_t lda, Trans t, std::size_t i,
                    std::size_t p) {
  return t == Trans::N ? a[i * lda + p] : a[p * lda + i];
}

inline float b_elem(const float* b, std::size_t ldb, Trans t, std::size_t p,
                    std::size_t j) {
  return t == Trans::N ? b[p * ldb + j] : b[j * ldb + p];
}

/// Plain row-major output: C[i*ldc + j].
struct RowMajorOut {
  float* c;
  std::size_t ldc;
  float load(std::size_t i, std::size_t j) const { return c[i * ldc + j]; }
  void store(std::size_t i, std::size_t j, float v) const {
    c[i * ldc + j] = v;
  }
};

/// Conv-forward epilogue: GEMM rows are (sample, patch) pairs and columns
/// are output channels; the store scatters into NCHW layout with the bias
/// fused in. Only valid for single-kc-panel runs (the driver is called with
/// kc_max == k), so load() is never needed.
struct ConvScatterOut {
  float* out;
  const float* bias;
  std::size_t patches;
  std::size_t out_c;
  float load(std::size_t, std::size_t) const { return 0.0f; }
  void store(std::size_t i, std::size_t j, float v) const {
    const std::size_t b = i / patches;
    const std::size_t p = i % patches;
    out[(b * out_c + j) * patches + p] = v + bias[j];
  }
};

template <class Epi>
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, Trans ta, const float* b, std::size_t ldb,
                  Trans tb, bool accumulate, std::size_t kc_max,
                  const Epi& epi) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) epi.store(i, j, 0.0f);
      }
    }
    return;
  }
  thread_local std::vector<float> bpack;
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t ncl = std::min(kNC, n - jc);
    const std::size_t npanels = (ncl + kNR - 1) / kNR;
    for (std::size_t pc = 0; pc < k; pc += kc_max) {
      const std::size_t kl = std::min(kc_max, k - pc);
      const bool first_panel = pc == 0;
      // Pack B once per (jc, pc) block; every M strip reuses it.
      bpack.resize(npanels * kl * kNR);
      for (std::size_t jp = 0; jp < npanels; ++jp) {
        float* dst = bpack.data() + jp * kl * kNR;
        const std::size_t j0 = jc + jp * kNR;
        const std::size_t nr = std::min(kNR, n - j0);
        for (std::size_t p = 0; p < kl; ++p) {
          for (std::size_t jj = 0; jj < kNR; ++jj) {
            dst[p * kNR + jj] =
                jj < nr ? b_elem(b, ldb, tb, pc + p, j0 + jj) : 0.0f;
          }
        }
      }
      const std::size_t strips = (m + kMR - 1) / kMR;
      const std::size_t strip_flops = 2 * kMR * kl * ncl + 1;
      const std::size_t grain =
          std::max<std::size_t>(1, kMinFlopsPerChunk / strip_flops);
      const float* bpack_data = bpack.data();
      util::ThreadPool::global().parallel_for(
          strips,
          [&, bpack_data](std::size_t s0, std::size_t s1) {
            thread_local std::vector<float> apack;
            apack.resize(kl * kMR);
            float* ap = apack.data();
            for (std::size_t s = s0; s < s1; ++s) {
              const std::size_t i0 = s * kMR;
              const std::size_t mr = std::min(kMR, m - i0);
              for (std::size_t p = 0; p < kl; ++p) {
                for (std::size_t ii = 0; ii < kMR; ++ii) {
                  ap[p * kMR + ii] =
                      ii < mr ? a_elem(a, lda, ta, i0 + ii, pc + p) : 0.0f;
                }
              }
              for (std::size_t jp = 0; jp < npanels; ++jp) {
                const std::size_t j0 = jc + jp * kNR;
                const std::size_t nr = std::min(kNR, n - j0);
                alignas(32) float acc[kMR * kNR];
                if (first_panel && !accumulate) {
                  for (float& v : acc) v = 0.0f;
                } else {
                  for (std::size_t ii = 0; ii < kMR; ++ii) {
                    for (std::size_t jj = 0; jj < kNR; ++jj) {
                      acc[ii * kNR + jj] = (ii < mr && jj < nr)
                                               ? epi.load(i0 + ii, j0 + jj)
                                               : 0.0f;
                    }
                  }
                }
                g_micro_kernel(ap, bpack_data + jp * kl * kNR, kl, acc);
                for (std::size_t ii = 0; ii < mr; ++ii) {
                  for (std::size_t jj = 0; jj < nr; ++jj) {
                    epi.store(i0 + ii, j0 + jj, acc[ii * kNR + jj]);
                  }
                }
              }
            }
          },
          grain);
    }
  }
}

// Straight-loop fallbacks for matmuls too small to amortize packing. Same
// per-element accumulation order as the blocked kernel.
void matmul_small(std::size_t m, std::size_t k, std::size_t n, const float* pa,
                  const float* pb, float* pc) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    std::fill(crow, crow + n, 0.0f);
    const float* arow = pa + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = pb + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_tn_small(std::size_t m, std::size_t k, std::size_t n,
                     const float* pa, const float* pb, float* pc,
                     bool accumulate) {
  for (std::size_t i = 0; i < k; ++i) {
    float* crow = pc + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    for (std::size_t p = 0; p < m; ++p) {
      const float av = pa[p * k + i];
      const float* brow = pb + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt_small(std::size_t m, std::size_t k, std::size_t n,
                     const float* pa, const float* pb, float* pc) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void check_matrix(const Tensor& t, const char* name) {
  OSP_CHECK(t.rank() == 2, "matmul operand must be rank-2");
  (void)name;
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == k, "matmul inner dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == m && c.dim(1) == n,
            "matmul output shape mismatch");
  if (m * n * k < kSmallGemmElems) {
    matmul_small(m, k, n, a.raw(), b.raw(), c.raw());
    return;
  }
  gemm_blocked(m, n, k, a.raw(), k, Trans::N, b.raw(), n, Trans::N,
               /*accumulate=*/false, kKC, RowMajorOut{c.raw(), n});
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == m, "matmul_tn outer dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == k && c.dim(1) == n,
            "matmul_tn output shape mismatch");
  if (m * n * k < kSmallGemmElems) {
    matmul_tn_small(m, k, n, a.raw(), b.raw(), c.raw(), /*accumulate=*/false);
    return;
  }
  // C[k,n] = Aᵀ·B: the packed A accessor reads A transposed.
  gemm_blocked(k, n, m, a.raw(), k, Trans::T, b.raw(), n, Trans::N,
               /*accumulate=*/false, kKC, RowMajorOut{c.raw(), n});
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == m, "matmul_tn_acc outer dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == k && c.dim(1) == n,
            "matmul_tn_acc output shape mismatch");
  if (m * n * k < kSmallGemmElems) {
    matmul_tn_small(m, k, n, a.raw(), b.raw(), c.raw(), /*accumulate=*/true);
    return;
  }
  gemm_blocked(k, n, m, a.raw(), k, Trans::T, b.raw(), n, Trans::N,
               /*accumulate=*/true, kKC, RowMajorOut{c.raw(), n});
}

void matmul_tn_blocked_acc(const Tensor& a, const Tensor& b,
                           std::size_t blocks, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  OSP_CHECK(blocks > 0, "matmul_tn_blocked_acc needs blocks > 0");
  const std::size_t m_all = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == m_all, "matmul_tn_blocked_acc outer mismatch");
  OSP_CHECK(m_all % blocks == 0, "matmul_tn_blocked_acc uneven blocks");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == k && c.dim(1) == n,
            "matmul_tn_blocked_acc output shape mismatch");
  const std::size_t rows = m_all / blocks;
  static thread_local std::vector<float> scratch;
  scratch.resize(k * n);
  float* wg = scratch.data();
  float* pc = c.raw();
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const float* pa = a.raw() + blk * rows * k;
    const float* pb = b.raw() + blk * rows * n;
    if (rows * n * k < kSmallGemmElems) {
      matmul_tn_small(rows, k, n, pa, pb, wg, /*accumulate=*/false);
    } else {
      gemm_blocked(k, n, rows, pa, k, Trans::T, pb, n, Trans::N,
                   /*accumulate=*/false, kKC, RowMajorOut{wg, n});
    }
    for (std::size_t i = 0; i < k * n; ++i) pc[i] += wg[i];
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  OSP_CHECK(b.dim(1) == k, "matmul_nt inner dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == m && c.dim(1) == n,
            "matmul_nt output shape mismatch");
  if (m * n * k < kSmallGemmElems) {
    matmul_nt_small(m, k, n, a.raw(), b.raw(), c.raw());
    return;
  }
  // C[m,n] = A·Bᵀ: the packed B accessor reads B transposed, turning the
  // unvectorizable dot-product loop into the shared panel kernel.
  gemm_blocked(m, n, k, a.raw(), k, Trans::N, b.raw(), k, Trans::T,
               /*accumulate=*/false, kKC, RowMajorOut{c.raw(), n});
}

void conv_forward_gemm(const Tensor& cols_all, const Tensor& weight,
                       std::span<const float> bias, std::size_t batch,
                       std::size_t patches, Tensor& out_nchw) {
  check_matrix(cols_all, "cols_all");
  check_matrix(weight, "weight");
  const std::size_t m = cols_all.dim(0), k = cols_all.dim(1);
  const std::size_t out_c = weight.dim(0);
  OSP_CHECK(weight.dim(1) == k, "conv_forward_gemm patch length mismatch");
  OSP_CHECK(m == batch * patches, "conv_forward_gemm row count mismatch");
  OSP_CHECK(bias.size() == out_c, "conv_forward_gemm bias size mismatch");
  OSP_CHECK(out_nchw.numel() == batch * out_c * patches,
            "conv_forward_gemm output size mismatch");
  OSP_CHECK(patches > 0, "conv_forward_gemm needs patches > 0");
  // kc_max = k forces a single kc panel so the scatter epilogue (which
  // cannot reload partial sums from the NCHW layout) sees final values.
  gemm_blocked(m, out_c, k, cols_all.raw(), k, Trans::N, weight.raw(), k,
               Trans::T, /*accumulate=*/false, std::max<std::size_t>(k, 1),
               ConvScatterOut{out_nchw.raw(), bias.data(), patches, out_c});
}

void add_bias_rows(Tensor& x, std::span<const float> bias) {
  OSP_CHECK(x.rank() == 2, "add_bias_rows needs rank-2");
  OSP_CHECK(bias.size() == x.dim(1), "bias size mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  float* px = x.raw();
  const float* pb = bias.data();
  util::ThreadPool::global().parallel_for(
      rows,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          float* row = px + r * cols;
          for (std::size_t c = 0; c < cols; ++c) row[c] += pb[c];
        }
      },
      std::max<std::size_t>(1, (1u << 15) / std::max<std::size_t>(1, cols)));
}

void sum_rows(const Tensor& x, std::span<float> out) {
  OSP_CHECK(x.rank() == 2, "sum_rows needs rank-2");
  OSP_CHECK(out.size() == x.dim(1), "output size mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  const float* px = x.raw();
  float* po = out.data();
  // Parallel over COLUMNS: each out[c] is owned by exactly one chunk and
  // accumulates rows in ascending order, so the result is race-free and
  // bit-identical for every thread count.
  util::ThreadPool::global().parallel_for(
      cols,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t r = 0; r < rows; ++r) {
          const float* row = px + r * cols;
          for (std::size_t c = c0; c < c1; ++c) po[c] += row[c];
        }
      },
      std::max<std::size_t>(64, (1u << 15) / std::max<std::size_t>(1, rows)));
}

void softmax_rows(const Tensor& x, Tensor& out) {
  OSP_CHECK(x.rank() == 2, "softmax_rows needs rank-2");
  OSP_CHECK(out.rank() == 2 && out.dim(0) == x.dim(0) && out.dim(1) == x.dim(1),
            "softmax output shape mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  OSP_CHECK(cols > 0, "softmax over empty row");
  const float* px = x.raw();
  float* po = out.raw();
  util::ThreadPool::global().parallel_for(
      rows,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const float* in = px + r * cols;
          float* o = po + r * cols;
          float mx = in[0];
          for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
          float denom = 0.0f;
          for (std::size_t c = 0; c < cols; ++c) {
            o[c] = std::exp(in[c] - mx);
            denom += o[c];
          }
          const float inv = 1.0f / denom;
          for (std::size_t c = 0; c < cols; ++c) o[c] *= inv;
        }
      },
      std::max<std::size_t>(1, (1u << 13) / std::max<std::size_t>(1, cols)));
}

void transpose(const Tensor& a, Tensor& b) {
  OSP_CHECK(a.rank() == 2, "transpose needs rank-2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  OSP_CHECK(b.rank() == 2 && b.dim(0) == n && b.dim(1) == m,
            "transpose output shape mismatch");
  const float* pa = a.raw();
  float* pb = b.raw();
  // Tiled to keep both the strided reads and the contiguous writes within
  // cache lines; parallel over output-row blocks.
  constexpr std::size_t kBlock = 64;
  const std::size_t jblocks = (n + kBlock - 1) / kBlock;
  util::ThreadPool::global().parallel_for(
      jblocks,
      [&](std::size_t jb0, std::size_t jb1) {
        for (std::size_t jb = jb0; jb < jb1; ++jb) {
          const std::size_t j0 = jb * kBlock;
          const std::size_t j1 = std::min(n, j0 + kBlock);
          for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
            const std::size_t i1 = std::min(m, i0 + kBlock);
            for (std::size_t j = j0; j < j1; ++j) {
              float* brow = pb + j * m;
              for (std::size_t i = i0; i < i1; ++i) {
                brow[i] = pa[i * n + j];
              }
            }
          }
        }
      },
      std::max<std::size_t>(1, (1u << 15) / std::max<std::size_t>(1, m * kBlock)));
}

void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols) {
  OSP_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
            "image size mismatch");
  OSP_CHECK(g.kernel > 0 && g.stride > 0, "invalid conv geometry");
  OSP_CHECK(g.in_h + 2 * g.pad >= g.kernel && g.in_w + 2 * g.pad >= g.kernel,
            "kernel larger than padded input");
  const std::size_t oh = g.out_h(), ow = g.out_w();
  OSP_CHECK(cols.rank() == 2 && cols.dim(0) == oh * ow &&
                cols.dim(1) == g.patch_len(),
            "im2col output shape mismatch");
  im2col_rows(image, g, cols.raw());
}

void im2col_rows(std::span<const float> image, const Conv2dGeom& g,
                 float* cols) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plen = g.patch_len();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* patch = cols + (oy * ow + ox) * plen;
      std::size_t idx = 0;
      for (std::size_t ch = 0; ch < g.in_channels; ++ch) {
        const float* chan = image.data() + ch * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          // Signed math: padding can take coordinates negative.
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.pad);
          for (std::size_t kx = 0; kx < g.kernel; ++kx) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            if (iy < 0 || ix < 0 || iy >= static_cast<long long>(g.in_h) ||
                ix >= static_cast<long long>(g.in_w)) {
              patch[idx++] = 0.0f;
            } else {
              patch[idx++] = chan[static_cast<std::size_t>(iy) * g.in_w +
                                  static_cast<std::size_t>(ix)];
            }
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const Conv2dGeom& g, std::span<float> image) {
  OSP_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
            "image size mismatch");
  const std::size_t oh = g.out_h(), ow = g.out_w();
  OSP_CHECK(cols.rank() == 2 && cols.dim(0) == oh * ow &&
                cols.dim(1) == g.patch_len(),
            "col2im input shape mismatch");
  col2im_rows(cols.raw(), g, image);
}

void col2im_rows(const float* cols, const Conv2dGeom& g,
                 std::span<float> image) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plen = g.patch_len();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* patch = cols + (oy * ow + ox) * plen;
      std::size_t idx = 0;
      for (std::size_t ch = 0; ch < g.in_channels; ++ch) {
        float* chan = image.data() + ch * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.pad);
          for (std::size_t kx = 0; kx < g.kernel; ++kx) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            const float v = patch[idx++];
            if (iy < 0 || ix < 0 || iy >= static_cast<long long>(g.in_h) ||
                ix >= static_cast<long long>(g.in_w)) {
              continue;
            }
            chan[static_cast<std::size_t>(iy) * g.in_w +
                 static_cast<std::size_t>(ix)] += v;
          }
        }
      }
    }
  }
}

}  // namespace osp::tensor
