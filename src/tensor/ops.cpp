#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace osp::tensor {

namespace {

// Parallelizing tiny matmuls costs more in pool handoff than it saves;
// choose the row grain so one chunk carries at least ~256k multiply-adds.
constexpr std::size_t kMinFlopsPerChunk = 262144;

std::size_t row_grain(std::size_t k, std::size_t n) {
  const std::size_t per_row = std::max<std::size_t>(1, k * n);
  return std::max<std::size_t>(1, kMinFlopsPerChunk / per_row);
}

void check_matrix(const Tensor& t, const char* name) {
  OSP_CHECK(t.rank() == 2, "matmul operand must be rank-2");
  (void)name;
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == k, "matmul inner dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == m && c.dim(1) == n,
            "matmul output shape mismatch");
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  util::ThreadPool::global().parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* crow = pc + i * n;
          std::fill(crow, crow + n, 0.0f);
          const float* arow = pa + i * k;
          for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = pb + p * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      row_grain(k, n));
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OSP_CHECK(b.dim(0) == m, "matmul_tn outer dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == k && c.dim(1) == n,
            "matmul_tn output shape mismatch");
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  util::ThreadPool::global().parallel_for(
      k,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* crow = pc + i * n;
          std::fill(crow, crow + n, 0.0f);
          for (std::size_t p = 0; p < m; ++p) {
            const float av = pa[p * k + i];
            if (av == 0.0f) continue;
            const float* brow = pb + p * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      row_grain(m, n));
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  OSP_CHECK(b.dim(1) == k, "matmul_nt inner dimension mismatch");
  OSP_CHECK(c.rank() == 2 && c.dim(0) == m && c.dim(1) == n,
            "matmul_nt output shape mismatch");
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  util::ThreadPool::global().parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* arow = pa + i * k;
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float s = 0.0f;
            for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
            crow[j] = s;
          }
        }
      },
      row_grain(k, n));
}

void add_bias_rows(Tensor& x, std::span<const float> bias) {
  OSP_CHECK(x.rank() == 2, "add_bias_rows needs rank-2");
  OSP_CHECK(bias.size() == x.dim(1), "bias size mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  float* px = x.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = px + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void sum_rows(const Tensor& x, std::span<float> out) {
  OSP_CHECK(x.rank() == 2, "sum_rows needs rank-2");
  OSP_CHECK(out.size() == x.dim(1), "output size mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  const float* px = x.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = px + r * cols;
    for (std::size_t c = 0; c < cols; ++c) out[c] += row[c];
  }
}

void softmax_rows(const Tensor& x, Tensor& out) {
  OSP_CHECK(x.rank() == 2, "softmax_rows needs rank-2");
  OSP_CHECK(out.rank() == 2 && out.dim(0) == x.dim(0) && out.dim(1) == x.dim(1),
            "softmax output shape mismatch");
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  OSP_CHECK(cols > 0, "softmax over empty row");
  const float* px = x.raw();
  float* po = out.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = px + r * cols;
    float* o = po + r * cols;
    float mx = in[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < cols; ++c) o[c] *= inv;
  }
}

void transpose(const Tensor& a, Tensor& b) {
  OSP_CHECK(a.rank() == 2, "transpose needs rank-2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  OSP_CHECK(b.rank() == 2 && b.dim(0) == n && b.dim(1) == m,
            "transpose output shape mismatch");
  const float* pa = a.raw();
  float* pb = b.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) pb[j * m + i] = pa[i * n + j];
  }
}

void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols) {
  OSP_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
            "image size mismatch");
  OSP_CHECK(g.kernel > 0 && g.stride > 0, "invalid conv geometry");
  OSP_CHECK(g.in_h + 2 * g.pad >= g.kernel && g.in_w + 2 * g.pad >= g.kernel,
            "kernel larger than padded input");
  const std::size_t oh = g.out_h(), ow = g.out_w();
  OSP_CHECK(cols.rank() == 2 && cols.dim(0) == oh * ow &&
                cols.dim(1) == g.patch_len(),
            "im2col output shape mismatch");
  float* pc = cols.raw();
  const std::size_t plen = g.patch_len();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* patch = pc + (oy * ow + ox) * plen;
      std::size_t idx = 0;
      for (std::size_t ch = 0; ch < g.in_channels; ++ch) {
        const float* chan = image.data() + ch * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          // Signed math: padding can take coordinates negative.
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.pad);
          for (std::size_t kx = 0; kx < g.kernel; ++kx) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            if (iy < 0 || ix < 0 || iy >= static_cast<long long>(g.in_h) ||
                ix >= static_cast<long long>(g.in_w)) {
              patch[idx++] = 0.0f;
            } else {
              patch[idx++] = chan[static_cast<std::size_t>(iy) * g.in_w +
                                  static_cast<std::size_t>(ix)];
            }
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const Conv2dGeom& g, std::span<float> image) {
  OSP_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
            "image size mismatch");
  const std::size_t oh = g.out_h(), ow = g.out_w();
  OSP_CHECK(cols.rank() == 2 && cols.dim(0) == oh * ow &&
                cols.dim(1) == g.patch_len(),
            "col2im input shape mismatch");
  const float* pc = cols.raw();
  const std::size_t plen = g.patch_len();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* patch = pc + (oy * ow + ox) * plen;
      std::size_t idx = 0;
      for (std::size_t ch = 0; ch < g.in_channels; ++ch) {
        float* chan = image.data() + ch * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.pad);
          for (std::size_t kx = 0; kx < g.kernel; ++kx) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            const float v = patch[idx++];
            if (iy < 0 || ix < 0 || iy >= static_cast<long long>(g.in_h) ||
                ix >= static_cast<long long>(g.in_w)) {
              continue;
            }
            chan[static_cast<std::size_t>(iy) * g.in_w +
                 static_cast<std::size_t>(ix)] += v;
          }
        }
      }
    }
  }
}

}  // namespace osp::tensor
