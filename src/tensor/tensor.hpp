// Dense row-major float tensor.
//
// This is the numeric substrate for the proxy models: small, contiguous,
// deterministic. It deliberately supports only what the layer stack needs —
// owning storage, shape/reshape, element access, and flat span views used by
// the synchronization code (gradients and parameters are exchanged as flat
// float blocks).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace osp::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
[[nodiscard]] std::size_t shape_numel(const Shape& shape);

/// Human-readable form, e.g. "[2, 3, 4]".
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty rank-0 tensor with a single zero element is NOT created; an empty
  /// tensor has no elements and an empty shape.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor with explicit contents; `data.size()` must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float v) { return {std::move(shape), v}; }
  /// 1-D tensor from a braced list.
  [[nodiscard]] static Tensor from(std::initializer_list<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Size along dimension `d`; requires d < rank().
  [[nodiscard]] std::size_t dim(std::size_t d) const;

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  [[nodiscard]] float* raw() { return data_.data(); }
  [[nodiscard]] const float* raw() const { return data_.data(); }

  /// Flat element access.
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access; requires rank() == 2.
  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// 4-D access (NCHW); requires rank() == 4.
  [[nodiscard]] float& at(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w);
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const;

  /// In-place reshape; total element count must be preserved.
  void reshape(Shape new_shape);

  /// Returns a reshaped deep copy.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Row `r` of a rank-2 tensor as a span of length dim(1).
  [[nodiscard]] std::span<float> row(std::size_t r);
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace osp::tensor
