#include "tensor/init.hpp"

#include <cmath>

#include "util/check.hpp"

namespace osp::tensor {

void xavier_uniform(Tensor& t, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng) {
  OSP_CHECK(fan_in + fan_out > 0, "xavier needs positive fans");
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-a, a));
}

void he_normal(Tensor& t, std::size_t fan_in, util::Rng& rng) {
  OSP_CHECK(fan_in > 0, "he_normal needs positive fan_in");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void normal_init(Tensor& t, float mean, float stddev, util::Rng& rng) {
  for (float& v : t.data()) v = static_cast<float>(rng.normal(mean, stddev));
}

void uniform_init(Tensor& t, float lo, float hi, util::Rng& rng) {
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
}

}  // namespace osp::tensor
