// Deterministic weight initialization schemes.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace osp::tensor {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& t, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng);

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)) — for ReLU stacks.
void he_normal(Tensor& t, std::size_t fan_in, util::Rng& rng);

/// N(mean, stddev).
void normal_init(Tensor& t, float mean, float stddev, util::Rng& rng);

/// U(lo, hi).
void uniform_init(Tensor& t, float lo, float hi, util::Rng& rng);

}  // namespace osp::tensor
