#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace osp::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  OSP_CHECK(data_.size() == shape_numel(shape_),
            "data size does not match shape");
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor{Shape{values.size()}, std::vector<float>(values)};
}

std::size_t Tensor::dim(std::size_t d) const {
  OSP_CHECK(d < shape_.size(), "dim index out of range");
  return shape_[d];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  OSP_CHECK(rank() == 2, "2-D access on non-matrix");
  OSP_CHECK(r < shape_[0] && c < shape_[1], "index out of range");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  OSP_CHECK(rank() == 4, "4-D access on non-rank-4 tensor");
  OSP_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
            "index out of range");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

void Tensor::reshape(Shape new_shape) {
  OSP_CHECK(shape_numel(new_shape) == data_.size(),
            "reshape must preserve element count");
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::span<float> Tensor::row(std::size_t r) {
  OSP_CHECK(rank() == 2, "row() on non-matrix");
  OSP_CHECK(r < shape_[0], "row index out of range");
  return std::span<float>{data_}.subspan(r * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const {
  OSP_CHECK(rank() == 2, "row() on non-matrix");
  OSP_CHECK(r < shape_[0], "row index out of range");
  return std::span<const float>{data_}.subspan(r * shape_[1], shape_[1]);
}

}  // namespace osp::tensor
