// Tensor kernels: cache-blocked register-tiled matmul, transpose variants,
// elementwise ops, row softmax, and im2col/col2im for convolution.
//
// Matmul comes in the three orientations backprop needs:
//   matmul:    C = A·B        (forward)
//   matmul_tn: C = Aᵀ·B       (weight gradient; _acc accumulates into C)
//   matmul_nt: C = A·Bᵀ       (input gradient)
// All orientations route through one shared packed GEMM kernel
// (MC/KC/NC blocking, kMR×kNR register tile) parallelized over output-row
// strips via the global ThreadPool. Each C element is accumulated by a
// single accumulator in ascending-k order, so results are bit-identical
// across thread counts and blocking parameters.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace osp::tensor {

/// C[m,n] = A[m,k] · B[k,n].
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C[k_a_cols,n] = Aᵀ[k,m]ᵀ… precisely: A is [m,k], B is [m,n], C = Aᵀ·B is [k,n].
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// A is [m,k], B is [n,k], C = A·Bᵀ is [m,n].
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C += Aᵀ·B (accumulating matmul_tn; the GEMM adds straight into the
/// destination instead of materializing a temporary).
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);

/// Block-wise accumulating Aᵀ·B: A and B are `blocks` stacked row blocks
/// ([blocks*rows, k] and [blocks*rows, n]); for each block
/// C += A_blockᵀ·B_block. Each block's product is materialized with a
/// fresh accumulator and then added to C — the exact float grouping of a
/// per-sample loop. Conv2d's weight gradient uses this so the batched
/// implementation stays bit-identical to the per-sample one it replaced.
void matmul_tn_blocked_acc(const Tensor& a, const Tensor& b,
                           std::size_t blocks, Tensor& c);

/// out[r] = in[r] + bias for every row of a rank-2 tensor (in place).
void add_bias_rows(Tensor& x, std::span<const float> bias);

/// Accumulate the per-column sum of a rank-2 tensor into `out`.
///
/// CONTRACT: this ACCUMULATES (`out[c] += Σ_r x[r,c]`); it never zeroes
/// `out` first. Callers that want a plain sum must zero-fill beforehand.
/// The bias-gradient paths (`nn/linear.cpp`, `nn/conv2d.cpp`) rely on the
/// accumulate behavior to add into persistent gradient buffers that the
/// optimizer zeroes between steps. Rows are added in ascending order per
/// column regardless of thread count.
void sum_rows(const Tensor& x, std::span<float> out);

/// Row-wise softmax of a rank-2 tensor, written into `out` (same shape).
/// Numerically stabilized by max subtraction.
void softmax_rows(const Tensor& x, Tensor& out);

/// B[n,m] = Aᵀ for rank-2 A[m,n].
void transpose(const Tensor& a, Tensor& b);

/// Parameters describing a conv/pool window.
struct Conv2dGeom {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernel
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix per image: out_h*out_w.
  [[nodiscard]] std::size_t patches() const { return out_h() * out_w(); }
  /// Columns of the im2col matrix: C*k*k.
  [[nodiscard]] std::size_t patch_len() const {
    return in_channels * kernel * kernel;
  }
};

/// Expand one image (C,H,W flat span) into the im2col matrix
/// [patches, patch_len]. Out-of-bounds (padding) reads as 0.
void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols);

/// im2col writing into a raw row block (one sample's [patches, patch_len]
/// slice of a batched scratch matrix). No shape checks; callers guarantee
/// `cols` has room for patches()*patch_len() floats.
void im2col_rows(std::span<const float> image, const Conv2dGeom& g,
                 float* cols);

/// Scatter-add the column matrix back into an image gradient (+=).
void col2im(const Tensor& cols, const Conv2dGeom& g, std::span<float> image);

/// col2im from a raw row block (one sample's slice of a batched matrix).
void col2im_rows(const float* cols, const Conv2dGeom& g,
                 std::span<float> image);

/// Batched conv-forward GEMM with fused epilogue. `cols_all` holds every
/// sample's im2col rows back-to-back ([batch*patches, patch_len]), `weight`
/// is [out_c, patch_len]. Computes cols·weightᵀ and scatters the result
/// into `out_nchw` ([batch, out_c, oh, ow]) with `bias` added — the NCHW
/// transpose+bias pass lives inside the GEMM's store epilogue instead of a
/// separate sweep over the output.
void conv_forward_gemm(const Tensor& cols_all, const Tensor& weight,
                       std::span<const float> bias, std::size_t batch,
                       std::size_t patches, Tensor& out_nchw);

}  // namespace osp::tensor
