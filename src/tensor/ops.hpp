// Tensor kernels: threaded blocked matmul, transpose variants, elementwise
// ops, row softmax, and im2col/col2im for convolution.
//
// Matmul comes in the three orientations backprop needs:
//   matmul:    C = A·B        (forward)
//   matmul_tn: C = Aᵀ·B       (weight gradient)
//   matmul_nt: C = A·Bᵀ       (input gradient)
// All kernels parallelize over output rows via the global ThreadPool.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace osp::tensor {

/// C[m,n] = A[m,k] · B[k,n].
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C[k_a_cols,n] = Aᵀ[k,m]ᵀ… precisely: A is [m,k], B is [m,n], C = Aᵀ·B is [k,n].
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// A is [m,k], B is [n,k], C = A·Bᵀ is [m,n].
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// out[r] = in[r] + bias for every row of a rank-2 tensor (in place).
void add_bias_rows(Tensor& x, std::span<const float> bias);

/// Accumulate the per-column sum of a rank-2 tensor into `out` (+=).
void sum_rows(const Tensor& x, std::span<float> out);

/// Row-wise softmax of a rank-2 tensor, written into `out` (same shape).
/// Numerically stabilized by max subtraction.
void softmax_rows(const Tensor& x, Tensor& out);

/// B[n,m] = Aᵀ for rank-2 A[m,n].
void transpose(const Tensor& a, Tensor& b);

/// Parameters describing a conv/pool window.
struct Conv2dGeom {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernel
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix per image: out_h*out_w.
  [[nodiscard]] std::size_t patches() const { return out_h() * out_w(); }
  /// Columns of the im2col matrix: C*k*k.
  [[nodiscard]] std::size_t patch_len() const {
    return in_channels * kernel * kernel;
  }
};

/// Expand one image (C,H,W flat span) into the im2col matrix
/// [patches, patch_len]. Out-of-bounds (padding) reads as 0.
void im2col(std::span<const float> image, const Conv2dGeom& g, Tensor& cols);

/// Scatter-add the column matrix back into an image gradient (+=).
void col2im(const Tensor& cols, const Conv2dGeom& g, std::span<float> image);

}  // namespace osp::tensor
