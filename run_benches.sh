#!/bin/bash
# Regenerates every figure/table: one binary per paper figure + ablations,
# extensions, and google-benchmark micros. OSP_BENCH_EPOCHS trims run length.
#
# Exits non-zero if any bench binary fails, naming each failing binary on
# stderr; ALL_BENCHES_DONE is only appended when every binary succeeded.
set -u
cd "$(dirname "$0")"
: "${OSP_BENCH_EPOCHS:=20}"
export OSP_BENCH_EPOCHS
# Opt-in observability: OSP_TRACE=1 makes the figure benches record traces
# and per-round telemetry and drop them under bench_out/ (see
# bench_common.hpp). Off by default — tracing large runs costs memory.
: "${OSP_TRACE:=0}"
export OSP_TRACE
out="${1:-bench_output.txt}"
: > "$out"
failed=()
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b (OSP_BENCH_EPOCHS=$OSP_BENCH_EPOCHS) =====" >> "$out"
  "$b" >> "$out" 2>&1
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAILED: $b (exit $status)" | tee -a "$out" >&2
    failed+=("$b")
  fi
  echo >> "$out"
done
if [ "${#failed[@]}" -ne 0 ]; then
  echo "${#failed[@]} bench binaries failed:" >&2
  printf '  %s\n' "${failed[@]}" >&2
  exit 1
fi
# Machine-readable artifacts land in bench_out/ (JSON + the figure CSVs).
# Promote a blessed run over the curated top-level copies with e.g.:
#   cp bench_out/BENCH_micro_network.json .
echo "JSON artifacts:" >> "$out"
ls bench_out/BENCH_*.json >> "$out" 2>&1
echo "ALL_BENCHES_DONE" >> "$out"
