#!/bin/bash
# Regenerates every figure/table: one binary per paper figure + ablations,
# extensions, and google-benchmark micros. OSP_BENCH_EPOCHS trims run length.
set -u
cd "$(dirname "$0")"
: "${OSP_BENCH_EPOCHS:=20}"
export OSP_BENCH_EPOCHS
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b (OSP_BENCH_EPOCHS=$OSP_BENCH_EPOCHS) =====" >> "$out"
  "$b" >> "$out" 2>&1
  echo >> "$out"
done
echo "ALL_BENCHES_DONE" >> "$out"
