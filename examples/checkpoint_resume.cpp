// Checkpoint & deterministic resume: survive a preemption mid-run and
// continue as if nothing happened.
//
//   ./build/examples/checkpoint_resume
//
// Three runs of the same OSP training job:
//   1. uninterrupted, with periodic checkpoints enabled,
//   2. preempted — the run halts the moment the first snapshot is written,
//   3. resumed from that snapshot file.
// The resumed run finishes with bit-identical results to the uninterrupted
// one: same virtual clock, same loss, same global parameters. Finally the
// same file doubles as a crash-recovery source: a worker that dies mid-run
// restores its replica from the local snapshot instead of re-pulling the
// full model from the parameter server.
#include <cstdio>
#include <filesystem>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace osp;

  const runtime::WorkloadSpec workload = models::tiny_mlp();
  const std::string ckpt_path =
      (std::filesystem::temp_directory_path() / "osp_example_resume.ckpt")
          .string();

  runtime::EngineConfig base;
  base.num_workers = 4;
  base.max_epochs = 3;
  base.straggler_jitter = 0.1;
  base.seed = 42;
  // Drain to an iteration boundary and snapshot every 5 iterations.
  base.checkpoint.every_iters = 5;

  // 1. Reference: checkpoint-enabled but never interrupted.
  runtime::RunResult uninterrupted;
  {
    core::OspSync osp;
    runtime::Engine engine(workload, base, osp);
    uninterrupted = engine.run();
  }

  // 2. Preempted: write the first snapshot to disk, then stop.
  runtime::RunResult preempted;
  {
    runtime::EngineConfig cfg = base;
    cfg.checkpoint.path = ckpt_path;
    cfg.checkpoint.halt_after_checkpoint = true;
    core::OspSync osp;
    runtime::Engine engine(workload, cfg, osp);
    preempted = engine.run();
  }

  // 3. Resumed: load the snapshot and run the remainder.
  runtime::RunResult resumed;
  {
    runtime::EngineConfig cfg = base;
    cfg.checkpoint.resume_from = ckpt_path;
    core::OspSync osp;
    runtime::Engine engine(workload, cfg, osp);
    resumed = engine.run();
  }

  std::printf("uninterrupted: t=%.6fs loss=%.9f checkpoints=%zu\n",
              uninterrupted.total_time_s, uninterrupted.final_loss,
              static_cast<std::size_t>(uninterrupted.checkpoints_taken));
  std::printf("preempted:     t=%.6fs (halted after snapshot #1)\n",
              preempted.total_time_s);
  std::printf("resumed:       t=%.6fs loss=%.9f checkpoints=%zu\n",
              resumed.total_time_s, resumed.final_loss,
              static_cast<std::size_t>(resumed.checkpoints_taken));
  const bool identical =
      uninterrupted.total_time_s == resumed.total_time_s &&
      uninterrupted.final_loss == resumed.final_loss &&
      uninterrupted.total_samples == resumed.total_samples;
  std::printf("resume bit-identical to uninterrupted: %s\n",
              identical ? "yes" : "NO");

  // 4. Crash recovery: worker 2 dies at t=0.9s and restores its replica
  //    from the latest on-disk snapshot instead of pulling from the PS.
  {
    runtime::EngineConfig cfg = base;
    cfg.checkpoint.every_iters = 4;
    cfg.checkpoint.restore_crashed_from_checkpoint = true;
    cfg.faults.crash_worker(/*at_s=*/0.9, /*worker=*/2,
                            /*restart_after_s=*/0.1);
    core::OspSync osp;
    runtime::Engine engine(workload, cfg, osp);
    const runtime::RunResult r = engine.run();
    std::printf(
        "\ncrash recovery: crashes=%zu checkpoint_restores=%zu "
        "t=%.6fs loss=%.9f\n",
        static_cast<std::size_t>(r.faults.worker_crashes),
        static_cast<std::size_t>(r.faults.checkpoint_restores),
        r.total_time_s, r.final_loss);
  }

  std::filesystem::remove(ckpt_path);
  return identical ? 0 : 1;
}
