// Reconstructing the paper's Figure 4 from a live run: records per-worker
// compute/sync spans for BSP and OSP, prints the per-phase shares, and
// exports Chrome-tracing JSON files (open in chrome://tracing or
// https://ui.perfetto.dev) where OSP's shortened sync spans — the RS — are
// directly visible against BSP's.
//
//   ./build/examples/sync_timeline [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const std::size_t epochs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  const runtime::WorkloadSpec spec = models::resnet50_cifar10();
  runtime::EngineConfig config;
  config.num_workers = 4;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;
  config.record_trace = true;

  auto run = [&](runtime::SyncModel& sync, const char* json_path) {
    runtime::Engine engine(spec, config, sync);
    const runtime::RunResult r = engine.run();
    engine.trace().write_chrome_json(json_path);
    std::printf("%-4s  sync share=%5.1f%%  tput=%7.1f img/s  "
                "timeline: %s (%zu spans)\n",
                r.sync_name.c_str(),
                100.0 * engine.trace().sync_fraction(), r.throughput,
                json_path, engine.trace().spans().size());
    return r;
  };

  std::printf("== Figure-4 reconstruction: where does iteration time go? "
              "==\n");
  sync::BspSync bsp;
  core::OspSync osp;
  run(bsp, "timeline_bsp.json");
  const runtime::RunResult r = run(osp, "timeline_osp.json");

  std::printf("\nOSP spent %.1f MB/iter in its blocking RS by the end "
              "(budget %.1f of U_max %.1f MB); the other bytes rode the "
              "compute as ICS.\n",
              (spec.real_param_bytes - osp.current_ics_budget()) / 1e6,
              osp.current_ics_budget() / 1e6, osp.u_max() / 1e6);
  (void)r;
  return 0;
}
