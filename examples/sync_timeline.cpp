// Reconstructing the paper's Figure 4 from a live run: records per-worker
// compute/rs/ics spans for BSP and OSP, prints the per-phase shares and the
// ICS/compute overlap ratio, and exports Chrome-tracing JSON (open in
// chrome://tracing or https://ui.perfetto.dev) where OSP's two-stage sync —
// a short blocking RS plus ICS riding the next iteration's compute on a
// side track — is directly visible against BSP's monolithic barrier.
//
// The OSP run additionally writes its per-round sync telemetry as JSONL
// (one round per line: contributors, GIB split, budget, LGP correction);
// feed both artifacts to tools/osp_inspect for the full summary.
//
//   ./build/examples/sync_timeline [epochs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"
#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"
#include "sync/bsp.hpp"

namespace {

// Fraction of total ICS span time overlapping the same worker's compute
// spans — the quantity Fig. 4 makes visible (0 for BSP: no ICS at all).
double ics_overlap_ratio(const osp::runtime::TraceRecorder& trace) {
  using osp::runtime::TracePhase;
  using osp::runtime::TraceSpan;
  double ics_total = 0.0, overlapped = 0.0;
  for (const TraceSpan& s : trace.spans()) {
    if (s.phase != TracePhase::kIcs) continue;
    ics_total += s.end_s - s.begin_s;
    for (const TraceSpan& c : trace.spans()) {
      if (c.phase != TracePhase::kCompute || c.worker != s.worker) continue;
      const double lo = std::max(s.begin_s, c.begin_s);
      const double hi = std::min(s.end_s, c.end_s);
      if (hi > lo) overlapped += hi - lo;
    }
  }
  return ics_total > 0.0 ? overlapped / ics_total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osp;
  // Algorithm 1 needs enough epochs for the S(G^u) ramp to approach U_max;
  // below ~15 the ICS is small enough to hide entirely inside the RS
  // response window and the compute overlap stays near zero.
  const std::size_t epochs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  const runtime::WorkloadSpec spec = models::resnet50_cifar10();
  runtime::EngineConfig config;
  config.num_workers = 4;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;
  config.record_trace = true;
  config.record_telemetry = true;

  auto run = [&](runtime::SyncModel& sync, const char* json_path,
                 const char* telemetry_path) {
    runtime::Engine engine(spec, config, sync);
    const runtime::RunResult r = engine.run();
    engine.trace().write_chrome_json(json_path);
    if (telemetry_path != nullptr) {
      runtime::write_telemetry_jsonl(telemetry_path, r.rounds);
    }
    std::printf("%-4s  blocking sync share=%5.1f%%  ics overlap=%5.1f%%  "
                "tput=%7.1f img/s  rounds=%zu\n",
                r.sync_name.c_str(),
                100.0 * engine.trace().blocking_sync_fraction(),
                100.0 * ics_overlap_ratio(engine.trace()), r.throughput,
                r.rounds.size());
    std::printf("      phase shares:");
    for (const auto& [phase, share] : engine.trace().phase_shares()) {
      std::printf(" %s=%.1f%%", runtime::trace_phase_name(phase),
                  100.0 * share);
    }
    std::printf("\n      timeline: %s (%zu spans, %zu flows)\n", json_path,
                engine.trace().spans().size(),
                engine.trace().flows().size());
    if (telemetry_path != nullptr) {
      std::printf("      telemetry: %s\n", telemetry_path);
    }
    return r;
  };

  std::printf("== Figure-4 reconstruction: where does iteration time go? "
              "==\n");
  sync::BspSync bsp;
  core::OspSync osp;
  run(bsp, "timeline_bsp.json", nullptr);
  const runtime::RunResult r =
      run(osp, "timeline_osp.json", "timeline_osp_telemetry.jsonl");

  std::printf("\nOSP spent %.1f MB/iter in its blocking RS by the end "
              "(budget %.1f of U_max %.1f MB); the other bytes rode the "
              "compute as ICS.\n",
              (spec.real_param_bytes - osp.current_ics_budget()) / 1e6,
              osp.current_ics_budget() / 1e6, osp.u_max() / 1e6);
  (void)r;
  return 0;
}
