// NLP fine-tuning scenario: the BERTbase-class workload (synthetic SQuAD
// span extraction) compared across OSP, ASP, and BSP — the paper's "near-
// ASP throughput in NLP tasks" experiment, with F1 trajectories.
//
//   ./build/examples/nlp_finetune [epochs]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const std::size_t epochs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 15;

  const runtime::WorkloadSpec spec = models::bertbase_squad();
  runtime::EngineConfig config;
  config.num_workers = 8;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;
  config.eval_every_samples = spec.train->size() / 2;

  std::printf("== %s: fine-tuning on 8 workers, %zu epochs ==\n",
              spec.name.c_str(), epochs);
  std::printf("model: %.0f MB on the wire, batch %zu, QA span metric: F1\n\n",
              spec.real_param_bytes / 1e6, spec.batch_size);

  std::vector<std::unique_ptr<runtime::SyncModel>> syncs;
  syncs.push_back(std::make_unique<core::OspSync>());
  syncs.push_back(std::make_unique<sync::AspSync>());
  syncs.push_back(std::make_unique<sync::BspSync>());

  for (auto& sync : syncs) {
    runtime::Engine engine(spec, config, *sync);
    const runtime::RunResult r = engine.run();
    std::printf("%-5s  QAs/10s=%7.1f  best F1=%5.2f%%  BST=%.3fs  "
                "time=%.0fs\n",
                r.sync_name.c_str(), r.throughput * 10.0,
                100.0 * r.best_metric, r.mean_bst_s, r.total_time_s);
    std::printf("      F1 trajectory:");
    const std::size_t stride = std::max<std::size_t>(1, r.curve.size() / 8);
    for (std::size_t i = 0; i < r.curve.size(); i += stride) {
      std::printf(" %.0fs:%.0f%%", r.curve[i].time_s,
                  100.0 * r.curve[i].metric);
    }
    std::printf("\n");
  }
  return 0;
}
