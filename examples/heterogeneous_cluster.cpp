// Heterogeneous-cluster scenario (§6.2): one slow GPU in an 8-node cluster.
//
// Shows how each synchronization family degrades: barrier schemes (BSP,
// OSP's RS) throttle to the straggler, async schemes keep their pace but
// train on staler parameters, and SSP interpolates via its staleness bound.
//
//   ./build/examples/heterogeneous_cluster [slow_factor] [epochs]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/ssp.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const double slow = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;

  const runtime::WorkloadSpec spec = models::resnet50_cifar10();
  runtime::EngineConfig config;
  config.num_workers = 8;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;
  config.cluster.speed_factors.assign(8, 1.0);
  config.cluster.speed_factors[7] = slow;

  std::printf("== heterogeneity: worker 7 at %.0f%% speed, %s ==\n",
              100.0 * slow, spec.name.c_str());

  std::vector<std::unique_ptr<runtime::SyncModel>> syncs;
  syncs.push_back(std::make_unique<sync::BspSync>());
  syncs.push_back(std::make_unique<sync::AspSync>());
  syncs.push_back(std::make_unique<sync::SspSync>(3));
  syncs.push_back(std::make_unique<core::OspSync>());

  double bsp_throughput = 0.0;
  for (auto& sync : syncs) {
    runtime::Engine engine(spec, config, *sync);
    const runtime::RunResult r = engine.run();
    if (r.sync_name == "BSP") bsp_throughput = r.throughput;
    std::printf("%-9s tput=%7.1f img/s (%5.1f%% of BSP)  top-1=%6.2f%%  "
                "BST=%.3fs\n",
                r.sync_name.c_str(), r.throughput,
                bsp_throughput > 0.0 ? 100.0 * r.throughput / bsp_throughput
                                     : 100.0,
                100.0 * r.best_metric, r.mean_bst_s);
  }
  std::printf("\nhint: batch-size tuning (§6.2) can rebalance compute time "
              "across heterogeneous nodes; try speed_factors with matching "
              "per-worker batch sizes as an extension.\n");
  return 0;
}
