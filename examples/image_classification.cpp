// Image-classification comparison: run any paper workload under any sync
// model from the command line and compare against BSP.
//
//   ./build/examples/image_classification [workload] [sync] [workers] [epochs]
//     workload: resnet50 | vgg16 | inception | resnet101   (default resnet50)
//     sync:     osp | bsp | asp | r2sp | ssp               (default osp)
//
// Example: ./build/examples/image_classification vgg16 osp 8 20
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/r2sp.hpp"
#include "sync/ssp.hpp"

namespace {

osp::runtime::WorkloadSpec pick_workload(const std::string& name) {
  using namespace osp::models;
  if (name == "vgg16") return vgg16_cifar10();
  if (name == "inception") return inceptionv3_cifar100();
  if (name == "resnet101") return resnet101_imagenet();
  return resnet50_cifar10();
}

std::unique_ptr<osp::runtime::SyncModel> pick_sync(const std::string& name) {
  using namespace osp;
  if (name == "bsp") return std::make_unique<sync::BspSync>();
  if (name == "asp") return std::make_unique<sync::AspSync>();
  if (name == "r2sp") return std::make_unique<sync::R2spSync>();
  if (name == "ssp") return std::make_unique<sync::SspSync>(3);
  return std::make_unique<core::OspSync>();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osp;
  const std::string workload_name = argc > 1 ? argv[1] : "resnet50";
  const std::string sync_name = argc > 2 ? argv[2] : "osp";
  const std::size_t workers =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 8;
  const std::size_t epochs =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 15;

  const runtime::WorkloadSpec spec = pick_workload(workload_name);
  runtime::EngineConfig config;
  config.num_workers = workers;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;

  std::printf("== %s on %zu workers, %zu epochs ==\n", spec.name.c_str(),
              workers, epochs);

  auto run = [&](std::unique_ptr<runtime::SyncModel> sync) {
    runtime::Engine engine(spec, config, *sync);
    const runtime::RunResult r = engine.run();
    std::printf("%-8s  tput=%8.1f img/s  top-1=%6.2f%%  BST=%.3fs  "
                "BCT=%.3fs  time=%.1fs\n",
                r.sync_name.c_str(), r.throughput, 100.0 * r.best_metric,
                r.mean_bst_s, r.mean_bct_s, r.total_time_s);
    return r;
  };

  const runtime::RunResult chosen = run(pick_sync(sync_name));
  if (sync_name != "bsp") {
    const runtime::RunResult baseline = run(pick_sync("bsp"));
    std::printf("\n%s vs BSP: %.1f%% throughput, %+.2fpp top-1\n",
                chosen.sync_name.c_str(),
                100.0 * chosen.throughput / baseline.throughput,
                100.0 * (chosen.best_metric - baseline.best_metric));
  }
  return 0;
}
