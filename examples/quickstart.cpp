// Quickstart: train a small model with OSP on a simulated 4-worker cluster
// and print the time-to-accuracy trajectory.
//
//   ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library: pick a workload,
// pick a synchronization model, run the engine, read the results.
#include <cstdio>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace osp;

  // 1. A workload couples a trainable proxy model + dataset with the real
  //    model's communication/compute metadata (here: ResNet50-class).
  const runtime::WorkloadSpec workload = models::resnet50_cifar10();

  // 2. Cluster + training configuration: 4 workers, 10 Gbit/s links,
  //    12 epochs, the paper's LR schedule (0.1 halved every 10 epochs).
  runtime::EngineConfig config;
  config.num_workers = 4;
  config.max_epochs = 12;
  config.straggler_jitter = 0.05;
  config.seed = 42;

  // 3. The synchronization model under study: OSP with default options
  //    (PGP ranking, Algorithm 1 budget schedule, LGP correction).
  core::OspSync osp;

  // 4. Run. Gradients are computed for real; time is simulated.
  runtime::Engine engine(workload, config, osp);
  const runtime::RunResult result = engine.run();

  std::printf("workload:     %s\n", result.workload_name.c_str());
  std::printf("sync model:   %s\n", result.sync_name.c_str());
  std::printf("virtual time: %.1f s\n", result.total_time_s);
  std::printf("throughput:   %.1f images/s\n", result.throughput);
  std::printf("best top-1:   %.2f %%\n", 100.0 * result.best_metric);
  std::printf("mean BST:     %.3f s (blocking sync per iteration)\n",
              result.mean_bst_s);
  std::printf("ICS budget:   %.1f MB of U_max %.1f MB\n",
              osp.current_ics_budget() / 1e6, osp.u_max() / 1e6);

  std::printf("\ntime-to-accuracy curve:\n");
  for (const auto& point : result.curve) {
    std::printf("  t=%7.1fs  samples=%7.0f  top-1=%5.2f%%  loss=%.3f\n",
                point.time_s, point.samples, 100.0 * point.metric,
                point.loss);
  }
  return 0;
}
