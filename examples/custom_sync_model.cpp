// Extending the library: writing your own synchronization model.
//
// Implements Local SGD (periodic model averaging): workers run K local
// iterations between synchronizations, then push full models for averaging
// — a popular communication-reduction scheme, built entirely on the public
// SyncModel API. Compares it against BSP and OSP.
//
//   ./build/examples/custom_sync_model [local_steps] [epochs]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "sync/transfer.hpp"
#include "util/vec_math.hpp"

namespace {

using namespace osp;

/// Local SGD: each worker applies its own gradient locally; every
/// `local_steps` iterations all workers synchronize by pushing their full
/// parameter vectors to the PS, which averages them and broadcasts the
/// result (with a barrier, like BSP but K× less often).
class LocalSgdSync : public runtime::SyncModel {
 public:
  explicit LocalSgdSync(std::size_t local_steps)
      : local_steps_(local_steps) {}

  [[nodiscard]] std::string name() const override {
    return "LocalSGD(k=" + std::to_string(local_steps_) + ")";
  }

  void attach(runtime::Engine& eng) override {
    SyncModel::attach(eng);
    arrived_ = 0;
  }

  void on_gradient_ready(std::size_t worker) override {
    runtime::Engine& e = eng();
    // Local step: apply this worker's gradient to its own replica.
    util::axpy(static_cast<float>(-e.current_lr()),
               e.worker_gradient(worker), e.worker_params(worker));
    const bool sync_round =
        (e.worker_iteration(worker) + 1) % local_steps_ == 0;
    if (!sync_round) {
      // Keep training locally; costs no communication.
      e.finish_sync(worker);
      return;
    }
    // Synchronization round: push the whole model for averaging.
    sync::transfer(e, e.cluster().route_to_ps(worker), e.model_bytes(),
                   [this] { on_push_arrived(); });
  }

 private:
  void on_push_arrived() {
    runtime::Engine& e = eng();
    if (++arrived_ < e.num_workers()) return;
    arrived_ = 0;
    // Average the replicas into the global model.
    auto global = e.global_params();
    util::fill(global, 0.0f);
    const float scale = 1.0f / static_cast<float>(e.num_workers());
    for (std::size_t w = 0; w < e.num_workers(); ++w) {
      util::axpy(scale, e.worker_params(w), global);
    }
    e.ps_submit(e.ps_apply_delay(e.model_bytes(), 3.0), [this] {
      runtime::Engine& en = eng();
      for (std::size_t w = 0; w < en.num_workers(); ++w) {
        sync::transfer(en, en.cluster().route_from_ps(w), en.model_bytes(),
                       [this, w] {
                         runtime::Engine& e2 = eng();
                         util::copy(e2.global_params(),
                                    e2.worker_params(w));
                         e2.finish_sync(w);
                       });
      }
    });
  }

  std::size_t local_steps_;
  std::size_t arrived_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t local_steps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 15;

  const runtime::WorkloadSpec spec = models::resnet50_cifar10();
  runtime::EngineConfig config;
  config.num_workers = 8;
  config.max_epochs = epochs;
  config.straggler_jitter = 0.05;

  std::printf("== custom sync model demo: Local SGD vs BSP vs OSP ==\n");
  auto report = [&](runtime::SyncModel& sync) {
    runtime::Engine engine(spec, config, sync);
    const runtime::RunResult r = engine.run();
    std::printf("%-14s tput=%7.1f img/s  top-1=%6.2f%%  BST=%.3fs\n",
                r.sync_name.c_str(), r.throughput, 100.0 * r.best_metric,
                r.mean_bst_s);
  };
  LocalSgdSync local(local_steps);
  sync::BspSync bsp;
  core::OspSync osp;
  report(local);
  report(bsp);
  report(osp);
  return 0;
}
