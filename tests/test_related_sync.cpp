// Tests for the §7 related-work sync models (DSSP, CASP) and the §6.2
// batch-balancing support.
#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "sync/casp.hpp"
#include "sync/dssp.hpp"
#include "util/check.hpp"

namespace osp {
namespace {

runtime::EngineConfig rel_config(std::size_t workers = 4,
                                 std::size_t epochs = 4) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 29;
  cfg.straggler_jitter = 0.05;
  return cfg;
}

TEST(Dssp, TrainsAndNames) {
  const auto spec = models::tiny_mlp();
  sync::DsspSync dssp(1, 4);
  runtime::Engine engine(spec, rel_config(), dssp);
  const auto r = engine.run();
  EXPECT_EQ(r.sync_name, "DSSP(1..4)");
  EXPECT_GT(r.best_metric, 0.5);
  EXPECT_DOUBLE_EQ(r.total_samples, 4.0 * 4.0 * 8.0 * 16.0);
}

TEST(Dssp, BoundStaysInRange) {
  const auto spec = models::tiny_mlp();
  auto cfg = rel_config(3, 8);
  cfg.cluster.speed_factors = {1.0, 1.0, 0.4};  // force spread
  sync::DsspSync dssp(1, 5);
  runtime::Engine engine(spec, cfg, dssp);
  (void)engine.run();
  EXPECT_GE(dssp.current_bound(), 1u);
  EXPECT_LE(dssp.current_bound(), 5u);
}

TEST(Dssp, TightensUnderStragglers) {
  // With a strong straggler the spread hits the bound every epoch, so the
  // bound must walk down toward the minimum.
  const auto spec = models::tiny_mlp();
  auto cfg = rel_config(2, 10);
  cfg.cluster.speed_factors = {1.0, 0.25};
  sync::DsspSync dssp(1, 8);
  runtime::Engine engine(spec, cfg, dssp);
  (void)engine.run();
  EXPECT_LT(dssp.current_bound(), 8u);
}

TEST(Dssp, RejectsInvertedBounds) {
  EXPECT_THROW(sync::DsspSync(5, 2), util::CheckError);
}

TEST(Casp, GroupsBySpeed) {
  const auto spec = models::tiny_mlp();
  auto cfg = rel_config(4, 2);
  cfg.cluster.speed_factors = {1.0, 1.0, 0.5, 0.5};
  sync::CaspSync casp;
  runtime::Engine engine(spec, cfg, casp);
  const auto r = engine.run();
  EXPECT_EQ(casp.num_groups(), 2u);
  EXPECT_EQ(r.sync_name, "CASP(g=2)");
  EXPECT_DOUBLE_EQ(r.total_samples, 4.0 * 2.0 * 8.0 * 16.0);
}

TEST(Casp, HomogeneousIsOneGroupLikeBsp) {
  const auto spec = models::tiny_mlp();
  const auto cfg = rel_config(3, 3);
  sync::CaspSync casp;
  runtime::Engine e1(spec, cfg, casp);
  const auto rc = e1.run();
  EXPECT_EQ(casp.num_groups(), 1u);
  sync::BspSync bsp;
  runtime::Engine e2(spec, cfg, bsp);
  const auto rb = e2.run();
  // One group == global barrier + mean aggregation: identical numerics.
  ASSERT_EQ(rc.curve.size(), rb.curve.size());
  for (std::size_t i = 0; i < rc.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(rc.curve[i].metric, rb.curve[i].metric);
  }
}

TEST(Casp, FastGroupOutpacesSlowGroup) {
  const auto spec = models::resnet50_cifar10();
  auto cfg = rel_config(4, 4);
  cfg.cluster.speed_factors = {1.0, 1.0, 0.4, 0.4};
  sync::CaspSync casp;
  sync::BspSync bsp;
  runtime::Engine e1(spec, cfg, casp);
  const auto rc = e1.run();
  runtime::Engine e2(spec, cfg, bsp);
  const auto rb = e2.run();
  // The fast group no longer waits for the slow one each iteration.
  EXPECT_GT(rc.throughput, rb.throughput);
}

TEST(BatchBalancing, EqualizesComputeAndWeights) {
  const auto spec = models::tiny_mlp();
  auto cfg = rel_config(2, 2);
  cfg.cluster.speed_factors = {1.0, 0.5};
  cfg.balance_batch_to_speed = true;
  sync::BspSync bsp;
  runtime::Engine engine(spec, cfg, bsp);
  EXPECT_EQ(engine.worker_batch(0), 16u);
  EXPECT_EQ(engine.worker_batch(1), 8u);
  EXPECT_NEAR(engine.worker_weight(0), 16.0 / 24.0, 1e-12);
  EXPECT_NEAR(engine.worker_weight(1), 8.0 / 24.0, 1e-12);
  const auto r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(BatchBalancing, RestoresBspThroughputUnderHeterogeneity) {
  // §6.2: with batch ∝ speed, the barrier no longer throttles to the
  // straggler (per-iteration time equalizes), so BSP regains throughput
  // relative to the unbalanced heterogeneous run.
  const auto spec = models::resnet50_cifar10();
  auto cfg = rel_config(4, 4);
  cfg.cluster.speed_factors = {1.0, 1.0, 1.0, 0.5};
  sync::BspSync plain;
  runtime::Engine e1(spec, cfg, plain);
  const auto r_plain = e1.run();

  auto balanced_cfg = cfg;
  balanced_cfg.balance_batch_to_speed = true;
  sync::BspSync balanced;
  runtime::Engine e2(spec, balanced_cfg, balanced);
  const auto r_balanced = e2.run();
  // Compare per-iteration pace (samples differ: balanced batches shrink).
  const double pace_plain = r_plain.total_samples / r_plain.total_time_s;
  const double pace_balanced =
      r_balanced.total_samples / r_balanced.total_time_s;
  EXPECT_GT(pace_balanced, pace_plain);
}

TEST(BatchBalancing, UniformWeightsByDefault) {
  const auto spec = models::tiny_mlp();
  sync::BspSync bsp;
  runtime::Engine engine(spec, rel_config(4, 1), bsp);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(engine.worker_weight(w), 0.25);
    EXPECT_EQ(engine.worker_batch(w), 16u);
  }
}

}  // namespace
}  // namespace osp
