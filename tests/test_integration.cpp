// Cross-module integration tests: QA pipeline end-to-end, trace-derived
// comm shares, OSP determinism, and degradation equivalences.
#include <gtest/gtest.h>

#include <numeric>

#include "core/osp_sync.hpp"
#include "data/loader.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"
#include "nn/registry.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"

namespace osp {
namespace {

TEST(QaPipeline, SingleWorkerLearnsSpans) {
  // The attention + span-head stack must learn the synthetic QA task with
  // plain SGD — the foundation under the BERTbase workload.
  const auto spec = models::bertbase_squad();
  nn::Sequential model = spec.build_model(3);
  nn::FlatModel flat(model);
  std::vector<float> params(flat.total_params());
  std::vector<float> grad(flat.total_params());
  flat.gather_params(params);
  nn::SgdOptimizer opt(params.size());
  data::ShardLoader loader(*spec.train, 0, 8, spec.batch_size, 5);

  double first_f1 = -1.0;
  double best_f1 = 0.0;
  for (std::size_t epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
      const data::Batch batch = loader.batch(epoch, b);
      flat.scatter_params(params);
      model.zero_grad();
      const tensor::Tensor logits = model.forward(batch.inputs, true);
      const nn::LossResult loss =
          nn::span_cross_entropy(logits, batch.starts, batch.ends);
      (void)model.backward(loss.grad_logits);
      flat.gather_grads(grad);
      opt.step(params, grad, 0.1);
    }
    // Evaluate on a slice of the eval set.
    flat.scatter_params(params);
    std::vector<std::size_t> idx(48);
    std::iota(idx.begin(), idx.end(), 0);
    const data::Batch eval = spec.eval->make_batch(idx);
    const tensor::Tensor logits = model.forward(eval.inputs, false);
    const double f1 = nn::batch_span_f1(logits, eval.starts, eval.ends);
    best_f1 = std::max(best_f1, f1);
    if (first_f1 < 0.0) first_f1 = f1;
  }
  EXPECT_GT(best_f1, 0.45) << "QA proxy failed to learn";
  EXPECT_GE(best_f1, first_f1);
}

TEST(TraceIntegration, OspSyncShareBelowBsp) {
  // The whole point of the two-stage design, read off the trace.
  const auto spec = models::resnet50_cifar10();
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 8;
  cfg.seed = 9;
  cfg.record_trace = true;

  sync::BspSync bsp;
  runtime::Engine e1(spec, cfg, bsp);
  (void)e1.run();
  const double bsp_share = e1.trace().blocking_sync_fraction();

  core::OspSync osp;
  runtime::Engine e2(spec, cfg, osp);
  (void)e2.run();
  const double osp_share = e2.trace().blocking_sync_fraction();

  EXPECT_LT(osp_share, bsp_share);
  EXPECT_GT(bsp_share, 0.3);  // BSP on ResNet50/10G is comm-heavy
}

TEST(OspDeterminism, IdenticalRunsBitwiseEqualCurves) {
  const auto spec = models::tiny_mlp();
  auto run_once = [&] {
    runtime::EngineConfig cfg;
    cfg.num_workers = 4;
    cfg.max_epochs = 5;
    cfg.seed = 77;
    cfg.straggler_jitter = 0.1;
    core::OspSync osp;
    runtime::Engine engine(spec, cfg, osp);
    return engine.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].metric, b.curve[i].metric);
    EXPECT_DOUBLE_EQ(a.curve[i].loss, b.curve[i].loss);
  }
}

TEST(Degradation, OspFixedZeroMatchesBspAccuracyExactly) {
  // §4.3: all gradients in RS ⇒ the numerics are BSP's, not just the
  // timing. Curves must agree to float precision.
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 4;
  cfg.seed = 31;

  sync::BspSync bsp;
  runtime::Engine e1(spec, cfg, bsp);
  const auto rb = e1.run();

  core::OspOptions opts;
  opts.fixed_budget_fraction = 0.0;
  core::OspSync osp(opts);
  runtime::Engine e2(spec, cfg, osp);
  const auto ro = e2.run();

  ASSERT_EQ(rb.curve.size(), ro.curve.size());
  for (std::size_t i = 0; i < rb.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(rb.curve[i].metric, ro.curve[i].metric);
    EXPECT_NEAR(rb.curve[i].loss, ro.curve[i].loss, 1e-12);
  }
}

TEST(LearningRateSchedule, HalvesInLongRuns) {
  // 12 epochs crosses the paper's 10-epoch decay boundary; the engine must
  // keep training (sanity: loss keeps falling) with the decayed LR.
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 12;
  cfg.seed = 13;
  sync::AspSync asp;
  runtime::Engine engine(spec, cfg, asp);
  const auto r = engine.run();
  ASSERT_EQ(r.epoch_losses.size(), 12u);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(Momentum, EngineSupportsMomentumTraining) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 4;
  cfg.momentum = 0.9;
  cfg.lr_schedule = nn::StepLrSchedule(0.02, 10, 0.5);  // momentum needs lower lr
  sync::BspSync bsp;
  runtime::Engine engine(spec, cfg, bsp);
  const auto r = engine.run();
  EXPECT_GT(r.best_metric, 0.6);
}

}  // namespace
}  // namespace osp
