// Property suite for the key-range KV core: key-range split/merge
// invariants, partitioning (byte-balanced + consistent hash ring),
// versioned segment store, message round-trips, and the composable
// filter pipeline — every filter alone plus all pairwise and triple
// compositions through serialize → deserialize → decode.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "kv/compress.hpp"
#include "kv/filter.hpp"
#include "kv/key.hpp"
#include "kv/message.hpp"
#include "kv/partition.hpp"
#include "kv/store.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace osp {
namespace {

// ----------------------------------------------------------- key ranges

TEST(KeyRange, SplitCoversRangeContiguously) {
  for (const std::size_t n : {1u, 2u, 3u, 7u, 16u}) {
    const kv::KeyRange r{10, 143};
    const auto parts = kv::split_range(r, n);
    ASSERT_EQ(parts.size(), n);
    kv::Key cursor = r.begin;
    std::size_t total = 0;
    for (const auto& p : parts) {
      EXPECT_EQ(p.begin, cursor);  // contiguous, in order
      EXPECT_LE(p.begin, p.end);
      cursor = p.end;
      total += p.size();
    }
    EXPECT_EQ(cursor, r.end);
    EXPECT_EQ(total, r.size());
    // Near-equal: sizes differ by at most one.
    std::size_t lo = parts[0].size(), hi = parts[0].size();
    for (const auto& p : parts) {
      lo = std::min(lo, p.size());
      hi = std::max(hi, p.size());
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(KeyRange, SplitMergeRoundTrip) {
  const kv::KeyRange r{5, 77};
  for (const std::size_t n : {1u, 4u, 9u, 100u}) {
    const auto merged = kv::merge_ranges(kv::split_range(r, n));
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0], r);
  }
}

TEST(KeyRange, MergeCoalescesAdjacentAndDropsEmpties) {
  const std::vector<kv::KeyRange> in = {
      {0, 0}, {1, 3}, {3, 5}, {7, 7}, {8, 9}};
  const auto out = kv::merge_ranges(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (kv::KeyRange{1, 5}));
  EXPECT_EQ(out[1], (kv::KeyRange{8, 9}));
}

TEST(KeyRange, MergeRejectsOverlapAndDisorder) {
  EXPECT_THROW((void)kv::merge_ranges({{0, 5}, {3, 8}}), util::CheckError);
  EXPECT_THROW((void)kv::merge_ranges({{5, 8}, {0, 3}}), util::CheckError);
  EXPECT_THROW((void)kv::merge_ranges({{5, 3}}), util::CheckError);
}

TEST(KeyRange, SplitRejectsZeroParts) {
  EXPECT_THROW((void)kv::split_range({0, 10}, 0), util::CheckError);
}

TEST(KeyRange, ContainsMatchesHalfOpenBounds) {
  const kv::KeyRange r{3, 6};
  EXPECT_FALSE(r.contains(2));
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(5));
  EXPECT_FALSE(r.contains(6));
  EXPECT_TRUE((kv::KeyRange{4, 4}).empty());
}

// ---------------------------------------------------------- partitioning

TEST(Partition, EveryKeyExactlyOneShard) {
  const std::vector<double> bytes = {50, 30, 20, 20, 10, 10, 5, 5};
  const auto part = kv::byte_balanced_partition(bytes, 3);
  ASSERT_EQ(part.num_keys(), bytes.size());
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    EXPECT_LT(part.shard_of(k), 3u);
  }
  const auto loads = kv::partition_bytes(bytes, part);
  double total = 0.0;
  for (double l : loads) total += l;
  EXPECT_DOUBLE_EQ(total, 150.0);  // no key lost, none double-counted
}

TEST(Partition, SelectedBytesSumsAscending) {
  const std::vector<double> bytes = {1.0, 2.0, 4.0, 8.0};
  const std::vector<std::uint8_t> keep = {1, 0, 1, 1};
  EXPECT_DOUBLE_EQ(kv::selected_bytes(keep, bytes), 13.0);
  EXPECT_DOUBLE_EQ(kv::selected_bytes({{0, 0, 0, 0}}, bytes), 0.0);
}

TEST(ConsistentHash, EveryKeyExactlyOneShardAndDeterministic) {
  const kv::ConsistentHashRing ring(4);
  const kv::ConsistentHashRing again(4);
  const auto part = ring.partition(10000);
  ASSERT_EQ(part.num_keys(), 10000u);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t k = 0; k < part.num_keys(); ++k) {
    ASSERT_LT(part.owner[k], 4u);
    ++counts[part.owner[k]];
    EXPECT_EQ(part.owner[k], ring.shard_of(k));
    EXPECT_EQ(part.owner[k], again.shard_of(k));  // pure function of salt
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 0u) << "shard " << s << " owns no keys";
  }
}

TEST(ConsistentHash, RebalanceMovesBoundedFractionOnlyToNewShard) {
  const std::size_t kKeys = 10000;
  const auto before = kv::ConsistentHashRing(4).partition(kKeys);
  const auto after = kv::ConsistentHashRing(5).partition(kKeys);
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    if (after.owner[k] == before.owner[k]) continue;
    ++moved;
    // Growth only ever moves keys onto the new shard's arcs.
    EXPECT_EQ(after.owner[k], 4u);
  }
  // Expectation is 1/(P+1) = 20% of the key space; allow generous noise
  // from the finite virtual-node count.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(kKeys), 0.35);
}

// ----------------------------------------------------------------- store

TEST(KvStore, VersionsBumpAndStamp) {
  kv::KvStore store;
  const std::vector<std::size_t> offsets = {0, 4, 10};
  const std::vector<std::size_t> numels = {4, 6, 2};
  store.init(offsets, numels);
  ASSERT_EQ(store.num_segments(), 3u);
  EXPECT_EQ(store.key_range(), (kv::KeyRange{0, 3}));
  EXPECT_EQ(store.version(1), 0u);

  store.bump(1);
  store.bump_selected({{1, 0, 1}});
  store.bump_all();
  EXPECT_EQ(store.version(0), 2u);
  EXPECT_EQ(store.version(1), 2u);
  EXPECT_EQ(store.version(2), 2u);
  store.bump(2);

  kv::KvMessage by_keys;
  by_keys.keys = {2, 0};
  store.stamp_versions(by_keys);
  ASSERT_EQ(by_keys.versions.size(), 2u);
  EXPECT_EQ(by_keys.versions[0], 3u);  // follows the key list order
  EXPECT_EQ(by_keys.versions[1], 2u);

  kv::KvMessage by_range;
  by_range.range = store.key_range();
  store.stamp_versions(by_range);
  ASSERT_EQ(by_range.versions.size(), 3u);
  EXPECT_EQ(by_range.versions[2], 3u);
}

TEST(KvStore, SaveLoadRoundTripAndLayoutGuard) {
  kv::KvStore store;
  store.init({{0, 8}}, {{8, 8}});
  store.bump(0);
  store.bump(0);
  store.bump(1);
  util::serde::Writer w;
  store.save_state(w);

  kv::KvStore same;
  same.init({{0, 8}}, {{8, 8}});
  util::serde::Reader r(w.data());
  same.load_state(r);
  r.expect_done();
  EXPECT_EQ(same.version(0), 2u);
  EXPECT_EQ(same.version(1), 1u);

  kv::KvStore other;
  other.init({{0, 4}}, {{4, 8}});
  util::serde::Reader r2(w.data());
  EXPECT_THROW(other.load_state(r2), util::CheckError);
}

// -------------------------------------------------------------- messages

TEST(KvMessage, BeginResetsEverythingButTheValueBuffer) {
  kv::KvMessage m;
  m.values = {1.0f, 2.0f};
  m.keys = {7};
  m.versions = {1};
  m.indices = {0};
  m.sparse = m.delta_encoded = m.compact = true;
  m.key_sig = 9;
  m.set_accounting(64.0);
  m.begin(kv::Op::kPullResponse, 3, 11, {2, 9});
  EXPECT_EQ(m.op, kv::Op::kPullResponse);
  EXPECT_EQ(m.sender, 3u);
  EXPECT_EQ(m.round, 11u);
  EXPECT_EQ(m.range, (kv::KeyRange{2, 9}));
  EXPECT_TRUE(m.keys.empty() && m.versions.empty() && m.indices.empty());
  EXPECT_FALSE(m.sparse || m.delta_encoded || m.compact);
  EXPECT_EQ(m.key_sig, 0u);
  // A freshly begun message still pays the fixed serialization frame.
  EXPECT_DOUBLE_EQ(m.wire_bytes(), kv::kFrameOverheadBytes);
  EXPECT_EQ(m.values.size(), 2u);  // sender refills in place
}

TEST(KvMessage, DenseSerializeRoundTrip) {
  kv::KvMessage m;
  m.begin(kv::Op::kPush, 2, 5, {0, 3});
  m.keys = {0, 1, 2};
  m.versions = {4, 4, 5};
  m.set_values(std::vector<float>{0.5f, -1.0f, 2.0f}, 96.0);
  m.meta_bytes = 8.0;
  const auto d = kv::deserialize(kv::serialize(m));
  EXPECT_EQ(d.op, m.op);
  EXPECT_EQ(d.sender, m.sender);
  EXPECT_EQ(d.round, m.round);
  EXPECT_EQ(d.range, m.range);
  EXPECT_EQ(d.keys, m.keys);
  EXPECT_EQ(d.versions, m.versions);
  EXPECT_EQ(d.values, m.values);
  EXPECT_FALSE(d.compact);
  EXPECT_DOUBLE_EQ(d.wire_bytes(), m.wire_bytes());
}

TEST(KvMessage, SparseSerializeCompactsThenScattersBack) {
  kv::KvMessage m;
  m.begin(kv::Op::kPush, 0, 1, {0, 1});
  m.set_values(std::vector<float>{0.0f, 3.0f, 0.0f, -2.0f}, 16.0);
  m.indices = {1, 3};
  m.sparse = true;
  kv::KvMessage d = kv::deserialize(kv::serialize(m));
  EXPECT_TRUE(d.compact);
  ASSERT_EQ(d.values.size(), 2u);  // support only on the wire
  EXPECT_EQ(d.values[0], 3.0f);
  EXPECT_EQ(d.values[1], -2.0f);
  kv::TopKFilter scatter(kv::CompressionMode::TopK, 1.0, 0);
  scatter.decode(d);
  EXPECT_FALSE(d.compact);
  EXPECT_EQ(d.values, m.values);
}

// ------------------------------------------------------- filters, singly

TEST(Filters, KeyCacheInlineFirstThenSignature) {
  kv::KeyCacheFilter sender;
  kv::KeyCacheFilter receiver;
  const std::vector<kv::Key> keys = {3, 1, 4, 1, 5};
  for (int round = 0; round < 3; ++round) {
    kv::KvMessage m;
    m.begin(kv::Op::kPush, 0, static_cast<std::uint64_t>(round), {});
    m.keys = keys;
    sender.encode(m);
    if (round == 0) {
      EXPECT_EQ(m.key_sig, 0u);
      EXPECT_DOUBLE_EQ(m.index_bytes, 8.0 * 5.0);  // list travels inline
    } else {
      EXPECT_NE(m.key_sig, 0u);
      EXPECT_TRUE(m.keys.empty());
      EXPECT_DOUBLE_EQ(m.meta_bytes, 8.0);  // signature only
    }
    kv::KvMessage d = kv::deserialize(kv::serialize(m));
    receiver.decode(d);
    EXPECT_EQ(d.keys, keys);
    EXPECT_EQ(d.key_sig, 0u);
  }
}

TEST(Filters, KeyCacheUnknownSignatureRejected) {
  kv::KeyCacheFilter receiver;
  kv::KvMessage m;
  m.key_sig = 1234;
  EXPECT_THROW(receiver.decode(m), util::CheckError);
}

TEST(Filters, DeltaXorLosslessAndCheaperWhenMostlyUnchanged) {
  kv::DeltaXorFilter sender;
  kv::DeltaXorFilter receiver;
  std::vector<float> base(64);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = 0.25f * static_cast<float>(i) - 3.0f;
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<float> vals = base;
    vals[static_cast<std::size_t>(round)] += 1.0f;  // one element changes
    kv::KvMessage m;
    m.begin(kv::Op::kPush, 1, static_cast<std::uint64_t>(round), {0, 64});
    m.set_values(vals, 4.0 * 64.0);
    sender.encode(m);
    if (round == 0) {
      EXPECT_FALSE(m.delta_encoded);  // no baseline yet: raw
      EXPECT_DOUBLE_EQ(m.value_bytes, 256.0);
    } else {
      EXPECT_TRUE(m.delta_encoded);
      EXPECT_LT(m.value_bytes, 256.0 * 0.25);  // bitmap + few changed bytes
    }
    kv::KvMessage d = kv::deserialize(kv::serialize(m));
    receiver.decode(d);
    EXPECT_FALSE(d.delta_encoded);
    EXPECT_EQ(d.values, vals);  // bit-exact (XOR, not float subtraction)
  }
}

TEST(Filters, DeltaXorSkipsSparseMessages) {
  kv::DeltaXorFilter f;
  kv::KvMessage m;
  m.set_values(std::vector<float>{1.0f, 0.0f}, 8.0);
  m.indices = {0};
  m.sparse = true;
  f.encode(m);
  EXPECT_FALSE(m.delta_encoded);
  EXPECT_DOUBLE_EQ(m.value_bytes, 8.0);
}

TEST(Filters, QuantizeMatchesKernelAndAccounting) {
  std::vector<float> vals = {0.5f, -1.0f, 0.25f, 0.8f};
  std::vector<float> expected = vals;
  const float scale = kv::quantize_dequantize_int8(expected);
  kv::QuantizeInt8Filter f;
  kv::KvMessage m;
  m.set_values(vals, 16.0);
  f.encode(m);
  EXPECT_EQ(m.values, expected);
  EXPECT_FLOAT_EQ(m.quant_scale, scale);
  EXPECT_EQ(m.quant_bits, 8);
  EXPECT_DOUBLE_EQ(m.value_bytes, 4.0);
  EXPECT_DOUBLE_EQ(m.meta_bytes, 4.0);
}

TEST(Filters, TopKKeepsLargestAndAccountsKeptElements) {
  std::vector<float> vals(16);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = (i % 2 != 0 ? -1.0f : 1.0f) * static_cast<float>(i + 1);
  }
  kv::TopKFilter f(kv::CompressionMode::TopK, 0.25, 11);
  kv::KvMessage m;
  m.set_values(vals, 64.0);
  f.encode(m);
  EXPECT_EQ(f.last_kept(), 4u);
  EXPECT_TRUE(m.sparse);
  ASSERT_EQ(m.indices.size(), 4u);
  for (std::uint32_t i : m.indices) EXPECT_GE(i, 12u);  // the top quarter
  EXPECT_DOUBLE_EQ(m.value_bytes, 16.0);
  EXPECT_DOUBLE_EQ(m.index_bytes, 16.0);
  // Round trip through the wire reproduces the dense receiver view.
  const std::vector<float> view = m.values;
  kv::KvMessage d = kv::deserialize(kv::serialize(m));
  f.decode(d);
  EXPECT_EQ(d.values, view);
}

TEST(Filters, GibZeroesDroppedBlocksAndCharges) {
  kv::GibFilter f(/*attach_bitmap=*/true);
  f.set_blocks({{0, 4, 100.0}, {4, 4, 200.0}, {8, 4, 400.0}});
  f.set_selection({{1, 0, 1}});
  std::vector<float> vals(12, 1.0f);
  kv::KvMessage m;
  m.set_values(vals, 700.0);
  f.encode(m);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(m.values[i], i >= 4 && i < 8 ? 0.0f : 1.0f);
  }
  EXPECT_DOUBLE_EQ(m.value_bytes, 500.0);          // kept blocks only
  EXPECT_DOUBLE_EQ(m.index_bytes, 4.0 + 1.0);      // u32 count + 3 bits
  EXPECT_EQ(m.block_mask, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_THROW(f.set_selection({{1, 0}}), util::CheckError);
}

TEST(Filters, PipelineStateRoundTripRestoresRandomKStream) {
  kv::FilterPipeline p;
  auto* rk = static_cast<kv::TopKFilter*>(&p.add(
      std::make_unique<kv::TopKFilter>(kv::CompressionMode::RandomK, 0.25,
                                       99)));
  std::vector<float> vals(32, 1.0f);
  util::serde::Writer w;
  p.save_state(w);
  kv::KvMessage a;
  a.set_values(vals, 128.0);
  rk->encode(a);
  util::serde::Reader r(w.data());
  p.load_state(r);  // rewind the selection stream
  kv::KvMessage b;
  b.set_values(vals, 128.0);
  rk->encode(b);
  EXPECT_EQ(a.indices, b.indices);  // same stream, same support
}

// --------------------------------------- filter compositions (pairs, triples)
//
// Canonical stage order: keycache ∘ gib ∘ topk ∘ q8 ∘ deltaxor. In this
// order every subset composes safely: addressing first, block projection
// before element selection, the quantizer transforms whatever value
// bytes remain, and the XOR delta runs last so it no-ops on sparse
// payloads (a positional delta over a changing support is meaningless).
// The invariant checked for every composition: sender-encode →
// serialize → deserialize → receiver-decode yields exactly the lossy
// projection of the input (GIB zeroing, then top-k, then int8), with
// keys restored and all structural flags cleared.

enum Stage : unsigned { kKeyCache = 0, kGib, kTopK, kQ8, kDeltaXor };

constexpr std::size_t kBlocks = 4;
constexpr std::size_t kBlockNumel = 8;
constexpr std::size_t kNumel = kBlocks * kBlockNumel;
constexpr double kTopKFrac = 0.25;

kv::FilterPipeline make_pipeline(const std::set<Stage>& stages) {
  kv::FilterPipeline p;
  if (stages.count(kKeyCache) != 0) {
    p.add(std::make_unique<kv::KeyCacheFilter>());
  }
  if (stages.count(kGib) != 0) {
    auto gib = std::make_unique<kv::GibFilter>(/*attach_bitmap=*/true);
    std::vector<kv::GibFilter::Block> blocks;
    for (std::size_t b = 0; b < kBlocks; ++b) {
      blocks.push_back(
          {b * kBlockNumel, kBlockNumel, 4.0 * kBlockNumel});
    }
    gib->set_blocks(std::move(blocks));
    gib->set_selection({{1, 0, 1, 1}});  // drop block 1
    p.add(std::move(gib));
  }
  if (stages.count(kTopK) != 0) {
    p.add(std::make_unique<kv::TopKFilter>(kv::CompressionMode::TopK,
                                           kTopKFrac, 5));
  }
  if (stages.count(kQ8) != 0) {
    p.add(std::make_unique<kv::QuantizeInt8Filter>());
  }
  if (stages.count(kDeltaXor) != 0) {
    p.add(std::make_unique<kv::DeltaXorFilter>());
  }
  return p;
}

std::vector<float> round_values(int round) {
  std::vector<float> vals(kNumel);
  for (std::size_t i = 0; i < kNumel; ++i) {
    // Distinct magnitudes (deterministic top-k), varying across rounds.
    vals[i] = (i % 2 != 0 ? -1.0f : 1.0f) * 0.01f *
              static_cast<float>(i + 1 + 7 * static_cast<std::size_t>(round));
  }
  return vals;
}

/// The lossy projection the receiver must end up with, computed
/// independently of the pipeline.
std::vector<float> expected_view(std::vector<float> vals,
                                 const std::set<Stage>& stages) {
  if (stages.count(kGib) != 0) {
    for (std::size_t i = kBlockNumel; i < 2 * kBlockNumel; ++i) {
      vals[i] = 0.0f;  // the dropped block
    }
  }
  if (stages.count(kTopK) != 0) {
    util::Rng unused(1);  // TopK selection is threshold-based, RNG untouched
    (void)kv::sparsify(vals, kv::CompressionMode::TopK, kTopKFrac, unused);
  }
  if (stages.count(kQ8) != 0) (void)kv::quantize_dequantize_int8(vals);
  return vals;
}

void check_composition(const std::set<Stage>& stages) {
  kv::FilterPipeline sender = make_pipeline(stages);
  kv::FilterPipeline receiver = make_pipeline(stages);
  SCOPED_TRACE("pipeline " + sender.name());
  const std::vector<kv::Key> keys = {0, 1, 2, 3};
  for (int round = 0; round < 3; ++round) {
    const std::vector<float> vals = round_values(round);
    kv::KvMessage m;
    m.begin(kv::Op::kPush, 1, static_cast<std::uint64_t>(round),
            {0, kBlocks});
    m.keys = keys;
    m.set_values(vals, 4.0 * static_cast<double>(kNumel));
    sender.encode(m);
    EXPECT_GT(m.wire_bytes(), 0.0);

    kv::KvMessage d = kv::deserialize(kv::serialize(m));
    EXPECT_DOUBLE_EQ(d.wire_bytes(), m.wire_bytes());
    receiver.decode(d);

    EXPECT_EQ(d.values, expected_view(vals, stages));
    EXPECT_EQ(d.keys, keys);
    EXPECT_EQ(d.key_sig, 0u);
    EXPECT_FALSE(d.compact);
    EXPECT_FALSE(d.delta_encoded);
  }
}

TEST(FilterCompositions, AllPairs) {
  const std::array<Stage, 5> all = {kKeyCache, kGib, kTopK, kQ8, kDeltaXor};
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      check_composition({all[a], all[b]});
    }
  }
}

TEST(FilterCompositions, AllTriples) {
  const std::array<Stage, 5> all = {kKeyCache, kGib, kTopK, kQ8, kDeltaXor};
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      for (std::size_t c = b + 1; c < all.size(); ++c) {
        check_composition({all[a], all[b], all[c]});
      }
    }
  }
}

TEST(FilterCompositions, GibTopKQ8AccountingComposes) {
  // The acceptance stack: GIB ∘ top-k ∘ int8. Value bytes shrink at each
  // stage (block projection → kept elements → a quarter of that), the
  // index channel carries the bitmap + kept indices, meta the fp32 scale.
  const std::set<Stage> stages = {kGib, kTopK, kQ8};
  kv::FilterPipeline p = make_pipeline(stages);
  kv::KvMessage m;
  m.begin(kv::Op::kPush, 0, 1, {0, kBlocks});
  m.set_values(round_values(0), 4.0 * static_cast<double>(kNumel));
  p.encode(m);
  const double kept = static_cast<double>(m.indices.size());
  EXPECT_DOUBLE_EQ(m.value_bytes, kept * 4.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.index_bytes,
                   4.0 + (kBlocks + 7) / 8 + kept * 4.0);
  EXPECT_DOUBLE_EQ(m.meta_bytes, 4.0);
  EXPECT_DOUBLE_EQ(m.wire_bytes(), m.value_bytes + m.index_bytes +
                                       m.meta_bytes + kv::kFrameOverheadBytes);
}

}  // namespace
}  // namespace osp
