// OSP core algorithm tests: PGP importance (Eq. 3–4), GIB construction and
// serialization, Eq. 5 / Algorithm 1 budget tuning, and LGP (Eq. 6–7).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/gib.hpp"
#include "core/lgp.hpp"
#include "core/pgp.hpp"
#include "core/tuning.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::core {
namespace {

std::vector<nn::LayerBlockInfo> make_blocks(
    const std::vector<std::size_t>& sizes) {
  std::vector<nn::LayerBlockInfo> out;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    out.push_back({"block" + std::to_string(i), offset, sizes[i]});
    offset += sizes[i];
  }
  return out;
}

TEST(Pgp, ImportanceIsPerBlockAbsProductSum) {
  const auto blocks = make_blocks({2, 3});
  std::vector<float> params = {1, -2, 3, 0, -1};
  std::vector<float> grads = {2, 2, 1, 5, 4};
  const auto imp = pgp_importance(params, grads, blocks);
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_DOUBLE_EQ(imp[0], 2.0 + 4.0);       // |1·2| + |−2·2|
  EXPECT_DOUBLE_EQ(imp[1], 3.0 + 0.0 + 4.0); // |3·1| + |0·5| + |−1·4|
}

TEST(Pgp, ZeroGradientZeroImportance) {
  const auto blocks = make_blocks({4});
  std::vector<float> params = {1, 2, 3, 4};
  std::vector<float> grads(4, 0.0f);
  EXPECT_DOUBLE_EQ(pgp_importance(params, grads, blocks)[0], 0.0);
}

TEST(Pgp, RankAscendingStableTies) {
  std::vector<double> imp = {3.0, 1.0, 2.0, 1.0};
  const auto order = rank_ascending(imp);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(Pgp, RankAscendingTieOrderMatchesIndirectSort) {
  // Regression for the pre-paired (importance, index) sort: on heavily
  // tied inputs the order must stay what a stable indirect sort over
  // indices produces — equal importances rank in ascending-index order.
  osp::util::Rng rng(99);
  std::vector<double> imp(257);
  for (double& v : imp) {
    v = static_cast<double>(rng.uniform_u64(8));  // many duplicates
  }
  std::vector<std::size_t> expected(imp.size());
  std::iota(expected.begin(), expected.end(), 0u);
  std::stable_sort(expected.begin(), expected.end(),
                   [&imp](std::size_t a, std::size_t b) {
                     return imp[a] < imp[b];
                   });
  EXPECT_EQ(rank_ascending(imp), expected);
}

TEST(Pgp, MagnitudeIgnoresParams) {
  const auto blocks = make_blocks({2});
  std::vector<float> grads = {3, -4};
  EXPECT_DOUBLE_EQ(magnitude_importance(grads, blocks)[0], 7.0);
}

TEST(Pgp, DensityNormalizeDividesBySize) {
  const auto blocks = make_blocks({2, 8});
  std::vector<double> imp = {4.0, 8.0};
  const auto density = density_normalize(imp, blocks);
  EXPECT_DOUBLE_EQ(density[0], 2.0);
  EXPECT_DOUBLE_EQ(density[1], 1.0);
  // Plain sum ranks block 1 above block 0; density reverses it.
  EXPECT_EQ(rank_ascending(imp)[0], 0u);
  EXPECT_EQ(rank_ascending(density)[0], 1u);
}

TEST(Gib, AllImportantAndAllUnimportant) {
  const Gib imp = Gib::all_important(5);
  EXPECT_EQ(imp.count_important(), 5u);
  EXPECT_EQ(imp.count_unimportant(), 0u);
  const Gib unimp = Gib::all_unimportant(5);
  EXPECT_EQ(unimp.count_important(), 0u);
}

TEST(Gib, FromRankingRespectsBudget) {
  // Blocks of 10/20/30 bytes; ascending importance order {2, 0, 1};
  // budget 35 → takes block 2 (30), skips block 0? no: 30+10=40 > 35,
  // so block 0 skipped, block 1 (20): 30+20=50 > 35 skipped.
  std::vector<std::size_t> order = {2, 0, 1};
  std::vector<double> bytes = {10, 20, 30};
  const Gib gib = Gib::from_ranking(order, bytes, 35.0);
  EXPECT_FALSE(gib.important(2));
  EXPECT_TRUE(gib.important(0));
  EXPECT_TRUE(gib.important(1));
  EXPECT_DOUBLE_EQ(gib.unimportant_bytes(bytes), 30.0);
  EXPECT_DOUBLE_EQ(gib.important_bytes(bytes), 30.0);
}

TEST(Gib, FromRankingGreedySkipsThenFits) {
  // Budget 25: order {2 (30 too big), 1 (20 fits), 0 (10 doesn't: 30>25)}.
  std::vector<std::size_t> order = {2, 1, 0};
  std::vector<double> bytes = {10, 20, 30};
  const Gib gib = Gib::from_ranking(order, bytes, 25.0);
  EXPECT_TRUE(gib.important(2));
  EXPECT_FALSE(gib.important(1));
  EXPECT_TRUE(gib.important(0));  // 20+10=30 > 25
}

TEST(Gib, FromRankingSkipAndContinuePacking) {
  // Pin the greedy's skip-and-continue semantics: an oversized
  // low-importance block is *skipped* (not a stopping point), and the
  // smaller blocks ranked after it still fill the Eq. 5 budget exactly.
  // Order: {4 (50 — over budget, skipped), 0 (15), 2 (25), 1 (20 — would
  // overflow 40+20, skipped), 3 (atom of 5 — still fits after the skip)}.
  std::vector<std::size_t> order = {4, 0, 2, 1, 3};
  std::vector<double> bytes = {15, 20, 25, 5, 50};
  const Gib gib = Gib::from_ranking(order, bytes, 45.0);
  EXPECT_TRUE(gib.important(4));   // oversized, skipped
  EXPECT_FALSE(gib.important(0));  // 15
  EXPECT_FALSE(gib.important(2));  // 15+25=40
  EXPECT_TRUE(gib.important(1));   // 40+20 > 45, skipped
  EXPECT_FALSE(gib.important(3));  // 40+5=45: fills the budget exactly
  EXPECT_DOUBLE_EQ(gib.unimportant_bytes(bytes), 45.0);
  EXPECT_EQ(gib.count_unimportant(), 3u);
}

TEST(Gib, ZeroBudgetIsBsp) {
  std::vector<std::size_t> order = {0, 1};
  std::vector<double> bytes = {10, 10};
  const Gib gib = Gib::from_ranking(order, bytes, 0.0);
  EXPECT_EQ(gib.count_unimportant(), 0u);  // §4.3: degenerates to BSP
}

TEST(Gib, HugeBudgetTakesAll) {
  std::vector<std::size_t> order = {0, 1, 2};
  std::vector<double> bytes = {10, 10, 10};
  const Gib gib = Gib::from_ranking(order, bytes, 1e9);
  EXPECT_EQ(gib.count_unimportant(), 3u);  // degenerates toward ASP
}

TEST(Gib, SerializeRoundTrip) {
  Gib gib = Gib::all_unimportant(13);
  gib.set_important(0, true);
  gib.set_important(7, true);
  gib.set_important(12, true);
  const auto blob = gib.serialize();
  EXPECT_EQ(blob.size(), gib.wire_bytes());
  const Gib back = Gib::deserialize(blob);
  EXPECT_EQ(back, gib);
  EXPECT_EQ(back.size(), 13u);
  EXPECT_TRUE(back.important(7));
  EXPECT_FALSE(back.important(6));
}

TEST(Gib, WireBytesSmallForRealisticLayerCounts) {
  // The paper: models under 1K layers serialize under 1 KB (§4.1.2).
  EXPECT_LE(Gib::all_important(1000).wire_bytes(), 1024u);
}

TEST(Gib, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> tiny = {1, 2};
  EXPECT_THROW((void)Gib::deserialize(tiny), util::CheckError);
  std::vector<std::uint8_t> mismatched = {10, 0, 0, 0, 0};  // 10 bits need 2 bytes
  EXPECT_THROW((void)Gib::deserialize(mismatched), util::CheckError);
}

TEST(IcsUpperBound, MatchesEquation5) {
  IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1.25e9;
  p.loss_rate = 0.0;
  p.compute_time_s = 0.8;
  p.num_workers = 8;
  p.model_bytes = 1e9;  // big model: bandwidth term binds
  p.cap_fraction = 0.8;
  EXPECT_NEAR(ics_upper_bound(p), 1.25e9 * 0.8 / 8.0, 1.0);
}

TEST(IcsUpperBound, CapBindsForSmallModels) {
  IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1.25e9;
  p.compute_time_s = 10.0;
  p.num_workers = 2;
  p.model_bytes = 1e6;
  p.cap_fraction = 0.8;
  EXPECT_DOUBLE_EQ(ics_upper_bound(p), 0.8e6);  // 80 % of the model
}

TEST(IcsUpperBound, LossShrinksBudget) {
  IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1000.0;
  p.compute_time_s = 1.0;
  p.num_workers = 1;
  p.model_bytes = 1e9;
  p.loss_rate = 0.25;
  EXPECT_NEAR(ics_upper_bound(p), 1000.0 / 1.25, 1e-9);
}

TEST(IcsUpperBound, IncastCollapseShrinksBudget) {
  IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1.25e9;
  p.compute_time_s = 1.0;
  p.num_workers = 8;
  p.model_bytes = 1e12;  // cap never binds
  const double nominal = ics_upper_bound(p);
  p.incast_alpha = 0.03;
  const double collapsed = ics_upper_bound(p);
  EXPECT_NEAR(collapsed, nominal / (1.0 + 0.03 * 7.0), 1.0);
  // A single worker sees no collapse.
  p.num_workers = 1;
  p.incast_alpha = 0.5;
  const double single = ics_upper_bound(p);
  p.incast_alpha = 0.0;
  EXPECT_DOUBLE_EQ(single, ics_upper_bound(p));
}

TEST(IcsUpperBound, ValidatesInputs) {
  IcsBudgetParams p;  // all zero
  EXPECT_THROW((void)ics_upper_bound(p), util::CheckError);
}

TEST(SguTuner, Algorithm1Schedule) {
  SguTuner tuner(1000.0);
  // Epoch 1 fixes L and returns 0.
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(1, 2.0), 0.0);
  // Epoch i: (1 − loss/L)·U_max.
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(2, 1.0), 500.0);
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(3, 0.5), 750.0);
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(4, 0.0), 1000.0);
}

TEST(SguTuner, ClampsWhenLossRises) {
  SguTuner tuner(1000.0);
  (void)tuner.on_epoch_loss(1, 1.0);
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(2, 2.0), 0.0);  // loss above L → 0
}

TEST(SguTuner, DegenerateZeroReferenceGoesFull) {
  SguTuner tuner(1000.0);
  (void)tuner.on_epoch_loss(1, 0.0);
  EXPECT_DOUBLE_EQ(tuner.on_epoch_loss(2, 0.0), 1000.0);
}

TEST(SguTuner, BudgetNeverExceedsUmax) {
  SguTuner tuner(100.0);
  (void)tuner.on_epoch_loss(1, 5.0);
  for (int e = 2; e < 20; ++e) {
    const double b = tuner.on_epoch_loss(static_cast<std::size_t>(e),
                                         5.0 / e);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 100.0);
  }
}

TEST(Lgp, LocalStepOnlyTouchesUnimportant) {
  const auto blocks = make_blocks({2, 2});
  Gib gib = Gib::all_important(2);
  gib.set_important(1, false);
  std::vector<float> params = {1, 1, 1, 1};
  std::vector<float> grad = {10, 10, 2, 4};
  lgp_apply_local_step(params, grad, 0.5, blocks, gib);
  EXPECT_FLOAT_EQ(params[0], 1.0f);  // important: untouched
  EXPECT_FLOAT_EQ(params[1], 1.0f);
  EXPECT_FLOAT_EQ(params[2], 0.0f);  // 1 − 0.5·2
  EXPECT_FLOAT_EQ(params[3], -1.0f); // 1 − 0.5·4
}

TEST(Lgp, CorrectBlocksOverwritesUnimportant) {
  const auto blocks = make_blocks({2, 2});
  Gib gib = Gib::all_important(2);
  gib.set_important(0, false);
  std::vector<float> params = {1, 2, 3, 4};
  std::vector<float> global = {10, 20, 30, 40};
  lgp_correct_blocks(params, global, blocks, gib);
  EXPECT_FLOAT_EQ(params[0], 10.0f);
  EXPECT_FLOAT_EQ(params[1], 20.0f);
  EXPECT_FLOAT_EQ(params[2], 3.0f);  // important: untouched
  EXPECT_FLOAT_EQ(params[3], 4.0f);
}

TEST(Lgp, CopyImportantBlocksIsComplement) {
  const auto blocks = make_blocks({1, 1});
  Gib gib = Gib::all_important(2);
  gib.set_important(1, false);
  std::vector<float> params = {0, 0};
  std::vector<float> global = {5, 7};
  copy_important_blocks(params, global, blocks, gib);
  EXPECT_FLOAT_EQ(params[0], 5.0f);
  EXPECT_FLOAT_EQ(params[1], 0.0f);
}

TEST(Lgp, Equation6Then7EqualsGlobal) {
  // Property: prediction (Eq. 6) followed by correction (Eq. 7) must land
  // exactly on the PS value regardless of how wrong the prediction was.
  const auto blocks = make_blocks({3});
  const Gib gib = Gib::all_unimportant(1);
  std::vector<float> params = {1, 2, 3};
  std::vector<float> local_grad = {9, -9, 9};
  lgp_apply_local_step(params, local_grad, 0.1, blocks, gib);
  std::vector<float> authoritative = {0.5f, 0.6f, 0.7f};
  lgp_correct_blocks(params, authoritative, blocks, gib);
  EXPECT_EQ(params, authoritative);
}

TEST(EmaLgp, NoHistoryFallsBackToLocal) {
  const auto blocks = make_blocks({2});
  const Gib gib = Gib::all_unimportant(1);
  EmaLgp ema(2, 0.9, 0.5);
  std::vector<float> a = {1, 1};
  std::vector<float> b = {1, 1};
  std::vector<float> grad = {2, 4};
  ema.apply_local_step(a, grad, 0.5, blocks, gib);
  lgp_apply_local_step(b, grad, 0.5, blocks, gib);
  EXPECT_EQ(a, b);
}

TEST(EmaLgp, BlendsTowardGlobalHistory) {
  const auto blocks = make_blocks({1});
  const Gib gib = Gib::all_unimportant(1);
  EmaLgp ema(1, 1.0, 1.0);  // beta=1: use EMA only; alpha=1: EMA = latest
  std::vector<float> global_grad = {10.0f};
  ema.observe_global(global_grad);
  std::vector<float> params = {0.0f};
  std::vector<float> local_grad = {2.0f};
  ema.apply_local_step(params, local_grad, 1.0, blocks, gib);
  EXPECT_FLOAT_EQ(params[0], -10.0f);  // stepped with the global EMA
}

TEST(EmaLgp, EmaSmoothing) {
  EmaLgp ema(1, 0.5, 0.5);
  std::vector<float> g1 = {4.0f};
  std::vector<float> g2 = {0.0f};
  ema.observe_global(g1);
  ema.observe_global(g2);
  EXPECT_FLOAT_EQ(ema.ema()[0], 2.0f);
}

TEST(EmaLgp, ValidatesParameters) {
  EXPECT_THROW(EmaLgp(1, -0.1, 0.5), util::CheckError);
  EXPECT_THROW(EmaLgp(1, 0.5, 0.0), util::CheckError);
}

}  // namespace
}  // namespace osp::core
