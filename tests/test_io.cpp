// Tests for checkpointing (nn/serialize) and trace recording/export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>

#include "kv/message.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Checkpoint, RoundTripRestoresParams) {
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  std::vector<float> original(flat.total_params());
  flat.gather_params(original);

  TempFile file(temp_path("osp_ckpt_roundtrip.bin"));
  nn::save_checkpoint(flat, file.path);

  // Scramble, then restore.
  std::vector<float> scrambled(flat.total_params(), -7.0f);
  flat.scatter_params(scrambled);
  nn::load_checkpoint(flat, file.path);
  std::vector<float> restored(flat.total_params());
  flat.gather_params(restored);
  EXPECT_EQ(restored, original);
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  const auto spec = models::tiny_mlp();
  nn::Sequential a = spec.build_model(1);
  nn::FlatModel flat_a(a);
  TempFile file(temp_path("osp_ckpt_arch.bin"));
  nn::save_checkpoint(flat_a, file.path);

  nn::Sequential b = models::resnet50_cifar10().build_model(1);
  nn::FlatModel flat_b(b);
  EXPECT_THROW(nn::load_checkpoint(flat_b, file.path), util::CheckError);
}

TEST(Checkpoint, RejectsGarbageFile) {
  TempFile file(temp_path("osp_ckpt_garbage.bin"));
  {
    std::ofstream out(file.path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  EXPECT_THROW(nn::load_checkpoint(flat, file.path), util::CheckError);
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  TempFile file(temp_path("osp_ckpt_trunc.bin"));
  nn::save_checkpoint(flat, file.path);
  // Truncate the float payload.
  const auto full = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, full - 64);
  EXPECT_THROW(nn::load_checkpoint(flat, file.path), util::CheckError);
}

TEST(Checkpoint, RejectsBitCorruption) {
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  TempFile file(temp_path("osp_ckpt_bitflip.bin"));
  nn::save_checkpoint(flat, file.path);
  // Flip a single bit inside the parameter payload; without the CRC this
  // would load "successfully" with one silently-corrupted weight.
  std::fstream io(file.path, std::ios::binary | std::ios::in | std::ios::out);
  const auto size = std::filesystem::file_size(file.path);
  const auto pos = static_cast<std::streamoff>(size / 2);
  char byte = 0;
  io.seekg(pos);
  io.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x04);
  io.seekp(pos);
  io.write(&byte, 1);
  io.close();
  EXPECT_THROW(nn::load_checkpoint(flat, file.path), util::CheckError);
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  TempFile file(temp_path("osp_ckpt_trailing.bin"));
  nn::save_checkpoint(flat, file.path);
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::app);
    out << "sneaky extra bytes";
  }
  EXPECT_THROW(nn::load_checkpoint(flat, file.path), util::CheckError);
}

TEST(Checkpoint, MissingFileThrows) {
  const auto spec = models::tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  EXPECT_THROW(nn::load_checkpoint(flat, temp_path("osp_no_such.bin")),
               util::CheckError);
}

TEST(Trace, EngineRecordsSpansWhenEnabled) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 1;
  cfg.record_trace = true;
  sync::BspSync sync;
  runtime::Engine engine(spec, cfg, sync);
  (void)engine.run();
  const auto& trace = engine.trace();
  ASSERT_FALSE(trace.empty());
  // 2 workers × 16 iterations × 2 phases.
  EXPECT_EQ(trace.spans().size(), 2u * 16u * 2u);
  for (const auto& span : trace.spans()) {
    EXPECT_LE(span.begin_s, span.end_s);
    EXPECT_LT(span.worker, 2u);
  }
  EXPECT_GT(trace.blocking_sync_fraction(), 0.0);
  EXPECT_LT(trace.blocking_sync_fraction(), 1.0);
}

TEST(Trace, DisabledByDefault) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 1;
  sync::BspSync sync;
  runtime::Engine engine(spec, cfg, sync);
  (void)engine.run();
  EXPECT_TRUE(engine.trace().empty());
}

TEST(Trace, CsvExport) {
  runtime::TraceRecorder trace;
  trace.add({0.0, 1.0, 0, 0, runtime::TracePhase::kCompute});
  trace.add({1.0, 1.5, 0, 0, runtime::TracePhase::kSync});
  TempFile file(temp_path("osp_trace.csv"));
  trace.write_csv(file.path);
  std::ifstream in(file.path);
  std::string header, line1, line2;
  std::getline(in, header);
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(header, "worker,iteration,phase,begin_s,end_s");
  EXPECT_NE(line1.find("compute"), std::string::npos);
  EXPECT_NE(line2.find("sync"), std::string::npos);
}

TEST(Trace, ChromeJsonExportIsWellFormedish) {
  runtime::TraceRecorder trace;
  trace.add({0.0, 1.0, 3, 7, runtime::TracePhase::kCompute});
  TempFile file(temp_path("osp_trace.json"));
  trace.write_chrome_json(file.path);
  std::ifstream in(file.path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(content.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(content.find("\"iteration\": 7"), std::string::npos);
}

TEST(Trace, SyncFractionMath) {
  runtime::TraceRecorder trace;
  trace.add({0.0, 3.0, 0, 0, runtime::TracePhase::kCompute});
  trace.add({3.0, 4.0, 0, 0, runtime::TracePhase::kSync});
  // The old sync/(sync+compute) value survives under its explicit name.
  EXPECT_DOUBLE_EQ(trace.blocking_sync_fraction(), 0.25);
  runtime::TraceRecorder empty;
  EXPECT_DOUBLE_EQ(empty.blocking_sync_fraction(), 0.0);

  // RS counts as blocking sync; ICS and downtime do not.
  trace.add({4.0, 5.0, 0, 1, runtime::TracePhase::kRs});
  trace.add({4.0, 6.0, 0, 1, runtime::TracePhase::kIcs});
  trace.add({6.0, 7.0, 0, 1, runtime::TracePhase::kDowntime});
  EXPECT_DOUBLE_EQ(trace.blocking_sync_fraction(), 2.0 / 5.0);

  // phase_shares covers ALL phases (the old sync_fraction ignored
  // downtime) and sums to 1.
  const auto shares = trace.phase_shares();
  EXPECT_DOUBLE_EQ(shares.at(runtime::TracePhase::kCompute), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(shares.at(runtime::TracePhase::kSync), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(shares.at(runtime::TracePhase::kRs), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(shares.at(runtime::TracePhase::kIcs), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(shares.at(runtime::TracePhase::kDowntime), 1.0 / 8.0);
  double sum = 0.0;
  for (const auto& [phase, share] : shares) sum += share;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_TRUE(empty.phase_shares().empty());
}

// ------------------------------------------------- KV wire format fuzzing
//
// The OSPKVMSG envelope must reject every corruption with a CheckError —
// truncation at any prefix, trailing bytes, any single-bit flip, version
// skew, structural nonsense — and must never mis-decode (a corrupt buffer
// either throws or, impossibly, reproduces the original message; silent
// acceptance of different content is the failure mode these tests hunt).

kv::KvMessage sample_kv_message() {
  kv::KvMessage m;
  m.begin(kv::Op::kPush, 3, 17, {0, 4});
  m.keys = {0, 1, 2, 3};
  m.versions = {5, 6, 7, 8};
  m.set_values(std::vector<float>{0.5f, -1.25f, 0.0f, 3.75f, 0.0f, 2.0f},
               24.0);
  m.meta_bytes = 8.0;
  return m;
}

TEST(KvWire, ValidRoundTripSanity) {
  const kv::KvMessage m = sample_kv_message();
  const auto d = kv::deserialize(kv::serialize(m));
  EXPECT_EQ(d.values, m.values);
  EXPECT_EQ(d.keys, m.keys);
  EXPECT_EQ(d.versions, m.versions);
  EXPECT_DOUBLE_EQ(d.wire_bytes(), m.wire_bytes());
}

TEST(KvWire, EveryTruncationRejected) {
  const auto bytes = kv::serialize(sample_kv_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)kv::deserialize(std::span(bytes.data(), len)),
        util::CheckError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(KvWire, TrailingBytesRejected) {
  auto bytes = kv::serialize(sample_kv_message());
  bytes.push_back(0x00);
  EXPECT_THROW((void)kv::deserialize(bytes), util::CheckError);
  bytes.pop_back();
  bytes.push_back(0xff);
  EXPECT_THROW((void)kv::deserialize(bytes), util::CheckError);
}

TEST(KvWire, EverySingleBitFlipRejected) {
  // Magic flips fail the magic check, version flips the version check,
  // length flips truncate, payload and CRC flips fail the CRC — there is
  // no byte whose corruption goes unnoticed.
  const auto clean = kv::serialize(sample_kv_message());
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = clean;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)kv::deserialize(corrupt), util::CheckError)
          << "flip of bit " << bit << " in byte " << byte << " decoded";
    }
  }
}

TEST(KvWire, VersionSkewRejected) {
  // The u32 version sits right after the 8-byte magic and outside the
  // CRC; a writer from the future must be rejected up front.
  auto bytes = kv::serialize(sample_kv_message());
  bytes[8] = static_cast<std::uint8_t>(kv::kMessageVersion + 1);
  EXPECT_THROW((void)kv::deserialize(bytes), util::CheckError);
}

TEST(KvWire, StructurallyInvalidPayloadsRejected) {
  // serialize() writes whatever it is given; deserialize() must catch
  // the structural lies even when the envelope (magic/CRC) is intact.
  {
    kv::KvMessage m = sample_kv_message();
    m.range = {9, 2};  // inverted
    EXPECT_THROW((void)kv::deserialize(kv::serialize(m)), util::CheckError);
  }
  {
    kv::KvMessage m = sample_kv_message();
    m.versions = {1, 2};  // matches neither keys nor range arity
    EXPECT_THROW((void)kv::deserialize(kv::serialize(m)), util::CheckError);
  }
  {
    kv::KvMessage m = sample_kv_message();
    m.sparse = true;
    m.indices = {2, 99};  // out of bounds of dense_numel
    EXPECT_THROW((void)kv::deserialize(kv::serialize(m)), util::CheckError);
  }
  {
    kv::KvMessage m = sample_kv_message();
    m.values.resize(3);  // dense count no longer matches dense_numel
    EXPECT_THROW((void)kv::deserialize(kv::serialize(m)), util::CheckError);
  }
}

}  // namespace
}  // namespace osp
