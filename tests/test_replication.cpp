// PS-shard replication suite: ReplicaTable unit coverage (chains,
// version-predicate freshness, catch-up, serde), the consistent-hash
// successor rule, and the chaos family — PS crashes injected mid-RS,
// mid-ICS and during catch-up against the real Engine, asserting the
// crashed primary's key range is promoted onto its backup, no update is
// double-applied, and seeded replays stay bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/osp_sync.hpp"
#include "kv/partition.hpp"
#include "kv/replication.hpp"
#include "kv/store.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "sync/kv_bsp.hpp"
#include "sync/sharded_bsp.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp {
namespace {

// ---- consistent-hash successor rule ----

TEST(ConsistentHashSuccessor, DistinctDeterministicInRange) {
  for (std::size_t shards : {2u, 3u, 5u, 8u}) {
    kv::ConsistentHashRing a(shards), b(shards);
    for (std::size_t p = 0; p < shards; ++p) {
      const std::size_t s = a.successor(p);
      EXPECT_LT(s, shards);
      EXPECT_NE(s, p) << "backup must land on a different host";
      EXPECT_EQ(s, b.successor(p)) << "successor must be deterministic";
    }
  }
}

TEST(ConsistentHashSuccessor, SingleShardIsItsOwnSuccessor) {
  kv::ConsistentHashRing ring(1);
  EXPECT_EQ(ring.successor(0), 0u);
}

// ---- ReplicaTable ----

kv::Partition three_shard_partition() {
  kv::Partition part;
  part.num_shards = 3;
  part.owner = {0, 1, 2, 0};  // key 3 doubles up on shard 0
  return part;
}

TEST(ReplicaTable, ChainsPromoteAndFailBack) {
  const std::vector<double> key_bytes = {100.0, 200.0, 300.0, 400.0};
  kv::ReplicaTable t;
  t.init(three_shard_partition(), key_bytes);
  ASSERT_EQ(t.num_hosts(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_EQ(t.chain(p).size(), 2u);
    EXPECT_EQ(t.chain(p).front(), p) << "shard p is primary on host p";
    EXPECT_NE(t.chain(p)[1], p);
    EXPECT_TRUE(t.has_backup(p));
    EXPECT_EQ(t.serving(p), p) << "healthy: the primary serves";
  }
  const std::size_t backup = t.chain(0)[1];
  t.set_alive(0, false);
  EXPECT_EQ(t.serving(0), backup) << "promotion to the chain successor";
  t.set_alive(backup, false);
  EXPECT_EQ(t.serving(0), kv::ReplicaTable::npos) << "whole chain down";
  t.set_alive(0, true);
  EXPECT_EQ(t.serving(0), 0u) << "failback to the restarted primary";
}

TEST(ReplicaTable, SingleHostHasNoBackup) {
  kv::Partition part;
  part.num_shards = 1;
  part.owner = {0, 0};
  kv::ReplicaTable t;
  t.init(part, std::vector<double>{8.0, 8.0});
  EXPECT_FALSE(t.has_backup(0));
  ASSERT_EQ(t.chain(0).size(), 1u);
  t.set_alive(0, false);
  EXPECT_EQ(t.serving(0), kv::ReplicaTable::npos);
}

TEST(ReplicaTable, VersionPredicateFreshnessAndCatchUp) {
  const std::vector<double> key_bytes = {100.0, 200.0, 300.0, 400.0};
  kv::ReplicaTable t;
  t.init(three_shard_partition(), key_bytes);
  kv::KvStore store;
  const std::vector<std::size_t> offsets = {0, 25, 75, 150};
  const std::vector<std::size_t> numels = {25, 50, 75, 100};
  store.init(offsets, numels);

  // Untouched store: every backup matches version 0.
  for (kv::Key k = 0; k < 4; ++k) EXPECT_TRUE(t.fresh(k, store));
  EXPECT_EQ(t.lag(store), 0u);

  // An apply bumps key 1 to v1; the async stream trails by one update, so
  // the backup is known-good only up to v0 — exactly key 1 is stale.
  store.bump(1);
  t.note_update(1, store.version(1));
  EXPECT_FALSE(t.fresh(1, store));
  EXPECT_TRUE(t.fresh(0, store));
  EXPECT_EQ(t.lag(store), 1u);
  EXPECT_DOUBLE_EQ(t.stale_bytes(1, store), 200.0);
  EXPECT_DOUBLE_EQ(t.stale_bytes(0, store), 0.0);

  // Catch-up ships only the stale segment and marks it fresh.
  EXPECT_DOUBLE_EQ(t.catch_up(1, store), 200.0);
  EXPECT_TRUE(t.fresh(1, store));
  EXPECT_EQ(t.lag(store), 0u);
  EXPECT_DOUBLE_EQ(t.catch_up(1, store), 0.0) << "nothing left to ship";

  // Shard 0 owns keys 0 and 3; staleness accumulates per shard.
  store.bump(0);
  t.note_update(0, store.version(0));
  store.bump(3);
  t.note_update(3, store.version(3));
  EXPECT_EQ(t.lag(store), 2u);
  EXPECT_DOUBLE_EQ(t.stale_bytes(0, store), 100.0 + 400.0);
  EXPECT_DOUBLE_EQ(t.catch_up(0, store), 100.0 + 400.0);
  EXPECT_EQ(t.lag(store), 0u);
}

TEST(ReplicaTable, RepeatedUpdatesNeedOneCatchUp) {
  kv::Partition part;
  part.num_shards = 2;
  part.owner = {0, 1};
  kv::ReplicaTable t;
  t.init(part, std::vector<double>{64.0, 64.0});
  kv::KvStore store;
  store.init(std::vector<std::size_t>{0, 16},
             std::vector<std::size_t>{16, 16});
  for (int i = 0; i < 5; ++i) {
    store.bump(0);
    t.note_update(0, store.version(0));
  }
  // Five applies, but the version predicate selects the segment once.
  EXPECT_EQ(t.lag(store), 1u);
  EXPECT_DOUBLE_EQ(t.catch_up(0, store), 64.0);
  EXPECT_EQ(t.lag(store), 0u);
}

TEST(ReplicaTable, SaveLoadRoundTrip) {
  const std::vector<double> key_bytes = {100.0, 200.0, 300.0, 400.0};
  kv::ReplicaTable a;
  a.init(three_shard_partition(), key_bytes);
  kv::KvStore store;
  store.init(std::vector<std::size_t>{0, 1, 2, 3},
             std::vector<std::size_t>{1, 1, 1, 1});
  store.bump(2);
  a.note_update(2, store.version(2));
  a.set_alive(1, false);

  util::serde::Writer w;
  a.save_state(w);
  kv::ReplicaTable b;
  b.init(three_shard_partition(), key_bytes);
  util::serde::Reader r(w.data());
  b.load_state(r);

  EXPECT_EQ(b.lag(store), 1u);
  EXPECT_FALSE(b.fresh(2, store));
  EXPECT_FALSE(b.alive(1));
  EXPECT_EQ(b.serving(1), a.serving(1));
  EXPECT_DOUBLE_EQ(b.stale_bytes(2, store), a.stale_bytes(2, store));
}

// ---- stamp_versions range guard (the wire-path twin of the replica
// predicate: a listed key outside the message's declared range would
// stamp a version for a segment the receiver cannot locate) ----

TEST(KvStoreGuard, StampVersionsRejectsListedKeyOutsideRange) {
  kv::KvStore store;
  store.init(std::vector<std::size_t>{0, 4, 8},
             std::vector<std::size_t>{4, 4, 4});
  kv::KvMessage m;
  m.range = {0, 2};
  m.keys = {2};  // in-store, but outside the declared range
  EXPECT_THROW(store.stamp_versions(m), util::CheckError);

  m.range = {0, 2};
  m.keys = {0, 1};
  store.stamp_versions(m);  // in-range listed keys are fine
  EXPECT_EQ(m.versions.size(), 2u);

  kv::KvMessage shard_msg;  // empty range + explicit keys: shard style
  shard_msg.keys = {2, 0};
  store.stamp_versions(shard_msg);
  EXPECT_EQ(shard_msg.versions.size(), 2u);
}

// ---- chaos family: PS crashes against the real Engine ----

runtime::EngineConfig chaos_config(std::size_t num_ps) {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  cfg.cluster.num_ps = num_ps;
  cfg.record_telemetry = true;    // the suite asserts per-round replica
                                  // lag / promotion counters
  cfg.max_virtual_time_s = 60.0;  // backstop: a deadlock shows as a stall
  return cfg;
}

runtime::RunResult run_with(runtime::SyncModel& sync,
                            const runtime::EngineConfig& cfg) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

std::size_t total_promotions(const runtime::RunResult& r) {
  std::size_t n = 0;
  for (const runtime::SyncTelemetry& t : r.rounds) n += t.promotions;
  return n;
}

TEST(PsFailover, ShardedBspCrashMidRoundPromotesBackup) {
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
  cfg.faults.crash_ps(0.3, /*ps=*/0);  // permanent
  sync::ShardedBspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.ps_crashes, 1u);
  EXPECT_EQ(r.faults.ps_restarts, 0u);
  EXPECT_GE(r.faults.ps_promotions, 1u);
  EXPECT_EQ(total_promotions(r), r.faults.ps_promotions)
      << "telemetry and FaultStats must agree on promotions";
  // Every shard is now served by the surviving host.
  for (std::size_t p = 0; p < 2; ++p) EXPECT_EQ(sync.serving_host(p), 1u);
  // No worker died: every sample is still processed exactly once.
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(PsFailover, KvBspCrashThenRestartFailsBack) {
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
  cfg.faults.crash_ps(0.3, /*ps=*/0, /*restart_after=*/0.3);
  sync::KvBspSync sync{sync::KvBspOptions{}};
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0);
  EXPECT_EQ(r.faults.ps_crashes, 1u);
  EXPECT_EQ(r.faults.ps_restarts, 1u);
  // Promotion onto the backup at the crash, failback at the restart.
  EXPECT_GE(r.faults.ps_promotions, 2u);
  EXPECT_EQ(sync.serving_host(), 0u) << "failback to the restarted primary";
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(PsFailover, OspCrashMidRsPromotesAndDegradesToAllImportant) {
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
  cfg.faults.crash_ps(0.25, /*ps=*/0);  // permanent, lands mid-RS
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;  // keep ICS rounds in flight
  core::OspSync sync(opt, {.rs_timeout_s = 0.3, .ics_timeout_s = 0.3});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.ps_crashes, 1u);
  EXPECT_GE(r.faults.ps_promotions, 1u);
  for (std::size_t p = 0; p < 2; ++p) EXPECT_EQ(sync.serving_host(p), 1u);
  // §4.3 degradation extends to PS faults: with a shard down the GIB
  // collapses to all-important, so nothing rides the (riskier) ICS.
  EXPECT_EQ(sync.current_gib().count_unimportant(), 0u);
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(PsFailover, OspCrashDuringCatchUpSurvivesSecondFailure) {
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
  // Crash, restart (failback runs a catch-up whose apply delay is still
  // queued), then crash again while that catch-up may be in flight.
  cfg.faults.crash_ps(0.3, /*ps=*/0, /*restart_after=*/0.15)
      .crash_ps(0.47, /*ps=*/0);  // permanent second failure
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;
  core::OspSync sync(opt, {.rs_timeout_s = 0.3, .ics_timeout_s = 0.3});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.ps_crashes, 2u);
  EXPECT_EQ(r.faults.ps_restarts, 1u);
  EXPECT_GE(r.faults.ps_promotions, 2u);
  for (std::size_t p = 0; p < 2; ++p) EXPECT_EQ(sync.serving_host(p), 1u);
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(PsFailover, SeededPsChaosIsBitDeterministic) {
  auto chaotic_run = [] {
    runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
    cfg.faults.set_seed(7)
        .crash_ps(0.3, 0, /*restart_after=*/0.2)
        .crash_worker(0.5, 2, /*restart_after=*/0.25)
        .drop_messages(0.8, 0.15, 0.5);
    core::OspSync sync({}, {.rs_timeout_s = 0.3, .ics_timeout_s = 0.3});
    return run_with(sync, cfg);
  };
  const runtime::RunResult a = chaotic_run();
  const runtime::RunResult b = chaotic_run();
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.total_samples, b.total_samples);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.faults.ps_crashes, b.faults.ps_crashes);
  EXPECT_EQ(a.faults.ps_restarts, b.faults.ps_restarts);
  EXPECT_EQ(a.faults.ps_promotions, b.faults.ps_promotions);
  EXPECT_DOUBLE_EQ(a.faults.replica_catchup_bytes,
                   b.faults.replica_catchup_bytes);
  EXPECT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(total_promotions(a), total_promotions(b));
  EXPECT_TRUE(a.faults.any());
}

TEST(PsFailover, EmptyScheduleReportsNoReplicationActivity) {
  // The bit-identity of the healthy path is pinned by the sync goldens;
  // here we assert the replication layer's *observable* silence: no
  // promotions, no catch-up traffic, no PS fault counts.
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/2);
  cfg.max_virtual_time_s = 0.0;
  sync::ShardedBspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_FALSE(r.faults.any());
  EXPECT_EQ(r.faults.ps_crashes, 0u);
  EXPECT_EQ(r.faults.ps_promotions, 0u);
  EXPECT_DOUBLE_EQ(r.faults.replica_catchup_bytes, 0.0);
  EXPECT_EQ(total_promotions(r), 0u);
  for (const runtime::SyncTelemetry& t : r.rounds) {
    EXPECT_DOUBLE_EQ(t.catch_up_bytes, 0.0);
  }
  for (std::size_t p = 0; p < 2; ++p) EXPECT_EQ(sync.serving_host(p), p);
}

// ---- zero-contributor round closure (the weight-renormalization guard):
// a deadline that fires with every push dropped must close the round as a
// no-op, not divide by a zero weight sum ----

TEST(ZeroContributorRound, TimeoutWithAllPushesDroppedIsNoOp) {
  runtime::EngineConfig cfg = chaos_config(/*num_ps=*/1);
  cfg.max_virtual_time_s = 5.0;
  // Every message in the first two virtual seconds vanishes: rounds can
  // only close by deadline, with zero contributors.
  cfg.faults.drop_messages(0.0, 2.0, 1.0);
  sync::BspSync sync;
  sync.set_timeouts({.rs_timeout_s = 0.1});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_GE(r.faults.timed_out_rounds, 1u);
  EXPECT_GT(r.faults.messages_dropped, 0u);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

}  // namespace
}  // namespace osp
