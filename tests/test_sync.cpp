// Behavioural tests of the sync models, verified through full engine runs
// on the tiny workload: ordering properties (who waits, who doesn't),
// staleness bounds, sparsification correctness, and cross-model invariants.
#include <gtest/gtest.h>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/compression.hpp"
#include "sync/r2sp.hpp"
#include "sync/ssp.hpp"
#include "util/check.hpp"

namespace osp {
namespace {

runtime::EngineConfig sync_config(std::size_t workers = 4,
                                  std::size_t epochs = 4,
                                  double jitter = 0.05) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 17;
  cfg.straggler_jitter = jitter;
  return cfg;
}

runtime::RunResult run_model(runtime::SyncModel& sync,
                             const runtime::EngineConfig& cfg,
                             const runtime::WorkloadSpec& spec) {
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

TEST(BspBehaviour, AllWorkersSameIterationCount) {
  // BSP's barrier keeps workers in lockstep: total samples must divide
  // evenly even with jitter.
  const auto spec = models::tiny_mlp();
  sync::BspSync sync;
  const auto r = run_model(sync, sync_config(), spec);
  EXPECT_DOUBLE_EQ(r.total_samples, 4.0 * 4.0 * 8.0 * 16.0);
}

TEST(BspBehaviour, BstGrowsWithWorkers) {
  // Incast: more simultaneous pushes → longer synchronization.
  const auto spec = models::resnet50_cifar10();
  auto bst_with = [&](std::size_t workers) {
    sync::BspSync sync;
    auto cfg = sync_config(workers, 1, 0.0);
    runtime::Engine engine(spec, cfg, sync);
    return engine.run().mean_bst_s;
  };
  const double bst2 = bst_with(2);
  const double bst8 = bst_with(8);
  EXPECT_GT(bst8, 2.5 * bst2);
}

TEST(AspBehaviour, FasterThanBspUnderJitter) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.1);
  sync::BspSync bsp;
  sync::AspSync asp;
  const auto rb = run_model(bsp, cfg, spec);
  const auto ra = run_model(asp, cfg, spec);
  EXPECT_GT(ra.throughput, rb.throughput);
  EXPECT_LT(ra.mean_bst_s, rb.mean_bst_s);
}

TEST(SspBehaviour, BoundsIterationSpread) {
  // With a large speed disparity and bound s, the fast worker may never be
  // more than s iterations ahead. Observable consequence: total samples are
  // nearly balanced, unlike pure ASP.
  auto spec = models::tiny_mlp();
  auto cfg = sync_config(2, 4, 0.0);
  cfg.cluster.speed_factors = {1.0, 0.25};
  sync::SspSync ssp(2);
  const auto r = run_model(ssp, cfg, spec);
  // Both workers complete all their epochs regardless.
  EXPECT_DOUBLE_EQ(r.total_samples, 2.0 * 4.0 * 16.0 * 16.0);
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(SspBehaviour, ZeroBoundActsLikeBarrier) {
  auto spec = models::tiny_mlp();
  auto cfg = sync_config(3, 2, 0.2);
  sync::SspSync ssp(0);
  const auto r = run_model(ssp, cfg, spec);
  EXPECT_GT(r.total_samples, 0.0);  // must not deadlock
}

TEST(R2spBehaviour, SlowerThanAspFasterThanBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.05);
  sync::BspSync bsp;
  sync::AspSync asp;
  sync::R2spSync r2sp;
  const double tb = run_model(bsp, cfg, spec).throughput;
  const double ta = run_model(asp, cfg, spec).throughput;
  const double tr = run_model(r2sp, cfg, spec).throughput;
  EXPECT_GT(tr, tb);
  EXPECT_LT(tr, ta);
}

TEST(R2spBehaviour, SerialVariantIsSlower) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 1, 0.05);
  sync::R2spSync serial(false);
  sync::R2spSync duplex(true);
  const double ts = run_model(serial, cfg, spec).throughput;
  const double td = run_model(duplex, cfg, spec).throughput;
  EXPECT_GT(td, ts);
  EXPECT_EQ(serial.name(), "R2SP(serial)");
  EXPECT_EQ(duplex.name(), "R2SP");
}

TEST(Compression, SparsifyTopKKeepsLargest) {
  std::vector<float> g = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f};
  util::Rng rng(1);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::TopK,
                                          0.4, rng);
  EXPECT_EQ(kept, 2u);
  EXPECT_FLOAT_EQ(g[1], -5.0f);
  EXPECT_FLOAT_EQ(g[3], 3.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[4], 0.0f);
}

TEST(Compression, SparsifyTopKTiesDeterministic) {
  std::vector<float> g = {1.0f, 1.0f, 1.0f, 1.0f};
  util::Rng rng(1);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::TopK,
                                          0.5, rng);
  EXPECT_EQ(kept, 2u);
  EXPECT_FLOAT_EQ(g[0], 1.0f);  // index order fills tie slots
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(Compression, SparsifyRandomKCount) {
  std::vector<float> g(100, 1.0f);
  util::Rng rng(2);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::RandomK,
                                          0.3, rng);
  EXPECT_EQ(kept, 30u);
  std::size_t nonzero = 0;
  for (float v : g) nonzero += v != 0.0f ? 1 : 0;
  EXPECT_EQ(nonzero, 30u);
}

TEST(Compression, KeepAllIsIdentity) {
  std::vector<float> g = {1.0f, 2.0f};
  util::Rng rng(3);
  EXPECT_EQ(sync::sparsify(g, sync::CompressionMode::TopK, 1.0, rng), 2u);
  EXPECT_FLOAT_EQ(g[0], 1.0f);
}

TEST(Compression, TopKBspReducesBstVersusBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.0);
  sync::BspSync bsp;
  sync::CompressedBspSync topk(sync::CompressionMode::TopK, 0.1);
  const auto rb = run_model(bsp, cfg, spec);
  const auto rt = run_model(topk, cfg, spec);
  EXPECT_LT(rt.mean_bst_s, rb.mean_bst_s * 0.5);
}

TEST(Compression, TopKLosesAccuracyVersusBsp) {
  // Dropped gradients (no error feedback) must cost accuracy — the §2.2.2
  // failure mode OSP exists to avoid.
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 8, 0.0);
  sync::BspSync bsp;
  sync::CompressedBspSync topk(sync::CompressionMode::TopK, 0.05);
  const auto rb = run_model(bsp, cfg, spec);
  const auto rt = run_model(topk, cfg, spec);
  EXPECT_LT(rt.best_metric, rb.best_metric);
}

TEST(OspBehaviour, FirstEpochDegradesToBsp) {
  // Algorithm 1 sets S(Gᵘ)₁ = 0: during epoch 1 the GIB stays
  // all-important, so no ICS rounds run.
  const auto spec = models::tiny_mlp();
  core::OspSync osp;
  auto cfg = sync_config(2, 1, 0.0);
  runtime::Engine engine(spec, cfg, osp);
  (void)engine.run();
  EXPECT_EQ(osp.ics_rounds_completed(), 0u);
  EXPECT_DOUBLE_EQ(osp.current_ics_budget(), 0.0);
}

TEST(OspBehaviour, BudgetRampsAfterFirstEpoch) {
  const auto spec = models::tiny_mlp();
  core::OspSync osp;
  auto cfg = sync_config(2, 6, 0.0);
  runtime::Engine engine(spec, cfg, osp);
  (void)engine.run();
  EXPECT_GT(osp.current_ics_budget(), 0.0);
  EXPECT_LE(osp.current_ics_budget(), osp.u_max());
  EXPECT_GT(osp.ics_rounds_completed(), 0u);
}

TEST(OspBehaviour, FixedZeroBudgetEqualsBspTiming) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(4, 2, 0.0);
  core::OspOptions opts;
  opts.fixed_budget_fraction = 0.0;
  core::OspSync osp(opts);
  sync::BspSync bsp;
  const auto ro = run_model(osp, cfg, spec);
  const auto rb = run_model(bsp, cfg, spec);
  // §4.3: all gradients in RS ⇒ BSP. Timing matches up to the GIB's few
  // bytes and identical PS costs.
  EXPECT_NEAR(ro.mean_bst_s, rb.mean_bst_s, 0.02 * rb.mean_bst_s);
  EXPECT_DOUBLE_EQ(ro.total_samples, rb.total_samples);
}

TEST(OspBehaviour, LargerFixedBudgetLowersBst) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.0);
  auto bst_with = [&](double fraction) {
    core::OspOptions opts;
    opts.fixed_budget_fraction = fraction;
    core::OspSync osp(opts);
    runtime::Engine engine(spec, cfg, osp);
    return engine.run().mean_bst_s;
  };
  const double none = bst_with(0.0);
  const double half = bst_with(0.4);
  const double most = bst_with(0.8);
  EXPECT_LT(half, none);
  EXPECT_LT(most, half);
}

TEST(OspBehaviour, AccuracyComparableToBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 10, 0.05);
  sync::BspSync bsp;
  core::OspSync osp;
  const auto rb = run_model(bsp, cfg, spec);
  const auto ro = run_model(osp, cfg, spec);
  EXPECT_GT(ro.best_metric, rb.best_metric - 0.05)
      << "OSP lost accuracy versus BSP";
}

TEST(OspBehaviour, ColocatedRequiresColocatedCluster) {
  const auto spec = models::tiny_mlp();
  core::OspOptions opts;
  opts.colocated_ps = true;
  core::OspSync osp(opts);
  auto cfg = sync_config(2, 1, 0.0);  // cluster NOT co-located
  runtime::Engine engine(spec, cfg, osp);
  EXPECT_THROW((void)engine.run(), util::CheckError);
}

TEST(OspBehaviour, ColocatedChargesGibOverhead) {
  const auto spec = models::tiny_mlp();
  auto cfg = sync_config(2, 2, 0.0);
  cfg.cluster.colocated_ps = true;
  core::OspOptions colo;
  colo.colocated_ps = true;
  core::OspSync osp_c(colo);
  core::OspSync osp_s;
  runtime::Engine e1(spec, cfg, osp_c);
  const auto rc = e1.run();
  runtime::Engine e2(spec, cfg, osp_s);
  const auto rs = e2.run();
  EXPECT_GT(rc.mean_bct_s, rs.mean_bct_s);
}

TEST(OspBehaviour, EmaVariantRuns) {
  const auto spec = models::tiny_mlp();
  core::OspOptions opts;
  opts.use_ema_lgp = true;
  core::OspSync osp(opts);
  const auto r = run_model(osp, sync_config(2, 4, 0.0), spec);
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(OspBehaviour, RankingVariantsRun) {
  const auto spec = models::tiny_mlp();
  for (auto ranking : {core::OspOptions::Ranking::kPgp,
                       core::OspOptions::Ranking::kPgpSum,
                       core::OspOptions::Ranking::kMagnitude,
                       core::OspOptions::Ranking::kRandom}) {
    core::OspOptions opts;
    opts.ranking = ranking;
    core::OspSync osp(opts);
    const auto r = run_model(osp, sync_config(2, 3, 0.0), spec);
    EXPECT_GT(r.best_metric, 0.4);
  }
}

TEST(OspBehaviour, NamesEncodeOptions) {
  EXPECT_EQ(core::OspSync().name(), "OSP");
  core::OspOptions a;
  a.enable_lgp = false;
  EXPECT_EQ(core::OspSync(a).name(), "OSP(no-LGP)");
  core::OspOptions b;
  b.colocated_ps = true;
  EXPECT_EQ(core::OspSync(b).name(), "OSP-C");
  core::OspOptions c;
  c.fixed_budget_fraction = 0.5;
  EXPECT_EQ(core::OspSync(c).name(), "OSP(fixed=50%)");
}

TEST(CrossModel, AllModelsReachSameSampleCount) {
  // Every sync model must process exactly max_epochs over each shard.
  const auto spec = models::tiny_mlp();
  const auto cfg = sync_config(3, 3, 0.1);
  const double expected = 3.0 * 3.0 * 10.0 * 16.0;  // shard 170→10 batches
  sync::BspSync bsp;
  sync::AspSync asp;
  sync::R2spSync r2sp;
  sync::SspSync ssp(3);
  core::OspSync osp;
  EXPECT_DOUBLE_EQ(run_model(bsp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(asp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(r2sp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(ssp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(osp, cfg, spec).total_samples, expected);
}

}  // namespace
}  // namespace osp
