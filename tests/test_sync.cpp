// Behavioural tests of the sync models, verified through full engine runs
// on the tiny workload: ordering properties (who waits, who doesn't),
// staleness bounds, sparsification correctness, and cross-model invariants.
// The GoldenBitIdentity suite at the bottom pins every sync model's full
// RunResult + final parameters against goldens captured from main before
// the KV-core refactor, at 1/2/8 pool threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/casp.hpp"
#include "sync/compression.hpp"
#include "sync/dssp.hpp"
#include "sync/kv_bsp.hpp"
#include "sync/r2sp.hpp"
#include "sync/sharded_bsp.hpp"
#include "sync/ssp.hpp"
#include "sync/sync_switch.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace osp {
namespace {

runtime::EngineConfig sync_config(std::size_t workers = 4,
                                  std::size_t epochs = 4,
                                  double jitter = 0.05) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 17;
  cfg.straggler_jitter = jitter;
  return cfg;
}

runtime::RunResult run_model(runtime::SyncModel& sync,
                             const runtime::EngineConfig& cfg,
                             const runtime::WorkloadSpec& spec) {
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

TEST(BspBehaviour, AllWorkersSameIterationCount) {
  // BSP's barrier keeps workers in lockstep: total samples must divide
  // evenly even with jitter.
  const auto spec = models::tiny_mlp();
  sync::BspSync sync;
  const auto r = run_model(sync, sync_config(), spec);
  EXPECT_DOUBLE_EQ(r.total_samples, 4.0 * 4.0 * 8.0 * 16.0);
}

TEST(BspBehaviour, BstGrowsWithWorkers) {
  // Incast: more simultaneous pushes → longer synchronization.
  const auto spec = models::resnet50_cifar10();
  auto bst_with = [&](std::size_t workers) {
    sync::BspSync sync;
    auto cfg = sync_config(workers, 1, 0.0);
    runtime::Engine engine(spec, cfg, sync);
    return engine.run().mean_bst_s;
  };
  const double bst2 = bst_with(2);
  const double bst8 = bst_with(8);
  EXPECT_GT(bst8, 2.5 * bst2);
}

TEST(AspBehaviour, FasterThanBspUnderJitter) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.1);
  sync::BspSync bsp;
  sync::AspSync asp;
  const auto rb = run_model(bsp, cfg, spec);
  const auto ra = run_model(asp, cfg, spec);
  EXPECT_GT(ra.throughput, rb.throughput);
  EXPECT_LT(ra.mean_bst_s, rb.mean_bst_s);
}

TEST(SspBehaviour, BoundsIterationSpread) {
  // With a large speed disparity and bound s, the fast worker may never be
  // more than s iterations ahead. Observable consequence: total samples are
  // nearly balanced, unlike pure ASP.
  auto spec = models::tiny_mlp();
  auto cfg = sync_config(2, 4, 0.0);
  cfg.cluster.speed_factors = {1.0, 0.25};
  sync::SspSync ssp(2);
  const auto r = run_model(ssp, cfg, spec);
  // Both workers complete all their epochs regardless.
  EXPECT_DOUBLE_EQ(r.total_samples, 2.0 * 4.0 * 16.0 * 16.0);
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(SspBehaviour, ZeroBoundActsLikeBarrier) {
  auto spec = models::tiny_mlp();
  auto cfg = sync_config(3, 2, 0.2);
  sync::SspSync ssp(0);
  const auto r = run_model(ssp, cfg, spec);
  EXPECT_GT(r.total_samples, 0.0);  // must not deadlock
}

TEST(R2spBehaviour, SlowerThanAspFasterThanBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.05);
  sync::BspSync bsp;
  sync::AspSync asp;
  sync::R2spSync r2sp;
  const double tb = run_model(bsp, cfg, spec).throughput;
  const double ta = run_model(asp, cfg, spec).throughput;
  const double tr = run_model(r2sp, cfg, spec).throughput;
  EXPECT_GT(tr, tb);
  EXPECT_LT(tr, ta);
}

TEST(R2spBehaviour, SerialVariantIsSlower) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 1, 0.05);
  sync::R2spSync serial(false);
  sync::R2spSync duplex(true);
  const double ts = run_model(serial, cfg, spec).throughput;
  const double td = run_model(duplex, cfg, spec).throughput;
  EXPECT_GT(td, ts);
  EXPECT_EQ(serial.name(), "R2SP(serial)");
  EXPECT_EQ(duplex.name(), "R2SP");
}

TEST(Compression, SparsifyTopKKeepsLargest) {
  std::vector<float> g = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f};
  util::Rng rng(1);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::TopK,
                                          0.4, rng);
  EXPECT_EQ(kept, 2u);
  EXPECT_FLOAT_EQ(g[1], -5.0f);
  EXPECT_FLOAT_EQ(g[3], 3.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[4], 0.0f);
}

TEST(Compression, SparsifyTopKTiesDeterministic) {
  std::vector<float> g = {1.0f, 1.0f, 1.0f, 1.0f};
  util::Rng rng(1);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::TopK,
                                          0.5, rng);
  EXPECT_EQ(kept, 2u);
  EXPECT_FLOAT_EQ(g[0], 1.0f);  // index order fills tie slots
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(Compression, SparsifyRandomKCount) {
  std::vector<float> g(100, 1.0f);
  util::Rng rng(2);
  const std::size_t kept = sync::sparsify(g, sync::CompressionMode::RandomK,
                                          0.3, rng);
  EXPECT_EQ(kept, 30u);
  std::size_t nonzero = 0;
  for (float v : g) nonzero += v != 0.0f ? 1 : 0;
  EXPECT_EQ(nonzero, 30u);
}

TEST(Compression, KeepAllIsIdentity) {
  std::vector<float> g = {1.0f, 2.0f};
  util::Rng rng(3);
  EXPECT_EQ(sync::sparsify(g, sync::CompressionMode::TopK, 1.0, rng), 2u);
  EXPECT_FLOAT_EQ(g[0], 1.0f);
}

TEST(Compression, TopKBspReducesBstVersusBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.0);
  sync::BspSync bsp;
  sync::CompressedBspSync topk(sync::CompressionMode::TopK, 0.1);
  const auto rb = run_model(bsp, cfg, spec);
  const auto rt = run_model(topk, cfg, spec);
  EXPECT_LT(rt.mean_bst_s, rb.mean_bst_s * 0.5);
}

TEST(Compression, TopKLosesAccuracyVersusBsp) {
  // Dropped gradients (no error feedback) must cost accuracy — the §2.2.2
  // failure mode OSP exists to avoid.
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 8, 0.0);
  sync::BspSync bsp;
  sync::CompressedBspSync topk(sync::CompressionMode::TopK, 0.05);
  const auto rb = run_model(bsp, cfg, spec);
  const auto rt = run_model(topk, cfg, spec);
  EXPECT_LT(rt.best_metric, rb.best_metric);
}

TEST(OspBehaviour, FirstEpochDegradesToBsp) {
  // Algorithm 1 sets S(Gᵘ)₁ = 0: during epoch 1 the GIB stays
  // all-important, so no ICS rounds run.
  const auto spec = models::tiny_mlp();
  core::OspSync osp;
  auto cfg = sync_config(2, 1, 0.0);
  runtime::Engine engine(spec, cfg, osp);
  (void)engine.run();
  EXPECT_EQ(osp.ics_rounds_completed(), 0u);
  EXPECT_DOUBLE_EQ(osp.current_ics_budget(), 0.0);
}

TEST(OspBehaviour, BudgetRampsAfterFirstEpoch) {
  const auto spec = models::tiny_mlp();
  core::OspSync osp;
  auto cfg = sync_config(2, 6, 0.0);
  runtime::Engine engine(spec, cfg, osp);
  (void)engine.run();
  EXPECT_GT(osp.current_ics_budget(), 0.0);
  EXPECT_LE(osp.current_ics_budget(), osp.u_max());
  EXPECT_GT(osp.ics_rounds_completed(), 0u);
}

TEST(OspBehaviour, FixedZeroBudgetEqualsBspTiming) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(4, 2, 0.0);
  core::OspOptions opts;
  opts.fixed_budget_fraction = 0.0;
  core::OspSync osp(opts);
  sync::BspSync bsp;
  const auto ro = run_model(osp, cfg, spec);
  const auto rb = run_model(bsp, cfg, spec);
  // §4.3: all gradients in RS ⇒ BSP. Timing matches up to the GIB's few
  // bytes and identical PS costs.
  EXPECT_NEAR(ro.mean_bst_s, rb.mean_bst_s, 0.02 * rb.mean_bst_s);
  EXPECT_DOUBLE_EQ(ro.total_samples, rb.total_samples);
}

TEST(OspBehaviour, LargerFixedBudgetLowersBst) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 2, 0.0);
  auto bst_with = [&](double fraction) {
    core::OspOptions opts;
    opts.fixed_budget_fraction = fraction;
    core::OspSync osp(opts);
    runtime::Engine engine(spec, cfg, osp);
    return engine.run().mean_bst_s;
  };
  const double none = bst_with(0.0);
  const double half = bst_with(0.4);
  const double most = bst_with(0.8);
  EXPECT_LT(half, none);
  EXPECT_LT(most, half);
}

TEST(OspBehaviour, AccuracyComparableToBsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = sync_config(8, 10, 0.05);
  sync::BspSync bsp;
  core::OspSync osp;
  const auto rb = run_model(bsp, cfg, spec);
  const auto ro = run_model(osp, cfg, spec);
  EXPECT_GT(ro.best_metric, rb.best_metric - 0.05)
      << "OSP lost accuracy versus BSP";
}

TEST(OspBehaviour, ColocatedRequiresColocatedCluster) {
  const auto spec = models::tiny_mlp();
  core::OspOptions opts;
  opts.colocated_ps = true;
  core::OspSync osp(opts);
  auto cfg = sync_config(2, 1, 0.0);  // cluster NOT co-located
  runtime::Engine engine(spec, cfg, osp);
  EXPECT_THROW((void)engine.run(), util::CheckError);
}

TEST(OspBehaviour, ColocatedChargesGibOverhead) {
  const auto spec = models::tiny_mlp();
  auto cfg = sync_config(2, 2, 0.0);
  cfg.cluster.colocated_ps = true;
  core::OspOptions colo;
  colo.colocated_ps = true;
  core::OspSync osp_c(colo);
  core::OspSync osp_s;
  runtime::Engine e1(spec, cfg, osp_c);
  const auto rc = e1.run();
  runtime::Engine e2(spec, cfg, osp_s);
  const auto rs = e2.run();
  EXPECT_GT(rc.mean_bct_s, rs.mean_bct_s);
}

TEST(OspBehaviour, EmaVariantRuns) {
  const auto spec = models::tiny_mlp();
  core::OspOptions opts;
  opts.use_ema_lgp = true;
  core::OspSync osp(opts);
  const auto r = run_model(osp, sync_config(2, 4, 0.0), spec);
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(OspBehaviour, RankingVariantsRun) {
  const auto spec = models::tiny_mlp();
  for (auto ranking : {core::OspOptions::Ranking::kPgp,
                       core::OspOptions::Ranking::kPgpSum,
                       core::OspOptions::Ranking::kMagnitude,
                       core::OspOptions::Ranking::kRandom}) {
    core::OspOptions opts;
    opts.ranking = ranking;
    core::OspSync osp(opts);
    const auto r = run_model(osp, sync_config(2, 3, 0.0), spec);
    EXPECT_GT(r.best_metric, 0.4);
  }
}

TEST(OspBehaviour, NamesEncodeOptions) {
  EXPECT_EQ(core::OspSync().name(), "OSP");
  core::OspOptions a;
  a.enable_lgp = false;
  EXPECT_EQ(core::OspSync(a).name(), "OSP(no-LGP)");
  core::OspOptions b;
  b.colocated_ps = true;
  EXPECT_EQ(core::OspSync(b).name(), "OSP-C");
  core::OspOptions c;
  c.fixed_budget_fraction = 0.5;
  EXPECT_EQ(core::OspSync(c).name(), "OSP(fixed=50%)");
}

// ---- Golden bit-identity regression ------------------------------------
//
// Every sync model runs the tiny workload to completion and its final
// global parameters + full RunResult are hashed and compared against
// goldens captured from main *before* the KV-core refactor (the file in
// tests/golden/). Each case runs under 1-, 2-, and 8-thread pools, so the
// suite simultaneously pins thread-count invariance and the KV port's
// flow-for-flow equivalence: any change to a wire byte count, an event
// ordering, or a float operation shows up as a hash mismatch.
//
// Regenerate (only for an intentional, reviewed behaviour change):
//   OSP_UPDATE_GOLDENS=1 ./test_sync --gtest_filter='GoldenBitIdentity.*'

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void fold_f64(std::uint64_t& h, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  h = fnv1a(&bits, sizeof(bits), h);
}

void fold_u64(std::uint64_t& h, std::uint64_t v) {
  h = fnv1a(&v, sizeof(v), h);
}

std::uint64_t hash_params(std::span<const float> params) {
  return fnv1a(params.data(), params.size() * sizeof(float));
}

std::uint64_t hash_result(const runtime::RunResult& r) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(r.sync_name.data(), r.sync_name.size(), h);
  fold_f64(h, r.total_time_s);
  fold_f64(h, r.total_samples);
  fold_f64(h, r.throughput);
  fold_f64(h, r.best_metric);
  fold_f64(h, r.final_loss);
  fold_f64(h, r.mean_bct_s);
  fold_f64(h, r.mean_bst_s);
  fold_f64(h, r.steady_bst_s);
  fold_f64(h, r.p99_bst_s);
  fold_f64(h, r.steady_throughput);
  fold_f64(h, r.iters_to_target.value_or(-1.0));
  fold_f64(h, r.time_to_target_s.value_or(-1.0));
  fold_u64(h, r.curve.size());
  for (const auto& p : r.curve) {
    fold_f64(h, p.time_s);
    fold_f64(h, p.samples);
    fold_f64(h, p.metric);
    fold_f64(h, p.loss);
  }
  fold_u64(h, r.epoch_losses.size());
  for (double l : r.epoch_losses) fold_f64(h, l);
  fold_u64(h, r.faults.worker_crashes);
  fold_u64(h, r.faults.flows_cancelled);
  fold_u64(h, r.faults.timed_out_rounds);
  fold_u64(h, r.checkpoints_taken);
  return h;
}

struct GoldenCase {
  std::string tag;
  std::function<std::unique_ptr<runtime::SyncModel>()> make;
  runtime::EngineConfig cfg;
};

runtime::EngineConfig golden_cfg(std::size_t num_ps = 1) {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  cfg.cluster.num_ps = num_ps;
  return cfg;
}

std::vector<GoldenCase> golden_cases() {
  using sync::CompressionMode;
  std::vector<GoldenCase> cases;
  cases.push_back({"bsp",
                   [] { return std::make_unique<sync::BspSync>(); },
                   golden_cfg()});
  cases.push_back({"asp",
                   [] { return std::make_unique<sync::AspSync>(); },
                   golden_cfg()});
  cases.push_back({"ssp2",
                   [] { return std::make_unique<sync::SspSync>(2); },
                   golden_cfg()});
  cases.push_back({"r2sp",
                   [] { return std::make_unique<sync::R2spSync>(); },
                   golden_cfg()});
  cases.push_back({"dssp",
                   [] { return std::make_unique<sync::DsspSync>(1, 3); },
                   golden_cfg()});
  cases.push_back({"casp",
                   [] { return std::make_unique<sync::CaspSync>(); },
                   golden_cfg()});
  cases.push_back({"sync_switch",
                   [] { return std::make_unique<sync::SyncSwitchSync>(0.3); },
                   golden_cfg()});
  cases.push_back({"sharded_bsp_2ps",
                   [] { return std::make_unique<sync::ShardedBspSync>(); },
                   golden_cfg(/*num_ps=*/2)});
  cases.push_back({"topk_ef",
                   [] {
                     return std::make_unique<sync::CompressedBspSync>(
                         CompressionMode::TopK, 0.25, /*seed=*/99,
                         /*error_feedback=*/true);
                   },
                   golden_cfg()});
  cases.push_back({"randomk",
                   [] {
                     return std::make_unique<sync::CompressedBspSync>(
                         CompressionMode::RandomK, 0.25);
                   },
                   golden_cfg()});
  cases.push_back({"q8",
                   [] { return std::make_unique<sync::QuantizedBspSync>(); },
                   golden_cfg()});
  cases.push_back({"osp",
                   [] { return std::make_unique<core::OspSync>(); },
                   golden_cfg()});
  cases.push_back({"osp_fixed50",
                   [] {
                     core::OspOptions opt;
                     opt.fixed_budget_fraction = 0.5;
                     return std::make_unique<core::OspSync>(opt);
                   },
                   golden_cfg()});
  cases.push_back({"osp_ema",
                   [] {
                     core::OspOptions opt;
                     opt.use_ema_lgp = true;
                     return std::make_unique<core::OspSync>(opt);
                   },
                   golden_cfg()});
  cases.push_back({"osp_2ps_fixed50",
                   [] {
                     core::OspOptions opt;
                     opt.fixed_budget_fraction = 0.5;
                     return std::make_unique<core::OspSync>(opt);
                   },
                   golden_cfg(/*num_ps=*/2)});
  return cases;
}

struct GoldenHashes {
  std::uint64_t params = 0;
  std::uint64_t result = 0;
};

GoldenHashes run_golden_case(const GoldenCase& c, std::size_t threads) {
  util::ThreadPool pool(threads);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  auto sync = c.make();
  runtime::Engine engine(spec, c.cfg, *sync);
  const runtime::RunResult result = engine.run();
  return {hash_params(engine.global_params()), hash_result(result)};
}

std::string golden_file_path() {
  return std::string(OSP_GOLDEN_DIR) + "/sync_goldens.txt";
}

std::map<std::string, GoldenHashes> load_goldens() {
  std::map<std::string, GoldenHashes> out;
  std::ifstream in(golden_file_path());
  std::string tag, params_hex, result_hex;
  while (in >> tag >> params_hex >> result_hex) {
    GoldenHashes g;
    g.params = std::stoull(params_hex, nullptr, 16);
    g.result = std::stoull(result_hex, nullptr, 16);
    out[tag] = g;
  }
  return out;
}

TEST(GoldenBitIdentity, AllSyncModelsMatchMainAt128Threads) {
  const bool update = std::getenv("OSP_UPDATE_GOLDENS") != nullptr;
  const auto cases = golden_cases();
  std::map<std::string, GoldenHashes> goldens;
  if (!update) {
    goldens = load_goldens();
    ASSERT_EQ(goldens.size(), cases.size())
        << "golden file out of sync with the case list; regenerate with "
           "OSP_UPDATE_GOLDENS=1";
  }
  std::ostringstream regenerated;
  for (const GoldenCase& c : cases) {
    const GoldenHashes ref = run_golden_case(c, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const GoldenHashes got = run_golden_case(c, threads);
      EXPECT_EQ(got.params, ref.params)
          << c.tag << ": params diverged at " << threads << " threads";
      EXPECT_EQ(got.result, ref.result)
          << c.tag << ": RunResult diverged at " << threads << " threads";
    }
    if (update) {
      regenerated << c.tag << ' ' << std::hex << ref.params << ' '
                  << ref.result << std::dec << '\n';
      continue;
    }
    ASSERT_TRUE(goldens.count(c.tag)) << "no golden for " << c.tag;
    EXPECT_EQ(ref.params, goldens[c.tag].params)
        << c.tag << ": final params differ from the pre-refactor golden";
    EXPECT_EQ(ref.result, goldens[c.tag].result)
        << c.tag << ": RunResult differs from the pre-refactor golden";
  }
  if (update) {
    std::ofstream out(golden_file_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_file_path();
    out << regenerated.str();
    std::cout << "regenerated " << golden_file_path() << "\n";
  }
}

TEST(CrossModel, AllModelsReachSameSampleCount) {
  // Every sync model must process exactly max_epochs over each shard.
  const auto spec = models::tiny_mlp();
  const auto cfg = sync_config(3, 3, 0.1);
  const double expected = 3.0 * 3.0 * 10.0 * 16.0;  // shard 170→10 batches
  sync::BspSync bsp;
  sync::AspSync asp;
  sync::R2spSync r2sp;
  sync::SspSync ssp(3);
  core::OspSync osp;
  EXPECT_DOUBLE_EQ(run_model(bsp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(asp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(r2sp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(ssp, cfg, spec).total_samples, expected);
  EXPECT_DOUBLE_EQ(run_model(osp, cfg, spec).total_samples, expected);
}

// -------------------------------------------------- composed KV pipelines

TEST(KvBspComposition, TelemetryMatchesComposedPipeline) {
  // The acceptance stack — GIB ∘ top-k ∘ int8 as filter stages — must
  // report telemetry wire bytes equal to the composed accounting: kept
  // elements (top-k replaces the GIB block bytes) quartered by int8, the
  // GIB bitmap + kept indices on the index channel, the fp32 scale in
  // meta. KvBspSync uses one self-consistent proxy byte scale, so the
  // prediction is exact, per round, per worker.
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 2;
  cfg.seed = 42;
  cfg.record_telemetry = true;
  sync::KvBspOptions opt;
  opt.gib_keep_fraction = 0.5;
  opt.topk_keep_fraction = 0.25;
  opt.quantize_int8 = true;
  sync::KvBspSync kvbsp(opt);
  runtime::Engine engine(spec, cfg, kvbsp);
  const runtime::RunResult r = engine.run();

  EXPECT_EQ(kvbsp.name(), "KvBSP[gib∘topk∘q8]");
  const std::size_t numel = engine.global_params().size();
  const double kept = static_cast<double>(std::max<long long>(
      1, std::llround(0.25 * static_cast<double>(numel))));
  const double bitmap =
      4.0 + static_cast<double>((engine.num_blocks() + 7) / 8);
  const double per_push = kept * 4.0 / 4.0    // values: top-k kept, int8'd
                          + bitmap + kept * 4.0  // GIB bitmap + indices
                          + 4.0                  // the fp32 quant scale
                          + kv::kFrameOverheadBytes;  // serialization frame
  ASSERT_FALSE(r.rounds.empty());
  for (const auto& rec : r.rounds) {
    EXPECT_DOUBLE_EQ(rec.important_bytes, 4.0 * per_push);
  }
  EXPECT_DOUBLE_EQ(kvbsp.last_round_push_bytes(), 4.0 * per_push);
  EXPECT_GT(r.best_metric, 0.0);
}

TEST(KvBspComposition, GibAloneChargesSelectedBlockBytes) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 2;
  cfg.seed = 42;
  cfg.record_telemetry = true;
  sync::KvBspOptions opt;
  opt.gib_keep_fraction = 0.5;
  sync::KvBspSync kvbsp(opt);
  runtime::Engine engine(spec, cfg, kvbsp);
  const runtime::RunResult r = engine.run();

  EXPECT_EQ(kvbsp.name(), "KvBSP[gib]");
  const double dense = 4.0 * static_cast<double>(engine.global_params().size());
  const double bitmap =
      4.0 + static_cast<double>((engine.num_blocks() + 7) / 8);
  ASSERT_FALSE(r.rounds.empty());
  // Round 1 ships everything (first selection is all-important); later
  // rounds drop at least one block under the 50 % byte budget (greedy
  // always keeps the top block, so the floor stays above the bitmap).
  EXPECT_DOUBLE_EQ(r.rounds.front().important_bytes,
                   2.0 * (dense + bitmap + kv::kFrameOverheadBytes));
  for (std::size_t i = 1; i < r.rounds.size(); ++i) {
    EXPECT_LT(r.rounds[i].important_bytes, r.rounds.front().important_bytes);
    EXPECT_GT(r.rounds[i].important_bytes, 2.0 * bitmap);
  }
}

}  // namespace
}  // namespace osp
