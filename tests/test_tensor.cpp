// Tensor library tests: shapes, access, matmul orientations against naive
// references, im2col/col2im adjointness, softmax, and initializers.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({2, 2}, 3.5f);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Tensor, ExplicitDataValidated) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               util::CheckError);
}

TEST(Tensor, From1D) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, TwoDAccessRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t[5], 5.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, TwoDAccessBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW((void)t.at(2, 0), util::CheckError);
  EXPECT_THROW((void)t.at(0, 3), util::CheckError);
}

TEST(Tensor, FourDAccessNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  t.at(0, 1) = 7.0f;
  t.reshape({3, 2});
  EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);  // flat index 1 unchanged
  EXPECT_THROW(t.reshape({4, 2}), util::CheckError);
}

TEST(Tensor, ReshapedCopyLeavesOriginal) {
  Tensor t({2, 2});
  Tensor r = t.reshaped({4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(r.rank(), 1u);
}

TEST(Tensor, RowSpanWritesThrough) {
  Tensor t({2, 3});
  auto row = t.row(1);
  row[0] = 4.0f;
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

// Naive reference matmul for verification.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += a.at(i, p) * b.at(p, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Tensor t({r, c});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

class MatmulSizes : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(m * 1000 + k * 100 + n);
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(k, n, rng);
  Tensor c({m, n});
  matmul(a, b, c);
  const Tensor ref = ref_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f) << "at " << i;
  }
}

TEST_P(MatmulSizes, TnMatchesTransposedReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(42 + m + k + n);
  const Tensor a = random_matrix(m, k, rng);  // will be used transposed
  const Tensor b = random_matrix(m, n, rng);
  Tensor c({k, n});
  matmul_tn(a, b, c);
  Tensor at({k, m});
  transpose(a, at);
  const Tensor ref = ref_matmul(at, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST_P(MatmulSizes, NtMatchesTransposedReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(77 + m * k * n);
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(n, k, rng);
  Tensor c({m, n});
  matmul_nt(a, b, c);
  Tensor bt({k, n});
  transpose(b, bt);
  const Tensor ref = ref_matmul(a, bt);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 48, 32),
                      std::make_tuple(128, 70, 5)));

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(matmul(a, b, c), util::CheckError);
}

TEST(Ops, AddBiasRows) {
  Tensor x({2, 3}, 1.0f);
  std::vector<float> bias = {1, 2, 3};
  add_bias_rows(x, bias);
  EXPECT_FLOAT_EQ(x.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 4.0f);
}

TEST(Ops, SumRowsAccumulates) {
  Tensor x({2, 2});
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 2.0f;
  x.at(0, 1) = 3.0f;
  x.at(1, 1) = 4.0f;
  std::vector<float> out = {10.0f, 0.0f};  // accumulation check
  sum_rows(x, out);
  EXPECT_FLOAT_EQ(out[0], 13.0f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(4);
  Tensor x = random_matrix(5, 9, rng);
  Tensor out({5, 9});
  softmax_rows(x, out);
  for (std::size_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (float v : out.row(r)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxStableUnderLargeLogits) {
  Tensor x({1, 3});
  x.at(0, 0) = 1000.0f;
  x.at(0, 1) = 1001.0f;
  x.at(0, 2) = 999.0f;
  Tensor out({1, 3});
  softmax_rows(x, out);
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(out.at(0, 1), out.at(0, 0));
}

TEST(Ops, TransposeRoundTrip) {
  util::Rng rng(8);
  const Tensor a = random_matrix(4, 7, rng);
  Tensor at({7, 4}), back({4, 7});
  transpose(a, at);
  transpose(at, back);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a[i], back[i]);
  }
}

TEST(Conv2dGeom, OutputDims) {
  Conv2dGeom g{3, 8, 8, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_len(), 27u);
  Conv2dGeom strided{1, 8, 8, 2, 2, 0};
  EXPECT_EQ(strided.out_h(), 4u);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
  Conv2dGeom g{2, 3, 3, 1, 1, 0};
  std::vector<float> img(2 * 3 * 3);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  Tensor cols({9, 2});
  im2col(img, g, cols);
  for (std::size_t p = 0; p < 9; ++p) {
    EXPECT_FLOAT_EQ(cols.at(p, 0), img[p]);
    EXPECT_FLOAT_EQ(cols.at(p, 1), img[9 + p]);
  }
}

TEST(Ops, Im2colPaddingReadsZero) {
  Conv2dGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> img = {1, 2, 3, 4};
  Tensor cols({g.patches(), g.patch_len()});
  im2col(img, g, cols);
  // First patch centered at (0,0): the top-left 2x2 of the kernel window is
  // out of bounds.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);  // kernel center hits pixel (0,0)
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the adjoint
  // property that makes conv backward correct.
  Conv2dGeom g{2, 5, 5, 3, 2, 1};
  util::Rng rng(21);
  std::vector<float> x(2 * 5 * 5);
  for (float& v : x) v = static_cast<float>(rng.normal());
  Tensor y({g.patches(), g.patch_len()});
  for (float& v : y.data()) v = static_cast<float>(rng.normal());

  Tensor cols({g.patches(), g.patch_len()});
  im2col(x, g, cols);
  double lhs = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) lhs += cols[i] * y[i];

  std::vector<float> xt(x.size(), 0.0f);
  col2im(y, g, xt);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Init, XavierBounds) {
  util::Rng rng(3);
  Tensor t({100, 100});
  xavier_uniform(t, 100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (float v : t.data()) {
    EXPECT_LE(std::abs(v), bound);
  }
}

TEST(Init, HeNormalStddev) {
  util::Rng rng(3);
  Tensor t({200, 200});
  he_normal(t, 200, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 200.0), 0.002);
}

TEST(Init, UniformRange) {
  util::Rng rng(5);
  Tensor t({1000});
  uniform_init(t, -0.5f, 0.5f, rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

}  // namespace
}  // namespace osp::tensor
