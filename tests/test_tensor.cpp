// Tensor library tests: shapes, access, matmul orientations against naive
// references, im2col/col2im adjointness, softmax, and initializers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace osp::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({2, 2}, 3.5f);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Tensor, ExplicitDataValidated) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               util::CheckError);
}

TEST(Tensor, From1D) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, TwoDAccessRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t[5], 5.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, TwoDAccessBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW((void)t.at(2, 0), util::CheckError);
  EXPECT_THROW((void)t.at(0, 3), util::CheckError);
}

TEST(Tensor, FourDAccessNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  t.at(0, 1) = 7.0f;
  t.reshape({3, 2});
  EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);  // flat index 1 unchanged
  EXPECT_THROW(t.reshape({4, 2}), util::CheckError);
}

TEST(Tensor, ReshapedCopyLeavesOriginal) {
  Tensor t({2, 2});
  Tensor r = t.reshaped({4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(r.rank(), 1u);
}

TEST(Tensor, RowSpanWritesThrough) {
  Tensor t({2, 3});
  auto row = t.row(1);
  row[0] = 4.0f;
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

// Naive reference matmul for verification.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += a.at(i, p) * b.at(p, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Tensor t({r, c});
  for (float& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

class MatmulSizes : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(m * 1000 + k * 100 + n);
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(k, n, rng);
  Tensor c({m, n});
  matmul(a, b, c);
  const Tensor ref = ref_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f) << "at " << i;
  }
}

TEST_P(MatmulSizes, TnMatchesTransposedReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(42 + m + k + n);
  const Tensor a = random_matrix(m, k, rng);  // will be used transposed
  const Tensor b = random_matrix(m, n, rng);
  Tensor c({k, n});
  matmul_tn(a, b, c);
  Tensor at({k, m});
  transpose(a, at);
  const Tensor ref = ref_matmul(at, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST_P(MatmulSizes, NtMatchesTransposedReference) {
  auto [m, k, n] = GetParam();
  util::Rng rng(77 + m * k * n);
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(n, k, rng);
  Tensor c({m, n});
  matmul_nt(a, b, c);
  Tensor bt({k, n});
  transpose(b, bt);
  const Tensor ref = ref_matmul(a, bt);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 48, 32),
                      std::make_tuple(128, 70, 5)));

// Shapes chosen to stress the blocked kernel's edges: degenerate rows and
// columns, primes, register-tile boundaries ±1 (the tile is 4×8), and a k
// that crosses the 512-wide kc panel so the accumulator round-trips
// through C.
INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 257, 1), std::make_tuple(257, 1, 9),
                      std::make_tuple(1, 9, 257),
                      std::make_tuple(13, 29, 31),
                      std::make_tuple(63, 65, 64),
                      std::make_tuple(65, 64, 63),
                      std::make_tuple(127, 129, 65),
                      std::make_tuple(31, 520, 17)));

TEST(Ops, MatmulTnAccAccumulatesIntoC) {
  util::Rng rng(61);
  const Tensor a = random_matrix(30, 7, rng);
  const Tensor b = random_matrix(30, 11, rng);
  Tensor fresh({7, 11});
  matmul_tn(a, b, fresh);
  Tensor acc({7, 11}, 1.5f);
  matmul_tn_acc(a, b, acc);
  for (std::size_t i = 0; i < acc.numel(); ++i) {
    EXPECT_NEAR(acc[i], fresh[i] + 1.5f, 1e-5f);
  }
}

TEST(Ops, MatmulTnBlockedAccMatchesPerSampleGrouping) {
  // The batched call must reproduce the per-sample loop exactly: each
  // block's product from a fresh accumulator, added to C in block order.
  util::Rng rng(62);
  const std::size_t blocks = 3, rows = 40, k = 6, n = 9;
  const Tensor a = random_matrix(blocks * rows, k, rng);
  const Tensor b = random_matrix(blocks * rows, n, rng);
  Tensor batched({k, n}, 0.25f);
  matmul_tn_blocked_acc(a, b, blocks, batched);

  Tensor expected({k, n}, 0.25f);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    Tensor ab({rows, k}), bb({rows, n});
    std::memcpy(ab.raw(), a.raw() + blk * rows * k, rows * k * sizeof(float));
    std::memcpy(bb.raw(), b.raw() + blk * rows * n, rows * n * sizeof(float));
    Tensor wg({k, n});
    matmul_tn(ab, bb, wg);
    for (std::size_t i = 0; i < wg.numel(); ++i) expected.raw()[i] += wg[i];
  }
  EXPECT_EQ(std::memcmp(batched.raw(), expected.raw(),
                        batched.numel() * sizeof(float)),
            0);
}

TEST(Ops, KernelsBitIdenticalAcrossThreadCounts) {
  // The parallel decomposition must never change results: run the same
  // inputs under pools of 1, 2, and 5 threads and require byte-equal
  // outputs. Sizes are chosen to cross the parallel thresholds.
  util::Rng rng(5150);
  const Tensor a = random_matrix(127, 130, rng);
  const Tensor b = random_matrix(130, 129, rng);
  const Tensor a2 = random_matrix(127, 33, rng);
  const Tensor bt = random_matrix(129, 130, rng);
  const Tensor wide = random_matrix(5, 9001, rng);

  auto run_all = [&](Tensor& mm, Tensor& tn, Tensor& nt, Tensor& sm,
                     std::vector<float>& sums) {
    matmul(a, b, mm);
    matmul_tn(a, a2, tn);  // [130,127]·[127,33]
    matmul_nt(a, bt, nt);
    softmax_rows(a, sm);
    sum_rows(wide, sums);
  };

  Tensor mm1({127, 129}), tn1({130, 33}), nt1({127, 129}), sm1({127, 130});
  std::vector<float> sums1(9001, 0.0f);
  {
    util::ThreadPool solo(1);
    util::ThreadPool::ScopedGlobal guard(solo);
    run_all(mm1, tn1, nt1, sm1, sums1);
  }
  for (std::size_t threads : {2, 5}) {
    util::ThreadPool pool(threads);
    util::ThreadPool::ScopedGlobal guard(pool);
    Tensor mm({127, 129}), tn({130, 33}), nt({127, 129}), sm({127, 130});
    std::vector<float> sums(9001, 0.0f);
    run_all(mm, tn, nt, sm, sums);
    EXPECT_EQ(
        std::memcmp(mm.raw(), mm1.raw(), mm.numel() * sizeof(float)), 0)
        << "matmul diverged at " << threads << " threads";
    EXPECT_EQ(
        std::memcmp(tn.raw(), tn1.raw(), tn.numel() * sizeof(float)), 0)
        << "matmul_tn diverged at " << threads << " threads";
    EXPECT_EQ(
        std::memcmp(nt.raw(), nt1.raw(), nt.numel() * sizeof(float)), 0)
        << "matmul_nt diverged at " << threads << " threads";
    EXPECT_EQ(
        std::memcmp(sm.raw(), sm1.raw(), sm.numel() * sizeof(float)), 0)
        << "softmax_rows diverged at " << threads << " threads";
    EXPECT_EQ(std::memcmp(sums.data(), sums1.data(),
                          sums.size() * sizeof(float)),
              0)
        << "sum_rows diverged at " << threads << " threads";
  }
}

TEST(Ops, SumRowsWideMatrixAccumulates) {
  // Wide enough that the column range splits across workers; the +=
  // contract and per-column row order must survive the parallel path.
  const std::size_t rows = 6, cols = 9001;
  Tensor x({rows, cols});
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      x.at(r, c) = static_cast<float>(r + 1) + 0.25f * static_cast<float>(c % 4);
    }
  }
  std::vector<float> out(cols, 2.0f);  // pre-seeded: must accumulate
  util::ThreadPool pool(4);
  util::ThreadPool::ScopedGlobal guard(pool);
  sum_rows(x, out);
  for (std::size_t c = 0; c < cols; c += 997) {
    float expect = 2.0f;
    for (std::size_t r = 0; r < rows; ++r) expect += x.at(r, c);
    EXPECT_FLOAT_EQ(out[c], expect) << "column " << c;
  }
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(matmul(a, b, c), util::CheckError);
}

TEST(Ops, AddBiasRows) {
  Tensor x({2, 3}, 1.0f);
  std::vector<float> bias = {1, 2, 3};
  add_bias_rows(x, bias);
  EXPECT_FLOAT_EQ(x.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 4.0f);
}

TEST(Ops, SumRowsAccumulates) {
  Tensor x({2, 2});
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 2.0f;
  x.at(0, 1) = 3.0f;
  x.at(1, 1) = 4.0f;
  std::vector<float> out = {10.0f, 0.0f};  // accumulation check
  sum_rows(x, out);
  EXPECT_FLOAT_EQ(out[0], 13.0f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(4);
  Tensor x = random_matrix(5, 9, rng);
  Tensor out({5, 9});
  softmax_rows(x, out);
  for (std::size_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (float v : out.row(r)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxStableUnderLargeLogits) {
  Tensor x({1, 3});
  x.at(0, 0) = 1000.0f;
  x.at(0, 1) = 1001.0f;
  x.at(0, 2) = 999.0f;
  Tensor out({1, 3});
  softmax_rows(x, out);
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(out.at(0, 1), out.at(0, 0));
}

TEST(Ops, TransposeRoundTrip) {
  util::Rng rng(8);
  const Tensor a = random_matrix(4, 7, rng);
  Tensor at({7, 4}), back({4, 7});
  transpose(a, at);
  transpose(at, back);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a[i], back[i]);
  }
}

TEST(Conv2dGeom, OutputDims) {
  Conv2dGeom g{3, 8, 8, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_len(), 27u);
  Conv2dGeom strided{1, 8, 8, 2, 2, 0};
  EXPECT_EQ(strided.out_h(), 4u);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
  Conv2dGeom g{2, 3, 3, 1, 1, 0};
  std::vector<float> img(2 * 3 * 3);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  Tensor cols({9, 2});
  im2col(img, g, cols);
  for (std::size_t p = 0; p < 9; ++p) {
    EXPECT_FLOAT_EQ(cols.at(p, 0), img[p]);
    EXPECT_FLOAT_EQ(cols.at(p, 1), img[9 + p]);
  }
}

TEST(Ops, Im2colPaddingReadsZero) {
  Conv2dGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> img = {1, 2, 3, 4};
  Tensor cols({g.patches(), g.patch_len()});
  im2col(img, g, cols);
  // First patch centered at (0,0): the top-left 2x2 of the kernel window is
  // out of bounds.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);  // kernel center hits pixel (0,0)
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the adjoint
  // property that makes conv backward correct.
  Conv2dGeom g{2, 5, 5, 3, 2, 1};
  util::Rng rng(21);
  std::vector<float> x(2 * 5 * 5);
  for (float& v : x) v = static_cast<float>(rng.normal());
  Tensor y({g.patches(), g.patch_len()});
  for (float& v : y.data()) v = static_cast<float>(rng.normal());

  Tensor cols({g.patches(), g.patch_len()});
  im2col(x, g, cols);
  double lhs = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) lhs += cols[i] * y[i];

  std::vector<float> xt(x.size(), 0.0f);
  col2im(y, g, xt);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Init, XavierBounds) {
  util::Rng rng(3);
  Tensor t({100, 100});
  xavier_uniform(t, 100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (float v : t.data()) {
    EXPECT_LE(std::abs(v), bound);
  }
}

TEST(Init, HeNormalStddev) {
  util::Rng rng(3);
  Tensor t({200, 200});
  he_normal(t, 200, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 200.0), 0.002);
}

TEST(Init, UniformRange) {
  util::Rng rng(5);
  Tensor t({1000});
  uniform_init(t, -0.5f, 0.5f, rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

}  // namespace
}  // namespace osp::tensor
